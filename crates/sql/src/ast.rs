//! The abstract syntax tree produced by the parser.

use gbj_types::{DataType, Value};

/// A parsed scalar expression (names still unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// A possibly-qualified name: `x`, `t.x`.
    Name(Vec<String>),
    /// A literal.
    Literal(Value),
    /// Binary operation (comparison, logical, arithmetic).
    Binary {
        /// Left operand.
        left: Box<AstExpr>,
        /// Operator, as in [`gbj_expr::BinaryOp`].
        op: gbj_expr::BinaryOp,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `NOT expr`.
    Not(Box<AstExpr>),
    /// Unary minus.
    Neg(Box<AstExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// A function call — in this dialect always an aggregate:
    /// `COUNT(*)`, `SUM(DISTINCT x)`, `MIN(a + b)`.
    Func {
        /// Function name (upper/lower case as written).
        name: String,
        /// `DISTINCT` argument flag.
        distinct: bool,
        /// `*` argument (`COUNT(*)`).
        star: bool,
        /// Ordinary arguments.
        args: Vec<AstExpr>,
    },
}

impl AstExpr {
    /// Whether any aggregate function call occurs in the tree.
    #[must_use]
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Func { .. } => true,
            AstExpr::Name(_) | AstExpr::Literal(_) => false,
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::Not(e) | AstExpr::Neg(e) => e.contains_aggregate(),
            AstExpr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItemAst {
    /// `*` — every column of every FROM relation.
    Wildcard,
    /// An expression with an optional `AS alias`.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// Output alias, if given.
        alias: Option<String>,
    },
}

/// A FROM-clause table reference: `name [AS] alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table or view name.
    pub name: String,
    /// Alias, defaulting to the name.
    pub alias: Option<String>,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `DISTINCT` flag (`ALL` is the default).
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItemAst>,
    /// FROM relations (comma join).
    pub from: Vec<TableRef>,
    /// WHERE clause.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY column names.
    pub group_by: Vec<Vec<String>>,
    /// HAVING clause.
    pub having: Option<AstExpr>,
    /// ORDER BY: (name, ascending).
    pub order_by: Vec<(Vec<String>, bool)>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDefAst {
    /// Column name.
    pub name: String,
    /// Resolved type, or a domain name to resolve at bind time.
    pub data_type: TypeRef,
    /// `NOT NULL` given.
    pub not_null: bool,
    /// Column is `PRIMARY KEY` (single-column shorthand).
    pub primary_key: bool,
    /// Column is `UNIQUE`.
    pub unique: bool,
    /// Column-level CHECK expressions.
    pub checks: Vec<AstExpr>,
    /// `REFERENCES table [(col)]`.
    pub references: Option<(String, Vec<String>)>,
}

/// A type reference: a built-in type or a domain name.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRef {
    /// Built-in type.
    Builtin(DataType),
    /// A `CREATE DOMAIN` name, resolved against the catalog.
    Domain(String),
}

/// A table-level constraint in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraintAst {
    /// `PRIMARY KEY (…)`.
    PrimaryKey(Vec<String>),
    /// `UNIQUE (…)`.
    Unique(Vec<String>),
    /// `CHECK (…)`.
    Check(AstExpr),
    /// `FOREIGN KEY (…) REFERENCES t [(…)]`.
    ForeignKey {
        /// Local columns.
        columns: Vec<String>,
        /// Referenced table.
        ref_table: String,
        /// Referenced columns (empty = primary key).
        ref_columns: Vec<String>,
    },
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDefAst>,
        /// Table constraints.
        constraints: Vec<TableConstraintAst>,
    },
    /// `CREATE DOMAIN name type [CHECK (…)]`.
    CreateDomain {
        /// Domain name.
        name: String,
        /// Underlying type.
        data_type: DataType,
        /// CHECK over `VALUE`.
        check: Option<AstExpr>,
    },
    /// `CREATE VIEW name [(cols)] AS select-text`.
    CreateView {
        /// View name.
        name: String,
        /// Declared output columns (may be empty).
        columns: Vec<String>,
        /// The raw text of the defining query.
        query_sql: String,
    },
    /// `CREATE ASSERTION name CHECK (…)`.
    CreateAssertion {
        /// Assertion name.
        name: String,
        /// The asserted predicate.
        check: AstExpr,
    },
    /// `INSERT INTO t VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<AstExpr>>,
    },
    /// A query.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] [(LINT)] <select>`.
    Explain {
        /// Execute the query and annotate the plan with measured
        /// cardinalities and wall-clock time.
        analyze: bool,
        /// Run the static analyzer over the plan and render its
        /// diagnostics (`EXPLAIN (LINT)`).
        lint: bool,
        /// The explained statement.
        statement: Box<Statement>,
    },
    /// `DELETE FROM t [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        predicate: Option<AstExpr>,
    },
    /// `UPDATE t SET c = e [, …] [WHERE expr]`.
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        assignments: Vec<(String, AstExpr)>,
        /// Optional predicate.
        predicate: Option<AstExpr>,
    },
    /// `DROP TABLE name`.
    DropTable(String),
    /// `DROP VIEW name`.
    DropView(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_the_tree() {
        let agg = AstExpr::Func {
            name: "COUNT".into(),
            distinct: false,
            star: true,
            args: vec![],
        };
        assert!(agg.contains_aggregate());
        let nested = AstExpr::Binary {
            left: Box::new(AstExpr::Literal(Value::Int(1))),
            op: gbj_expr::BinaryOp::Add,
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        let plain = AstExpr::Name(vec!["t".into(), "x".into()]);
        assert!(!plain.contains_aggregate());
        let not = AstExpr::Not(Box::new(plain.clone()));
        assert!(!not.contains_aggregate());
        let isnull = AstExpr::IsNull {
            expr: Box::new(plain),
            negated: false,
        };
        assert!(!isnull.contains_aggregate());
    }
}
