#!/usr/bin/env bash
# Tier-1 verification: build, tests, and the panic-freedom lint gate.
#
# The clippy step enforces the workspace lint gate: gbj-exec,
# gbj-storage and gbj-engine deny unwrap_used / expect_used / panic /
# indexing_slicing outside test code (see [workspace.lints.clippy] in
# Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets
echo "verify: OK"
