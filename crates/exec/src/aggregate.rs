//! Grouping and aggregation: hash and sort implementations.
//!
//! Grouping uses SQL2's duplicate semantics — rows with NULL grouping
//! values form a group of their own ("NULL equals NULL", Section 4.2 of
//! the paper) — via [`GroupKey`]. With an empty grouping list this is a
//! scalar aggregate producing exactly one row (standard SQL); the
//! optimizer refuses the degenerate transformations where this
//! distinction would matter (see DESIGN.md).

use std::collections::HashMap;

use gbj_expr::{AggregateCall, Accumulator, BoundExpr};
use gbj_types::{Error, GroupKey, Result, Value};

/// A compiled aggregate: the call (for accumulator construction) plus
/// its bound argument.
pub struct CompiledAggregate {
    /// The logical call.
    pub call: AggregateCall,
    /// The bound argument; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
}

impl CompiledAggregate {
    fn update(&self, acc: &mut Accumulator, row: &[Value]) -> Result<()> {
        match &self.arg {
            Some(expr) => acc.update(&expr.eval(row)?),
            // COUNT(*): feed a non-NULL dummy once per row.
            None => acc.update(&Value::Int(1)),
        }
    }
}

/// Hash aggregation: one pass, grouping by the bound key expressions.
///
/// Output rows are `group key values ++ aggregate results`, in
/// first-seen group order (deterministic for a given input order).
pub fn hash_aggregate(
    input: &[Vec<Value>],
    group_exprs: &[BoundExpr],
    aggregates: &[CompiledAggregate],
) -> Result<Vec<Vec<Value>>> {
    let mut order: Vec<GroupKey> = Vec::new();
    let mut groups: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();

    if group_exprs.is_empty() {
        // Scalar aggregate: exactly one group, even over empty input.
        let mut accs: Vec<Accumulator> =
            aggregates.iter().map(|a| a.call.accumulator()).collect();
        for row in input {
            for (agg, acc) in aggregates.iter().zip(&mut accs) {
                agg.update(acc, row)?;
            }
        }
        return Ok(vec![accs.iter().map(Accumulator::finish).collect()]);
    }

    for row in input {
        let key_vals: Vec<Value> = group_exprs
            .iter()
            .map(|e| e.eval(row))
            .collect::<Result<_>>()?;
        let key = GroupKey(key_vals);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggregates.iter().map(|a| a.call.accumulator()).collect()
        });
        for (agg, acc) in aggregates.iter().zip(accs.iter_mut()) {
            agg.update(acc, row)?;
        }
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups
            .remove(&key)
            .ok_or_else(|| Error::Internal("group vanished".into()))?;
        let mut row = key.0;
        row.extend(accs.iter().map(Accumulator::finish));
        out.push(row);
    }
    Ok(out)
}

/// Sort-based aggregation: sort rows by the grouping key (under the
/// total order, NULLs last and equal) and stream group boundaries.
///
/// This is the classic implementation the paper's Section 2 alludes to
/// ("grouping … is usually implemented by sorting"); it also leaves the
/// output sorted on the grouping columns, the property Section 7's last
/// bullet says later joins can exploit.
pub fn sort_aggregate(
    input: &[Vec<Value>],
    group_exprs: &[BoundExpr],
    aggregates: &[CompiledAggregate],
) -> Result<Vec<Vec<Value>>> {
    if group_exprs.is_empty() {
        return hash_aggregate(input, group_exprs, aggregates);
    }
    let mut keyed: Vec<(Vec<Value>, &Vec<Value>)> = input
        .iter()
        .map(|row| {
            let key: Vec<Value> = group_exprs
                .iter()
                .map(|e| e.eval(row))
                .collect::<Result<_>>()?;
            Ok((key, row))
        })
        .collect::<Result<_>>()?;
    keyed.sort_by(|(a, _), (b, _)| {
        for (x, y) in a.iter().zip(b) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    let mut out = Vec::new();
    let mut current: Option<(Vec<Value>, Vec<Accumulator>)> = None;
    for (key, row) in keyed {
        let same = current
            .as_ref()
            .is_some_and(|(k, _)| k.iter().zip(&key).all(|(a, b)| a.null_eq(b)));
        if !same {
            if let Some((k, accs)) = current.take() {
                let mut r = k;
                r.extend(accs.iter().map(Accumulator::finish));
                out.push(r);
            }
            current = Some((
                key,
                aggregates.iter().map(|a| a.call.accumulator()).collect(),
            ));
        }
        if let Some((_, accs)) = &mut current {
            for (agg, acc) in aggregates.iter().zip(accs.iter_mut()) {
                agg.update(acc, row)?;
            }
        }
    }
    if let Some((k, accs)) = current {
        let mut r = k;
        r.extend(accs.iter().map(Accumulator::finish));
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_expr::{AggregateFunction, Expr};
    use gbj_types::{DataType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int64, true),
            Field::new("v", DataType::Int64, true),
        ])
    }

    fn compile(call: AggregateCall) -> CompiledAggregate {
        let arg = call.arg.as_ref().map(|e| e.bind(&schema()).unwrap());
        CompiledAggregate { call, arg }
    }

    fn group_exprs() -> Vec<BoundExpr> {
        vec![Expr::bare("g").bind(&schema()).unwrap()]
    }

    fn rows(data: &[(Option<i64>, Option<i64>)]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|(g, v)| {
                vec![
                    g.map_or(Value::Null, Value::Int),
                    v.map_or(Value::Null, Value::Int),
                ]
            })
            .collect()
    }

    fn sum_call() -> CompiledAggregate {
        compile(AggregateCall::new(AggregateFunction::Sum, Expr::bare("v")))
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn hash_and_sort_agree() {
        let input = rows(&[
            (Some(1), Some(10)),
            (Some(2), Some(20)),
            (Some(1), Some(5)),
            (None, Some(7)),
            (None, Some(3)),
        ]);
        let h = hash_aggregate(&input, &group_exprs(), &[sum_call()]).unwrap();
        let s = sort_aggregate(&input, &group_exprs(), &[sum_call()]).unwrap();
        assert_eq!(sorted(h.clone()), sorted(s));
        assert_eq!(h.len(), 3, "1, 2, and the NULL group");
        let by_key = sorted(h);
        assert_eq!(by_key[0], vec![Value::Int(1), Value::Int(15)]);
        assert_eq!(by_key[1], vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(by_key[2], vec![Value::Null, Value::Int(10)]);
    }

    #[test]
    fn null_group_values_form_one_group() {
        let input = rows(&[(None, Some(1)), (None, Some(2))]);
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&input, &group_exprs(), &[sum_call()]).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], vec![Value::Null, Value::Int(3)]);
        }
    }

    #[test]
    fn scalar_aggregate_always_one_row() {
        let empty: Vec<Vec<Value>> = vec![];
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&empty, &[], &[sum_call()]).unwrap();
            assert_eq!(out, vec![vec![Value::Null]], "SUM over empty is NULL");
        }
        let input = rows(&[(Some(1), Some(4)), (Some(2), Some(6))]);
        let out = hash_aggregate(&input, &[], &[sum_call()]).unwrap();
        assert_eq!(out, vec![vec![Value::Int(10)]]);
    }

    #[test]
    fn count_star_counts_all_rows_per_group() {
        let star = compile(AggregateCall::count_star());
        let input = rows(&[(Some(1), None), (Some(1), Some(2)), (Some(2), None)]);
        let out = hash_aggregate(&input, &group_exprs(), &[star]).unwrap();
        let by_key = sorted(out);
        assert_eq!(by_key[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(by_key[1], vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let calls = vec![
            compile(AggregateCall::new(AggregateFunction::Min, Expr::bare("v"))),
            compile(AggregateCall::new(AggregateFunction::Max, Expr::bare("v"))),
            compile(AggregateCall::count_star()),
        ];
        let input = rows(&[(Some(1), Some(5)), (Some(1), Some(9)), (Some(1), None)]);
        let out = sort_aggregate(&input, &group_exprs(), &calls).unwrap();
        assert_eq!(
            out,
            vec![vec![
                Value::Int(1),
                Value::Int(5),
                Value::Int(9),
                Value::Int(3)
            ]]
        );
    }

    #[test]
    fn empty_grouped_input_yields_no_groups() {
        let empty: Vec<Vec<Value>> = vec![];
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&empty, &group_exprs(), &[sum_call()]).unwrap();
            assert!(out.is_empty(), "no rows → no groups when GROUP BY present");
        }
    }

    #[test]
    fn sort_aggregate_output_is_sorted_on_keys() {
        let input = rows(&[
            (Some(3), Some(1)),
            (Some(1), Some(1)),
            (None, Some(1)),
            (Some(2), Some(1)),
        ]);
        let out = sort_aggregate(&input, &group_exprs(), &[sum_call()]).unwrap();
        let keys: Vec<&Value> = out.iter().map(|r| &r[0]).collect();
        assert_eq!(
            keys,
            vec![&Value::Int(1), &Value::Int(2), &Value::Int(3), &Value::Null]
        );
    }
}
