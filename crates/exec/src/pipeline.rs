//! The batch-native pipeline: end-to-end columnar execution with late
//! materialization.
//!
//! When [`ExecOptions::vectorized`](crate::ExecOptions) is set and the
//! *whole* plan passes [`supported`], the executor runs this pipeline
//! instead of the row engine: the scan produces [`ColumnarBatch`]es
//! directly ([`gbj_storage::ScanCursor::next_columnar`], no
//! intermediate row vec), filters and probe phases carry row-id
//! *selection vectors* over shared batches instead of copying rows,
//! string join/group keys hash on dictionary codes
//! ([`ColumnVector::Dict`]) or raw `i64`s instead of cloned [`Value`]s,
//! and payload columns materialize only at the pipeline breakers (hash
//! join and hash aggregate) — or at the very end, when the result set
//! is assembled.
//!
//! **The row engine stays the oracle.** Every operator here reproduces
//! the row path's observable behaviour exactly:
//!
//! - *Results*: byte-identical rows in the same order.
//! - *Errors*: [`supported`] admits only plans whose expressions are in
//!   the error-free vectorizable domain (see [`crate::vectorized`]) and
//!   whose aggregate arguments are evaluated row-major, so the first
//!   error — fault-injected scan failures included — is the same one
//!   the row engine would raise. Anything outside the gate takes the
//!   row engine wholesale; there is no per-operator mixing.
//! - *Counters*: the `[rows_in, rows_out, batches, hash_entries]`
//!   fingerprint, `state_bytes`, `selected`, and the guard's
//!   rows/memory charges follow the row path call-for-call (same
//!   charge order, same per-entry byte formulas), so profiles stay
//!   thread-count- and engine-invariant. Only the non-fingerprint
//!   `vectors`/`kernel_ns` observability counters differ in magnitude
//!   (cursor batches here vs morsel chunks there).
//!
//! At `threads > 1` the pipeline keeps columnar scans/filters/projects
//! but materializes rows at each breaker and delegates to the
//! morsel-driven parallel operators, which are already byte-identical
//! to serial — so results are identical at every thread count, with
//! the same operator names (`ParallelHashJoin`/`ParallelHashAggregate`)
//! the row engine reports.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use gbj_expr::{Accumulator, BoundExpr, Expr};
use gbj_plan::LogicalPlan;
use gbj_types::{internal_err, GroupKey, Result, Truth, Value};

use crate::aggregate::{CompiledAggregate, ACC_ENTRY_BYTES};
use crate::batch::{Bitmap, ColumnVector, ColumnarBatch, StringDict, NULL_CODE};
use crate::executor::{input_batches, AggAlgo, ExecOptions, Executor, JoinAlgo};
use crate::guard::{row_bytes, ResourceGuard};
use crate::join::{split_equi_keys, EquiKey};
use crate::metrics::MetricsSink;
use crate::parallel::{parallel_hash_aggregate_with_keys, parallel_hash_join_with_keys};
use crate::result::ProfileNode;
use crate::vectorized::{
    compute_group_keys, compute_join_keys, eval_truth_vec, eval_value_vec, filter_selection,
    vectorizable,
};

/// A unit of the batch stream: a shared columnar batch plus an optional
/// selection vector. `sel: None` means every row is live; `Some(sel)`
/// restricts the chunk to the listed row ids, *in that order* — this is
/// how filters (and join residuals) avoid copying payload columns.
pub(crate) struct Chunk {
    /// The (possibly shared / oversized) columnar data.
    pub(crate) batch: ColumnarBatch,
    /// Live row ids into `batch`, in output order; `None` = all rows.
    pub(crate) sel: Option<Vec<u32>>,
}

impl Chunk {
    /// Number of live rows.
    fn out_len(&self) -> usize {
        self.sel.as_ref().map_or(self.batch.len(), Vec::len)
    }

    /// Iterate live row ids in output order.
    fn indices(&self) -> SelIter<'_> {
        match &self.sel {
            Some(sel) => SelIter::Sel(sel.iter()),
            None => SelIter::All(0..self.batch.len()),
        }
    }
}

/// Iterator over a chunk's live row ids.
enum SelIter<'a> {
    All(std::ops::Range<usize>),
    Sel(std::slice::Iter<'a, u32>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::All(r) => r.next(),
            SelIter::Sel(it) => it.next().map(|&i| i as usize),
        }
    }
}

/// Total live rows across a chunk stream.
fn stream_len(chunks: &[Chunk]) -> usize {
    chunks.iter().map(Chunk::out_len).sum()
}

/// Materialize a chunk stream as rows (live rows only, in order).
fn chunk_rows(chunks: &[Chunk]) -> Vec<Vec<Value>> {
    let mut rows = Vec::with_capacity(stream_len(chunks));
    for ch in chunks {
        for i in ch.indices() {
            rows.push(ch.batch.columns().iter().map(|c| c.value(i)).collect());
        }
    }
    rows
}

/// Mark every column ordinal `expr` reads in `req`.
fn expr_columns(expr: &BoundExpr, req: &mut [bool]) {
    match expr {
        BoundExpr::Column(i) => {
            if let Some(slot) = req.get_mut(*i) {
                *slot = true;
            }
        }
        BoundExpr::Literal(_) => {}
        BoundExpr::Binary { left, right, .. } => {
            expr_columns(left, req);
            expr_columns(right, req);
        }
        BoundExpr::Not(e) | BoundExpr::Neg(e) => expr_columns(e, req),
        BoundExpr::IsNull { expr, .. } => expr_columns(expr, req),
    }
}

fn mark(req: &mut [bool], i: usize) {
    if let Some(slot) = req.get_mut(i) {
        *slot = true;
    }
}

/// Whole-plan gate: can `plan` run batch-native end to end?
///
/// Requires every operator to be batch-implemented and every expression
/// to be in the error-free vectorizable domain, with two carve-outs:
/// aggregate *arguments* only need to bind (they are evaluated
/// row-major inside the aggregate, preserving the row engine's error
/// order), and a join merely needs extractable equi keys with a
/// vectorizable (or absent) residual. A `false` anywhere sends the
/// whole plan to the row engine — never a per-operator mix — so error
/// behaviour is always exactly the oracle's.
#[must_use]
pub fn supported(plan: &LogicalPlan, options: &ExecOptions) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, predicate } => {
            supported(input, options)
                && input
                    .schema()
                    .ok()
                    .and_then(|s| predicate.bind(&s).ok())
                    .is_some_and(|b| vectorizable(&b))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            supported(input, options)
                && input.schema().ok().is_some_and(|s| {
                    exprs
                        .iter()
                        .all(|(e, _)| e.bind(&s).ok().is_some_and(|b| vectorizable(&b)))
                })
        }
        LogicalPlan::SubqueryAlias { input, .. } => supported(input, options),
        LogicalPlan::Join {
            left,
            right,
            condition,
        } => {
            if !matches!(options.join, JoinAlgo::Auto | JoinAlgo::Hash) {
                return false;
            }
            if !supported(left, options) || !supported(right, options) {
                return false;
            }
            let (Ok(ls), Ok(rs)) = (left.schema(), right.schema()) else {
                return false;
            };
            let (keys, residual) = split_equi_keys(condition, &ls, &rs);
            if keys.is_empty() {
                return false;
            }
            match Expr::conjunction(residual) {
                None => true,
                Some(e) => e.bind(&ls.join(&rs)).ok().is_some_and(|b| vectorizable(&b)),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            if options.agg != AggAlgo::Hash {
                return false;
            }
            if !supported(input, options) {
                return false;
            }
            let Ok(s) = input.schema() else {
                return false;
            };
            group_by
                .iter()
                .all(|e| e.bind(&s).ok().is_some_and(|b| vectorizable(&b)))
                && aggregates
                    .iter()
                    .all(|(call, _)| call.arg.as_ref().is_none_or(|e| e.bind(&s).is_ok()))
        }
        LogicalPlan::CrossJoin { .. } | LogicalPlan::Sort { .. } => false,
    }
}

/// Concatenate a chunk stream into one dense batch, compacting away
/// selection vectors. Columns whose `required` slot is `false` become
/// all-NULL placeholders (never read downstream); everything else is
/// gathered and merged variant-natively (typed vectors stay typed,
/// shared-dictionary columns keep their codes).
fn concat_chunks(chunks: &[Chunk], required: &[bool]) -> Result<ColumnarBatch> {
    let total = stream_len(chunks);
    if total > u32::MAX as usize {
        return Err(internal_err!(
            "batch of {total} rows exceeds selection-vector range"
        ));
    }
    let mut cols = Vec::with_capacity(required.len());
    for (c, req) in required.iter().enumerate() {
        if !*req {
            cols.push(ColumnVector::all_null(total));
            continue;
        }
        let mut parts = Vec::with_capacity(chunks.len());
        for ch in chunks {
            let col = ch.batch.column(c)?;
            parts.push(match &ch.sel {
                Some(sel) => col.gather(sel),
                None => col.clone(),
            });
        }
        cols.push(concat_columns(&parts, total));
    }
    ColumnarBatch::from_columns(cols, total)
}

/// Merge column parts of (ideally) one variant into a single vector.
/// Heterogeneous or foreign-dictionary parts decode through [`Value`]s.
fn concat_columns(parts: &[ColumnVector], total: usize) -> ColumnVector {
    fn merged_validity(parts: &[ColumnVector], total: usize) -> Bitmap {
        let mut v = Bitmap::new_all(total, true);
        let mut off = 0usize;
        for p in parts {
            for i in 0..p.len() {
                if !p.is_valid(i) {
                    v.set(off + i, false);
                }
            }
            off += p.len();
        }
        v
    }
    if parts.iter().all(|p| matches!(p, ColumnVector::Int { .. })) {
        let mut values = Vec::with_capacity(total);
        for p in parts {
            if let ColumnVector::Int { values: v, .. } = p {
                values.extend_from_slice(v);
            }
        }
        let validity = merged_validity(parts, total);
        return ColumnVector::Int { values, validity };
    }
    if parts
        .iter()
        .all(|p| matches!(p, ColumnVector::Float { .. }))
    {
        let mut values = Vec::with_capacity(total);
        for p in parts {
            if let ColumnVector::Float { values: v, .. } = p {
                values.extend_from_slice(v);
            }
        }
        let validity = merged_validity(parts, total);
        return ColumnVector::Float { values, validity };
    }
    if parts.iter().all(|p| matches!(p, ColumnVector::Bool { .. })) {
        let mut values = Vec::with_capacity(total);
        for p in parts {
            if let ColumnVector::Bool { values: v, .. } = p {
                values.extend_from_slice(v);
            }
        }
        let validity = merged_validity(parts, total);
        return ColumnVector::Bool { values, validity };
    }
    if parts.iter().all(|p| matches!(p, ColumnVector::Str { .. })) {
        let mut values = Vec::with_capacity(total);
        for p in parts {
            if let ColumnVector::Str { values: v, .. } = p {
                values.extend(v.iter().cloned());
            }
        }
        let validity = merged_validity(parts, total);
        return ColumnVector::Str { values, validity };
    }
    if let Some(ColumnVector::Dict { dict: first, .. }) = parts.first() {
        let shared = parts
            .iter()
            .all(|p| matches!(p, ColumnVector::Dict { dict, .. } if Arc::ptr_eq(dict, first)));
        if shared {
            let mut codes = Vec::with_capacity(total);
            for p in parts {
                if let ColumnVector::Dict { codes: c, .. } = p {
                    codes.extend_from_slice(c);
                }
            }
            return ColumnVector::Dict {
                codes,
                dict: Arc::clone(first),
            };
        }
    }
    let mut vals = Vec::with_capacity(total);
    for p in parts {
        for i in 0..p.len() {
            vals.push(p.value(i));
        }
    }
    ColumnVector::from_values(vals.iter())
}

impl Executor<'_> {
    /// Run `plan` batch-native and materialize the result rows at the
    /// very end. Callers must have checked [`supported`] first.
    pub(crate) fn run_batched(
        &self,
        plan: &LogicalPlan,
        guard: &ResourceGuard,
    ) -> Result<(Vec<Vec<Value>>, ProfileNode)> {
        let required = vec![true; plan.schema()?.len()];
        let (chunks, profile) = self.run_chunks(plan, &required, guard)?;
        Ok((chunk_rows(&chunks), profile))
    }

    /// Recursively execute `plan`, producing a chunk stream. `required`
    /// flags which output columns the parent will read; operators may
    /// emit all-NULL placeholders for the rest (late materialization) —
    /// except scans, which always build every column so fault-injection
    /// counters stay identical to the row path.
    fn run_chunks(
        &self,
        plan: &LogicalPlan,
        required: &[bool],
        guard: &ResourceGuard,
    ) -> Result<(Vec<Chunk>, ProfileNode)> {
        match plan {
            LogicalPlan::Scan { table, schema, .. } => {
                let sink = self.sink();
                let timer = sink.start_timer();
                let mut cursor = self.storage.open_scan(table)?;
                if cursor.arity() != schema.len() {
                    return Err(internal_err!("scan schema arity mismatch for {table}"));
                }
                let mut chunks = Vec::new();
                let mut n = 0usize;
                while let Some(batch) = cursor.next_columnar()? {
                    guard.charge_rows(batch.len())?;
                    sink.add_batches(1);
                    sink.add_vectors(1);
                    n += batch.len();
                    chunks.push(Chunk { batch, sel: None });
                }
                sink.record_probe(timer);
                let profile = ProfileNode::new(plan.label(), "Scan", n, vec![])
                    .with_metrics(sink.finish(n, n));
                Ok((chunks, profile))
            }

            LogicalPlan::Filter { input, predicate } => {
                let in_schema = input.schema()?;
                let bound = predicate.bind(&in_schema)?;
                let mut child_req = required.to_vec();
                child_req.resize(in_schema.len(), false);
                expr_columns(&bound, &mut child_req);
                let (in_chunks, child) = self.run_chunks(input, &child_req, guard)?;
                let sink = self.sink();
                let timer = sink.start_timer();
                let n_in = stream_len(&in_chunks);
                let mut out_chunks = Vec::with_capacity(in_chunks.len());
                let mut out_count = 0usize;
                for ch in in_chunks {
                    guard.tick()?;
                    let kt = sink.start_timer();
                    sink.add_vectors(1);
                    let truths = eval_truth_vec(&bound, &ch.batch)?;
                    sink.record_kernel(kt);
                    let sel: Vec<u32> = match &ch.sel {
                        Some(sel) => sel
                            .iter()
                            .copied()
                            .filter(|&i| truths.get(i as usize) == Some(&Truth::True))
                            .collect(),
                        None => truths
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| **t == Truth::True)
                            .map(|(i, _)| i as u32)
                            .collect(),
                    };
                    out_count += sel.len();
                    out_chunks.push(Chunk {
                        batch: ch.batch,
                        sel: Some(sel),
                    });
                }
                sink.add_selected(out_count as u64);
                guard.charge_rows(out_count)?;
                sink.add_batches(1);
                sink.record_probe(timer);
                let profile = ProfileNode::new(plan.label(), "Filter", out_count, vec![child])
                    .with_metrics(sink.finish(n_in, out_count));
                Ok((out_chunks, profile))
            }

            LogicalPlan::Project {
                input,
                exprs,
                distinct,
            } => {
                let in_schema = input.schema()?;
                let bound: Vec<BoundExpr> = exprs
                    .iter()
                    .map(|(e, _)| e.bind(&in_schema))
                    .collect::<Result<_>>()?;
                let mut child_req = vec![false; in_schema.len()];
                for b in &bound {
                    expr_columns(b, &mut child_req);
                }
                let (in_chunks, child) = self.run_chunks(input, &child_req, guard)?;
                let sink = self.sink();
                let timer = sink.start_timer();
                let n_in = stream_len(&in_chunks);
                let mut out_chunks = Vec::with_capacity(in_chunks.len());
                let mut out_count = 0usize;
                let mut seen: HashSet<GroupKey> = HashSet::new();
                for ch in in_chunks {
                    guard.tick()?;
                    let kt = sink.start_timer();
                    sink.add_vectors(1);
                    let cols: Vec<ColumnVector> = bound
                        .iter()
                        .map(|b| Ok(eval_value_vec(b, &ch.batch)?.into_owned()))
                        .collect::<Result<_>>()?;
                    sink.record_kernel(kt);
                    let len = ch.batch.len();
                    let out_batch = ColumnarBatch::from_columns(cols, len)?;
                    let sel = if *distinct {
                        let mut kept: Vec<u32> = Vec::new();
                        for i in ch.indices() {
                            let key =
                                GroupKey(out_batch.columns().iter().map(|c| c.value(i)).collect());
                            if seen.insert(key) {
                                kept.push(i as u32);
                            }
                        }
                        Some(kept)
                    } else {
                        ch.sel
                    };
                    out_count += sel.as_ref().map_or(len, Vec::len);
                    out_chunks.push(Chunk {
                        batch: out_batch,
                        sel,
                    });
                }
                guard.charge_rows(out_count)?;
                let op = if *distinct {
                    sink.add_hash_entries(out_count as u64);
                    "ProjectDistinct"
                } else {
                    "Project"
                };
                sink.add_batches(1);
                sink.record_probe(timer);
                let profile = ProfileNode::new(plan.label(), op, out_count, vec![child])
                    .with_metrics(sink.finish(n_in, out_count));
                Ok((out_chunks, profile))
            }

            LogicalPlan::SubqueryAlias { input, .. } => {
                let (chunks, child) = self.run_chunks(input, required, guard)?;
                let sink = self.sink();
                sink.add_batches(1);
                let n = stream_len(&chunks);
                Ok((
                    chunks,
                    ProfileNode::new(plan.label(), "SubqueryAlias", n, vec![child])
                        .with_metrics(sink.finish(n, n)),
                ))
            }

            LogicalPlan::Join {
                left,
                right,
                condition,
            } => {
                let lschema = left.schema()?;
                let rschema = right.schema()?;
                let joined_schema = lschema.join(&rschema);
                let (keys, residual) = split_equi_keys(condition, &lschema, &rschema);
                let residual_bound = Expr::conjunction(residual)
                    .map(|e| e.bind(&joined_schema))
                    .transpose()?;
                let l_arity = lschema.len();
                let r_arity = rschema.len();
                let parallel = self.options.threads.get() > 1;
                let (lreq, rreq) = if parallel {
                    (vec![true; l_arity], vec![true; r_arity])
                } else {
                    let mut lreq = vec![false; l_arity];
                    let mut rreq = vec![false; r_arity];
                    for (i, r) in required.iter().enumerate() {
                        if !*r {
                            continue;
                        }
                        if i < l_arity {
                            mark(&mut lreq, i);
                        } else {
                            mark(&mut rreq, i - l_arity);
                        }
                    }
                    for k in &keys {
                        mark(&mut lreq, k.left);
                        mark(&mut rreq, k.right);
                    }
                    if let Some(rb) = &residual_bound {
                        let mut jreq = vec![false; l_arity + r_arity];
                        expr_columns(rb, &mut jreq);
                        for (i, r) in jreq.iter().enumerate() {
                            if *r {
                                if i < l_arity {
                                    mark(&mut lreq, i);
                                } else {
                                    mark(&mut rreq, i - l_arity);
                                }
                            }
                        }
                    }
                    (lreq, rreq)
                };
                let (l_chunks, lp) = self.run_chunks(left, &lreq, guard)?;
                let (r_chunks, rp) = self.run_chunks(right, &rreq, guard)?;
                let l_len = stream_len(&l_chunks);
                let r_len = stream_len(&r_chunks);
                let sink = self.sink();
                sink.add_batches(input_batches(l_len) + input_batches(r_len));
                let (out_chunk, op) = if parallel {
                    let l = chunk_rows(&l_chunks);
                    let r = chunk_rows(&r_chunks);
                    let kt = sink.start_timer();
                    let lords: Vec<usize> = keys.iter().map(|k| k.left).collect();
                    let rords: Vec<usize> = keys.iter().map(|k| k.right).collect();
                    let lk = compute_join_keys(&l, l_arity, &lords, &sink)?;
                    let rk = compute_join_keys(&r, r_arity, &rords, &sink)?;
                    sink.record_kernel(kt);
                    let rows = parallel_hash_join_with_keys(
                        &l,
                        &r,
                        &keys,
                        &residual_bound,
                        Some(&lk),
                        Some(&rk),
                        guard,
                        self.options.threads,
                        &sink,
                    )?;
                    let batch = ColumnarBatch::from_rows(&rows, l_arity + r_arity)?;
                    (Chunk { batch, sel: None }, "ParallelHashJoin")
                } else {
                    (
                        join_columnar(
                            &l_chunks,
                            &r_chunks,
                            &lreq,
                            &rreq,
                            &keys,
                            &residual_bound,
                            guard,
                            &sink,
                        )?,
                        "HashJoin",
                    )
                };
                let out_count = out_chunk.out_len();
                guard.charge_rows(out_count)?;
                let profile = ProfileNode::new(plan.label(), op, out_count, vec![lp, rp])
                    .with_metrics(sink.finish(l_len + r_len, out_count));
                Ok((vec![out_chunk], profile))
            }

            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema()?;
                let group_bound: Vec<BoundExpr> = group_by
                    .iter()
                    .map(|e| e.bind(&in_schema))
                    .collect::<Result<_>>()?;
                let compiled: Vec<CompiledAggregate> = aggregates
                    .iter()
                    .map(|(call, _)| {
                        let arg = call.arg.as_ref().map(|e| e.bind(&in_schema)).transpose()?;
                        Ok(CompiledAggregate {
                            call: call.clone(),
                            arg,
                        })
                    })
                    .collect::<Result<_>>()?;
                let parallel = self.options.threads.get() > 1;
                let args_vec = compiled
                    .iter()
                    .all(|c| c.arg.as_ref().is_none_or(vectorizable));
                let child_req = if parallel {
                    vec![true; in_schema.len()]
                } else {
                    let mut req = vec![false; in_schema.len()];
                    for b in &group_bound {
                        expr_columns(b, &mut req);
                    }
                    for c in &compiled {
                        if let Some(a) = &c.arg {
                            expr_columns(a, &mut req);
                        }
                    }
                    req
                };
                let (in_chunks, child) = self.run_chunks(input, &child_req, guard)?;
                let n_in = stream_len(&in_chunks);
                let sink = self.sink();
                sink.add_batches(input_batches(n_in));
                let (rows, op) = if parallel {
                    let in_rows = chunk_rows(&in_chunks);
                    let precomputed = if group_bound.is_empty() {
                        None
                    } else {
                        let kt = sink.start_timer();
                        let keys =
                            compute_group_keys(&in_rows, in_schema.len(), &group_bound, &sink)?;
                        sink.record_kernel(kt);
                        Some(keys)
                    };
                    (
                        parallel_hash_aggregate_with_keys(
                            &in_rows,
                            &group_bound,
                            &compiled,
                            precomputed.as_deref(),
                            guard,
                            self.options.threads,
                            &sink,
                        )?,
                        "ParallelHashAggregate",
                    )
                } else {
                    (
                        aggregate_columnar(
                            &in_chunks,
                            &group_bound,
                            &compiled,
                            args_vec,
                            guard,
                            &sink,
                        )?,
                        "HashAggregate",
                    )
                };
                guard.charge_rows(rows.len())?;
                let n_out = rows.len();
                let batch = ColumnarBatch::from_rows(&rows, plan.schema()?.len())?;
                let profile = ProfileNode::new(plan.label(), op, n_out, vec![child])
                    .with_metrics(sink.finish(n_in, n_out));
                Ok((vec![Chunk { batch, sel: None }], profile))
            }

            LogicalPlan::CrossJoin { .. } | LogicalPlan::Sort { .. } => Err(internal_err!(
                "operator {} is not batch-native; the supported() gate should have rejected it",
                plan.label()
            )),
        }
    }
}

/// The build-side index of the columnar hash join: `i64` codes for a
/// single typed-Int key, `u32` dictionary codes for a single dictionary
/// key, and `=ⁿ`-hashed [`GroupKey`]s otherwise. All three reproduce
/// the row path's search-condition semantics: NULL keys (invalid slots,
/// out-of-dictionary codes) are skipped on both sides.
enum JoinIndex {
    Int(HashMap<i64, Vec<u32>>),
    Dict(HashMap<u32, Vec<u32>>),
    Generic(HashMap<GroupKey, Vec<u32>>),
}

/// Serial columnar hash join: concatenate each side into one dense
/// batch, build on the right, probe with the left collecting `(l, r)`
/// row-id pairs, gather payload columns once per output, and apply the
/// residual as a selection vector. Counter and guard-charge order
/// mirror [`crate::join::hash_join_with_keys`] call-for-call.
#[allow(clippy::too_many_arguments)]
fn join_columnar(
    l_chunks: &[Chunk],
    r_chunks: &[Chunk],
    lreq: &[bool],
    rreq: &[bool],
    keys: &[EquiKey],
    residual: &Option<BoundExpr>,
    guard: &ResourceGuard,
    sink: &MetricsSink,
) -> Result<Chunk> {
    // Concatenating each side into one dense batch is this operator's
    // vector kernel: it compacts upstream selection vectors and lines
    // the key columns up for code-native hashing.
    let kt = sink.start_timer();
    let lbatch = concat_chunks(l_chunks, lreq)?;
    let rbatch = concat_chunks(r_chunks, rreq)?;
    sink.add_vectors(2);
    sink.record_kernel(kt);
    let lkey_cols: Vec<&ColumnVector> = keys
        .iter()
        .map(|k| lbatch.column(k.left))
        .collect::<Result<_>>()?;
    let rkey_cols: Vec<&ColumnVector> = keys
        .iter()
        .map(|k| rbatch.column(k.right))
        .collect::<Result<_>>()?;

    let mut build_bytes = 0u64;
    let mut build_entries = 0u64;
    let build_timer = sink.start_timer();
    let built = (|| -> Result<JoinIndex> {
        Ok(match (lkey_cols.as_slice(), rkey_cols.as_slice()) {
            ([ColumnVector::Int { .. }], [ColumnVector::Int { values, validity }]) => {
                let per = row_bytes(&[Value::Int(0)]) + std::mem::size_of::<usize>() as u64;
                let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
                for (i, v) in values.iter().enumerate() {
                    guard.tick()?;
                    if !validity.get(i) {
                        continue;
                    }
                    build_bytes += per;
                    build_entries += 1;
                    guard.charge_memory(per)?;
                    map.entry(*v).or_default().push(i as u32);
                }
                JoinIndex::Int(map)
            }
            ([ColumnVector::Dict { .. }], [ColumnVector::Dict { codes, dict }]) => {
                let base = row_bytes(&[Value::str("")]) + std::mem::size_of::<usize>() as u64;
                let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
                for (i, c) in codes.iter().enumerate() {
                    guard.tick()?;
                    let Some(s) = dict.get(*c) else {
                        continue;
                    };
                    let per = base + s.len() as u64;
                    build_bytes += per;
                    build_entries += 1;
                    guard.charge_memory(per)?;
                    map.entry(*c).or_default().push(i as u32);
                }
                JoinIndex::Dict(map)
            }
            _ => {
                let mut map: HashMap<GroupKey, Vec<u32>> = HashMap::new();
                for i in 0..rbatch.len() {
                    guard.tick()?;
                    if rkey_cols.iter().any(|c| !c.is_valid(i)) {
                        continue;
                    }
                    let key = GroupKey(rkey_cols.iter().map(|c| c.value(i)).collect());
                    let per = row_bytes(&key.0) + std::mem::size_of::<usize>() as u64;
                    build_bytes += per;
                    build_entries += 1;
                    guard.charge_memory(per)?;
                    map.entry(key).or_default().push(i as u32);
                }
                JoinIndex::Generic(map)
            }
        })
    })();
    sink.record_build(build_timer);
    sink.add_hash_entries(build_entries);
    sink.add_state_bytes(build_bytes);

    let probe_timer = sink.start_timer();
    let probed = built.and_then(|index| {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        match (&index, lkey_cols.as_slice()) {
            (JoinIndex::Int(map), [ColumnVector::Int { values, validity }]) => {
                for (i, v) in values.iter().enumerate() {
                    guard.tick()?;
                    if !validity.get(i) {
                        continue;
                    }
                    if let Some(hits) = map.get(v) {
                        for &ri in hits {
                            guard.tick()?;
                            pairs.push((i as u32, ri));
                        }
                    }
                }
            }
            (JoinIndex::Dict(map), [ColumnVector::Dict { codes, dict }]) => {
                // Probe on raw codes when both sides share a dictionary;
                // otherwise remap left codes to right codes by decoded
                // string once, up front. Left strings the right side has
                // never seen map to NULL_CODE, which is never in `map`.
                let rdict = match rkey_cols.as_slice() {
                    [ColumnVector::Dict { dict: rd, .. }] => Arc::clone(rd),
                    _ => return Err(internal_err!("join build/probe key shape diverged")),
                };
                let remap: Option<Vec<u32>> = if Arc::ptr_eq(dict, &rdict) {
                    None
                } else {
                    Some(
                        (0..dict.len() as u32)
                            .map(|lc| {
                                dict.get(lc)
                                    .and_then(|s| rdict.code_of(s))
                                    .unwrap_or(NULL_CODE)
                            })
                            .collect(),
                    )
                };
                for (i, c) in codes.iter().enumerate() {
                    guard.tick()?;
                    if (*c as usize) >= dict.len() {
                        continue;
                    }
                    let rc = match &remap {
                        None => *c,
                        Some(m) => m.get(*c as usize).copied().unwrap_or(NULL_CODE),
                    };
                    if let Some(hits) = map.get(&rc) {
                        for &ri in hits {
                            guard.tick()?;
                            pairs.push((i as u32, ri));
                        }
                    }
                }
            }
            (JoinIndex::Generic(map), _) => {
                for i in 0..lbatch.len() {
                    guard.tick()?;
                    if lkey_cols.iter().any(|c| !c.is_valid(i)) {
                        continue;
                    }
                    let key = GroupKey(lkey_cols.iter().map(|c| c.value(i)).collect());
                    if let Some(hits) = map.get(&key) {
                        for &ri in hits {
                            guard.tick()?;
                            pairs.push((i as u32, ri));
                        }
                    }
                }
            }
            _ => return Err(internal_err!("join build/probe key shape diverged")),
        }
        Ok(pairs)
    });
    sink.record_probe(probe_timer);
    guard.release_memory(build_bytes);
    let pairs = probed?;

    if pairs.len() > u32::MAX as usize {
        return Err(internal_err!(
            "join output of {} rows exceeds selection-vector range",
            pairs.len()
        ));
    }
    let lsel: Vec<u32> = pairs.iter().map(|&(li, _)| li).collect();
    let rsel: Vec<u32> = pairs.iter().map(|&(_, ri)| ri).collect();
    let total = pairs.len();
    let mut cols = Vec::with_capacity(lreq.len() + rreq.len());
    for (c, col) in lbatch.columns().iter().enumerate() {
        cols.push(if lreq.get(c) == Some(&true) {
            col.gather(&lsel)
        } else {
            ColumnVector::all_null(total)
        });
    }
    for (c, col) in rbatch.columns().iter().enumerate() {
        cols.push(if rreq.get(c) == Some(&true) {
            col.gather(&rsel)
        } else {
            ColumnVector::all_null(total)
        });
    }
    let out = ColumnarBatch::from_columns(cols, total)?;
    let sel = match residual {
        Some(rb) => Some(filter_selection(rb, &out)?),
        None => None,
    };
    Ok(Chunk { batch: out, sel })
}

/// Group lookup strategy for the columnar hash aggregate. Decided from
/// the first chunk's key-column variant; a later chunk of a different
/// shape demotes the table to the generic `=ⁿ` [`GroupKey`] map (the
/// decoded keys are kept in `order`, so demotion is lossless).
enum Keyer {
    Unset,
    Int(HashMap<Option<i64>, usize>),
    Dict {
        map: HashMap<u32, usize>,
        dict: Arc<StringDict>,
    },
    Generic(HashMap<GroupKey, usize>),
}

/// The columnar aggregation table: a compact key → slot map (see
/// [`Keyer`]) plus, per slot, the decoded `=ⁿ` group key (first-seen
/// order — this is the output order) and the accumulators.
struct Groups {
    keyer: Keyer,
    order: Vec<GroupKey>,
    accs: Vec<Vec<Accumulator>>,
}

impl Groups {
    fn new() -> Groups {
        Groups {
            keyer: Keyer::Unset,
            order: Vec::new(),
            accs: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    /// Pick (or keep) the lookup strategy for a chunk whose group-key
    /// columns are `key_cols`, demoting to generic on a shape change.
    fn prepare(&mut self, key_cols: &[ColumnVector]) {
        enum Want {
            Int,
            Dict(Arc<StringDict>),
            Generic,
        }
        let want = match key_cols {
            [ColumnVector::Int { .. }] => Want::Int,
            [ColumnVector::Dict { dict, .. }] => Want::Dict(Arc::clone(dict)),
            _ => Want::Generic,
        };
        match (&self.keyer, want) {
            (Keyer::Unset, Want::Int) => self.keyer = Keyer::Int(HashMap::new()),
            (Keyer::Unset, Want::Dict(d)) => {
                self.keyer = Keyer::Dict {
                    map: HashMap::new(),
                    dict: d,
                }
            }
            (Keyer::Unset, Want::Generic) => self.keyer = Keyer::Generic(HashMap::new()),
            (Keyer::Int(_), Want::Int) | (Keyer::Generic(_), _) => {}
            (Keyer::Dict { dict, .. }, Want::Dict(d)) if Arc::ptr_eq(dict, &d) => {}
            _ => self.demote(),
        }
    }

    /// Rebuild the lookup map as a generic `GroupKey` table from the
    /// decoded keys already in `order`.
    fn demote(&mut self) {
        let mut map = HashMap::with_capacity(self.order.len());
        for (slot, key) in self.order.iter().enumerate() {
            map.insert(key.clone(), slot);
        }
        self.keyer = Keyer::Generic(map);
    }

    /// Find or create the group slot for row `i`, charging the guard
    /// for new entries exactly as the row path does (decoded-key
    /// `row_bytes` + `ACC_ENTRY_BYTES` per aggregate, charged before
    /// insertion).
    fn slot(
        &mut self,
        key_cols: &[ColumnVector],
        i: usize,
        compiled: &[CompiledAggregate],
        table_bytes: &mut u64,
        guard: &ResourceGuard,
    ) -> Result<usize> {
        let acc_bytes = ACC_ENTRY_BYTES * compiled.len().max(1) as u64;
        match &mut self.keyer {
            Keyer::Int(map) => {
                let k = match key_cols.first() {
                    Some(ColumnVector::Int { values, validity }) if validity.get(i) => {
                        values.get(i).copied()
                    }
                    _ => None,
                };
                if let Some(&s) = map.get(&k) {
                    return Ok(s);
                }
                let key = GroupKey(vec![k.map_or(Value::Null, Value::Int)]);
                let entry_bytes = row_bytes(&key.0) + acc_bytes;
                *table_bytes += entry_bytes;
                guard.charge_memory(entry_bytes)?;
                let s = self.order.len();
                map.insert(k, s);
                self.order.push(key);
                self.accs
                    .push(compiled.iter().map(|a| a.call.accumulator()).collect());
                Ok(s)
            }
            Keyer::Dict { map, dict } => {
                let c = match key_cols.first() {
                    Some(ColumnVector::Dict { codes, .. }) => {
                        codes.get(i).copied().unwrap_or(NULL_CODE)
                    }
                    _ => NULL_CODE,
                };
                // Every invalid code is the same `=ⁿ` NULL group.
                let c = if (c as usize) < dict.len() {
                    c
                } else {
                    NULL_CODE
                };
                if let Some(&s) = map.get(&c) {
                    return Ok(s);
                }
                let key = GroupKey(vec![dict.get(c).map_or(Value::Null, Value::str)]);
                let entry_bytes = row_bytes(&key.0) + acc_bytes;
                *table_bytes += entry_bytes;
                guard.charge_memory(entry_bytes)?;
                let s = self.order.len();
                map.insert(c, s);
                self.order.push(key);
                self.accs
                    .push(compiled.iter().map(|a| a.call.accumulator()).collect());
                Ok(s)
            }
            Keyer::Generic(map) => {
                let key = GroupKey(key_cols.iter().map(|c| c.value(i)).collect());
                if let Some(&s) = map.get(&key) {
                    return Ok(s);
                }
                let entry_bytes = row_bytes(&key.0) + acc_bytes;
                *table_bytes += entry_bytes;
                guard.charge_memory(entry_bytes)?;
                let s = self.order.len();
                map.insert(key.clone(), s);
                self.order.push(key);
                self.accs
                    .push(compiled.iter().map(|a| a.call.accumulator()).collect());
                Ok(s)
            }
            Keyer::Unset => Err(internal_err!("group keyer used before prepare()")),
        }
    }

    fn accs_mut(&mut self, slot: usize) -> Result<&mut Vec<Accumulator>> {
        self.accs
            .get_mut(slot)
            .ok_or_else(|| internal_err!("group slot {slot} out of bounds"))
    }

    /// Drain into output rows: decoded key values ++ aggregate results,
    /// in first-seen group order.
    fn finish(self) -> Vec<Vec<Value>> {
        self.order
            .into_iter()
            .zip(self.accs)
            .map(|(key, accs)| {
                let mut row = key.0;
                row.extend(accs.iter().map(Accumulator::finish));
                row
            })
            .collect()
    }
}

/// Serial columnar hash aggregate: stream chunks (no concatenation),
/// evaluating group keys — and, when every argument is vectorizable,
/// aggregate arguments — column-at-a-time, and group via [`Groups`].
/// Non-vectorizable arguments are evaluated row-major per live row, so
/// the first error is the row engine's. Counter and guard-charge order
/// mirror [`crate::aggregate::hash_aggregate_with_keys`] call-for-call.
fn aggregate_columnar(
    chunks: &[Chunk],
    group_bound: &[BoundExpr],
    compiled: &[CompiledAggregate],
    args_vec: bool,
    guard: &ResourceGuard,
    sink: &MetricsSink,
) -> Result<Vec<Vec<Value>>> {
    // One chunk's evaluated aggregate-argument columns: one entry per
    // aggregate, `None` for `COUNT(*)`.
    fn arg_columns(
        compiled: &[CompiledAggregate],
        batch: &ColumnarBatch,
    ) -> Result<Vec<Option<ColumnVector>>> {
        compiled
            .iter()
            .map(|c| match &c.arg {
                Some(a) => Ok(Some(eval_value_vec(a, batch)?.into_owned())),
                None => Ok(None),
            })
            .collect()
    }
    fn update_from_cols(
        cols: &[Option<ColumnVector>],
        accs: &mut [Accumulator],
        i: usize,
    ) -> Result<()> {
        for (ac, acc) in cols.iter().zip(accs.iter_mut()) {
            match ac {
                Some(col) => acc.update(&col.value(i))?,
                None => acc.update(&Value::Int(1))?,
            }
        }
        Ok(())
    }

    if group_bound.is_empty() {
        // Scalar aggregate: exactly one group, even over empty input.
        let scalar_timer = sink.start_timer();
        let mut accs: Vec<Accumulator> = compiled.iter().map(|a| a.call.accumulator()).collect();
        for ch in chunks {
            let cols = if args_vec {
                let kt = sink.start_timer();
                sink.add_vectors(1);
                let cols = arg_columns(compiled, &ch.batch)?;
                sink.record_kernel(kt);
                Some(cols)
            } else {
                None
            };
            for i in ch.indices() {
                guard.tick()?;
                match &cols {
                    Some(cols) => update_from_cols(cols, &mut accs, i)?,
                    None => {
                        let row: Vec<Value> =
                            ch.batch.columns().iter().map(|c| c.value(i)).collect();
                        for (agg, acc) in compiled.iter().zip(accs.iter_mut()) {
                            agg.update(acc, &row)?;
                        }
                    }
                }
            }
        }
        sink.record_build(scalar_timer);
        return Ok(vec![accs.iter().map(Accumulator::finish).collect()]);
    }

    let build_timer = sink.start_timer();
    let mut table_bytes = 0u64;
    let mut groups = Groups::new();
    let filled = (|| -> Result<()> {
        for ch in chunks {
            let kt = sink.start_timer();
            sink.add_vectors(1);
            let key_cols: Vec<ColumnVector> = group_bound
                .iter()
                .map(|b| Ok(eval_value_vec(b, &ch.batch)?.into_owned()))
                .collect::<Result<_>>()?;
            let arg_cols = if args_vec {
                Some(arg_columns(compiled, &ch.batch)?)
            } else {
                None
            };
            sink.record_kernel(kt);
            groups.prepare(&key_cols);
            for i in ch.indices() {
                guard.tick()?;
                let slot = groups.slot(&key_cols, i, compiled, &mut table_bytes, guard)?;
                let accs = groups.accs_mut(slot)?;
                match &arg_cols {
                    Some(cols) => update_from_cols(cols, accs, i)?,
                    None => {
                        let row: Vec<Value> =
                            ch.batch.columns().iter().map(|c| c.value(i)).collect();
                        for (agg, acc) in compiled.iter().zip(accs.iter_mut()) {
                            agg.update(acc, &row)?;
                        }
                    }
                }
            }
        }
        Ok(())
    })();
    sink.record_build(build_timer);
    sink.add_hash_entries(groups.len() as u64);
    sink.add_state_bytes(table_bytes);
    let probe_timer = sink.start_timer();
    let out = filled.map(|()| groups.finish());
    sink.record_probe(probe_timer);
    guard.release_memory(table_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[Option<i64>]) -> ColumnVector {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect();
        ColumnVector::from_values(values.iter())
    }

    #[test]
    fn concat_chunks_compacts_selections_and_keeps_variants() {
        let b1 = ColumnarBatch::from_columns(vec![int_col(&[Some(1), Some(2), None])], 3).unwrap();
        let b2 = ColumnarBatch::from_columns(vec![int_col(&[Some(4), Some(5)])], 2).unwrap();
        let chunks = vec![
            Chunk {
                batch: b1,
                sel: Some(vec![2, 0]),
            },
            Chunk {
                batch: b2,
                sel: None,
            },
        ];
        assert_eq!(stream_len(&chunks), 4);
        let merged = concat_chunks(&chunks, &[true]).unwrap();
        assert!(matches!(
            merged.column(0).unwrap(),
            ColumnVector::Int { .. }
        ));
        assert_eq!(
            merged.to_rows(),
            vec![
                vec![Value::Null],
                vec![Value::Int(1)],
                vec![Value::Int(4)],
                vec![Value::Int(5)],
            ]
        );
    }

    #[test]
    fn concat_chunks_emits_null_placeholders_for_unrequired_columns() {
        let b = ColumnarBatch::from_columns(
            vec![int_col(&[Some(1), Some(2)]), int_col(&[Some(7), Some(8)])],
            2,
        )
        .unwrap();
        let chunks = vec![Chunk {
            batch: b,
            sel: None,
        }];
        let merged = concat_chunks(&chunks, &[true, false]).unwrap();
        assert_eq!(merged.column(0).unwrap().value(1), Value::Int(2));
        assert_eq!(merged.column(1).unwrap().value(0), Value::Null);
        assert_eq!(merged.column(1).unwrap().value(1), Value::Null);
    }

    #[test]
    fn concat_columns_merges_shared_dictionaries_code_native() {
        let mut b = crate::batch::StringDictBuilder::default();
        let c0 = b.intern("x").unwrap();
        let c1 = b.intern("y").unwrap();
        let dict = Arc::new(b.finish());
        let p1 = ColumnVector::Dict {
            codes: vec![c0, NULL_CODE],
            dict: Arc::clone(&dict),
        };
        let p2 = ColumnVector::Dict {
            codes: vec![c1],
            dict: Arc::clone(&dict),
        };
        let merged = concat_columns(&[p1, p2], 3);
        match &merged {
            ColumnVector::Dict { codes, dict: d } => {
                assert!(Arc::ptr_eq(d, &dict), "shared dictionary must survive");
                assert_eq!(codes, &vec![c0, NULL_CODE, c1]);
            }
            other => panic!("expected Dict, got {other:?}"),
        }
    }

    #[test]
    fn groups_demote_preserves_slots_and_order() {
        let guard = ResourceGuard::new(crate::guard::ResourceLimits::default());
        let mut groups = Groups::new();
        let mut bytes = 0u64;
        let ints = vec![int_col(&[Some(10), None, Some(10)])];
        groups.prepare(&ints);
        let s0 = groups.slot(&ints, 0, &[], &mut bytes, &guard).unwrap();
        let s1 = groups.slot(&ints, 1, &[], &mut bytes, &guard).unwrap();
        let s2 = groups.slot(&ints, 2, &[], &mut bytes, &guard).unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 0));
        // A Float chunk arrives: demote to generic; `=ⁿ` still matches
        // Float(10.0) into the Int(10) group and NULL into NULL.
        let floats = vec![ColumnVector::from_values(
            [Value::Float(10.0), Value::Null].iter(),
        )];
        groups.prepare(&floats);
        assert!(matches!(groups.keyer, Keyer::Generic(_)));
        let s3 = groups.slot(&floats, 0, &[], &mut bytes, &guard).unwrap();
        let s4 = groups.slot(&floats, 1, &[], &mut bytes, &guard).unwrap();
        assert_eq!((s3, s4), (0, 1));
        assert_eq!(groups.len(), 2);
    }
}
