//! Adaptive statistics feedback: learned cardinality facts from
//! measured executions.
//!
//! After every metered run the engine walks the executed plan tree in
//! lockstep with its [`ProfileNode`](gbj_exec::ProfileNode) profile and
//! distils three kinds of *facts*:
//!
//! * **table rows** — what a base-table scan actually produced;
//! * **join selectivity** — `|out| / (|left| · |right|)` for each
//!   equi-join, keyed by a canonical signature of its condition mapped
//!   to base tables (so the fact transfers between the lazy and eager
//!   shapes of the same query: an FK equi-join's selectivity is
//!   shape-invariant under the containment assumption);
//! * **group counts** — actual distinct groups per aggregation, keyed
//!   by the base-qualified grouping columns plus the base tables
//!   feeding the aggregate (the eager plan's outer group-by shares its
//!   signature with the lazy plan's only group-by, so one observed
//!   count corrects both shapes — including the multi-column
//!   independence-assumption overestimate).
//!
//! The [`FeedbackStore`] keeps the latest fact per signature and bumps
//! a **stats epoch** only when a fact *materially changes*; re-learning
//! the same numbers is a no-op, which is what makes the adaptive loop
//! converge (and keeps the server's bound-plan cache stable once the
//! choice is correct).

use std::collections::BTreeMap;

use gbj_exec::ProfileNode;
use gbj_expr::{conjuncts, AtomClass, Expr};
use gbj_plan::LogicalPlan;

/// Relative tolerance below which a re-learned fact is "the same" and
/// does not bump the stats epoch.
const SAME_FACT_TOLERANCE: f64 = 1e-9;

/// A batch of facts distilled from one measured execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackDelta {
    /// `(lowercased table name, measured rows)` per base-table scan.
    pub table_rows: Vec<(String, f64)>,
    /// `(join signature, measured selectivity)` per equi-join node.
    pub join_selectivity: Vec<(String, f64)>,
    /// `(group signature, measured distinct groups)` per aggregation.
    pub group_counts: Vec<(String, f64)>,
}

impl FeedbackDelta {
    /// Whether the run produced no learnable facts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table_rows.is_empty()
            && self.join_selectivity.is_empty()
            && self.group_counts.is_empty()
    }
}

/// Learned cardinality facts, consulted by the
/// [`Estimator`](crate::Estimator) on subsequent plannings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackStore {
    table_rows: BTreeMap<String, f64>,
    join_selectivity: BTreeMap<String, f64>,
    group_counts: BTreeMap<String, f64>,
    epoch: u64,
}

impl FeedbackStore {
    /// An empty store at epoch 0.
    #[must_use]
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// The stats epoch: bumped exactly when [`FeedbackStore::absorb`]
    /// changes a fact. Monotone; starts at 0.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Learned row count for a base table, if any.
    #[must_use]
    pub fn table_rows(&self, table: &str) -> Option<f64> {
        self.table_rows.get(&table.to_ascii_lowercase()).copied()
    }

    /// Learned selectivity for a join signature, if any.
    #[must_use]
    pub fn join_selectivity(&self, signature: &str) -> Option<f64> {
        self.join_selectivity.get(signature).copied()
    }

    /// Learned distinct-group count for a grouping signature, if any.
    #[must_use]
    pub fn group_count(&self, signature: &str) -> Option<f64> {
        self.group_counts.get(signature).copied()
    }

    /// Number of facts currently held (all kinds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.table_rows.len() + self.join_selectivity.len() + self.group_counts.len()
    }

    /// Whether the store holds no facts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge a delta into the store. Returns `true` — and bumps the
    /// stats epoch by one — iff at least one fact was new or materially
    /// different; absorbing the same facts twice is a no-op.
    pub fn absorb(&mut self, delta: &FeedbackDelta) -> bool {
        let mut changed = false;
        for (k, v) in &delta.table_rows {
            changed |= upsert(&mut self.table_rows, k, *v);
        }
        for (k, v) in &delta.join_selectivity {
            changed |= upsert(&mut self.join_selectivity, k, *v);
        }
        for (k, v) in &delta.group_counts {
            changed |= upsert(&mut self.group_counts, k, *v);
        }
        if changed {
            self.epoch += 1;
        }
        changed
    }
}

fn upsert(map: &mut BTreeMap<String, f64>, key: &str, value: f64) -> bool {
    if !value.is_finite() {
        return false;
    }
    match map.get(key) {
        Some(old) if (old - value).abs() <= SAME_FACT_TOLERANCE * old.abs().max(1.0) => false,
        _ => {
            map.insert(key.to_string(), value);
            true
        }
    }
}

/// Map a qualifier to its lowercased base-table name via the plan's
/// `(qualifier, table)` pairs.
fn base_of(qualifier: &str, tables: &[(String, String)]) -> Option<String> {
    tables
        .iter()
        .find(|(q, _)| q.eq_ignore_ascii_case(qualifier))
        .map(|(_, t)| t.to_ascii_lowercase())
}

/// Resolve `(qualifier, column)` to `(base_table, base_column)`,
/// lowercased, by walking `plan`: scans resolve directly; a
/// `SubqueryAlias` resolves *through its projection renames*, so the
/// eager shape's `G1.F_DimId` and the lazy shape's `F.DimId` land on
/// the same base column and their learned facts transfer.
fn resolve_column(plan: &LogicalPlan, qualifier: &str, column: &str) -> Option<(String, String)> {
    match plan {
        LogicalPlan::Scan {
            table,
            qualifier: q,
            ..
        } => q
            .eq_ignore_ascii_case(qualifier)
            .then(|| (table.to_ascii_lowercase(), column.to_ascii_lowercase())),
        LogicalPlan::SubqueryAlias { input, alias } => {
            if alias.eq_ignore_ascii_case(qualifier) {
                resolve_output(input, column)
            } else {
                resolve_column(input, qualifier, column)
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. } => resolve_column(input, qualifier, column),
        LogicalPlan::CrossJoin { left, right } | LogicalPlan::Join { left, right, .. } => {
            resolve_column(left, qualifier, column)
                .or_else(|| resolve_column(right, qualifier, column))
        }
    }
}

/// Resolve an *output column name* of a subquery to its base column:
/// projections follow the rename chain, aggregates pass their grouping
/// columns through by name (aggregate outputs are computed values, not
/// base columns — those resolve to `None`).
fn resolve_output(plan: &LogicalPlan, name: &str) -> Option<(String, String)> {
    let through = |c: &gbj_types::ColumnRef, input: &LogicalPlan| match c.table.as_deref() {
        Some(q) => resolve_column(input, q, &c.column),
        None => resolve_output(input, &c.column),
    };
    match plan {
        LogicalPlan::Project { input, exprs, .. } => {
            let (e, _) = exprs.iter().find(|(_, n)| n.eq_ignore_ascii_case(name))?;
            match e {
                Expr::Column(c) => through(c, input),
                _ => None,
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let c = group_by.iter().find_map(|g| match g {
                Expr::Column(c) if c.column.eq_ignore_ascii_case(name) => Some(c),
                _ => None,
            })?;
            through(c, input)
        }
        LogicalPlan::Scan {
            table,
            schema,
            qualifier: _,
        } => schema
            .fields()
            .iter()
            .any(|f| f.name.eq_ignore_ascii_case(name))
            .then(|| (table.to_ascii_lowercase(), name.to_ascii_lowercase())),
        LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. } => resolve_output(input, name),
        LogicalPlan::CrossJoin { left, right } | LogicalPlan::Join { left, right, .. } => {
            resolve_output(left, name).or_else(|| resolve_output(right, name))
        }
    }
}

/// Canonical signature of an equi-join condition, with every column
/// mapped to `basetable.column` (lowercased), each conjunct's sides
/// sorted, and the conjuncts themselves sorted — so `E.d = D.d` and
/// `D.d = E.d` under any aliases produce the same key. Columns are
/// resolved through `scope` (the join node), following subquery
/// projection renames down to base columns; a side that falls outside
/// the scope falls back to the plan's qualifier → table map. Returns
/// `None` when any conjunct is not `column = column` or a side cannot
/// be mapped to a base table (nothing reliable to learn).
#[must_use]
pub fn join_signature(
    condition: &Expr,
    scope: &LogicalPlan,
    tables: &[(String, String)],
) -> Option<String> {
    let side = |c: &gbj_types::ColumnRef| -> Option<String> {
        let q = c.table.as_deref()?;
        if let Some((t, col)) = resolve_column(scope, q, &c.column) {
            return Some(format!("{t}.{col}"));
        }
        Some(format!(
            "{}.{}",
            base_of(q, tables)?,
            c.column.to_ascii_lowercase()
        ))
    };
    let mut parts = Vec::new();
    for c in conjuncts(condition) {
        let AtomClass::ColumnEqColumn(a, b) = AtomClass::of(&c) else {
            return None;
        };
        let sa = side(&a)?;
        let sb = side(&b)?;
        let (lo, hi) = if sa <= sb { (sa, sb) } else { (sb, sa) };
        parts.push(format!("{lo}={hi}"));
    }
    if parts.is_empty() {
        return None;
    }
    parts.sort();
    Some(parts.join("&"))
}

/// Canonical signature of a grouping: the sorted base-qualified
/// grouping columns, `@`, the sorted base tables feeding the aggregate.
/// The eager outer aggregate and the lazy aggregate of the same query
/// share this signature, so an observed group count transfers between
/// shapes. Returns `None` when a grouping expression is not a plain
/// mappable column (learned counts would not be comparable).
#[must_use]
pub fn group_signature(
    group_by: &[Expr],
    input: &LogicalPlan,
    tables: &[(String, String)],
) -> Option<String> {
    if group_by.is_empty() {
        return None;
    }
    let mut cols = Vec::new();
    for g in group_by {
        let Expr::Column(c) = g else { return None };
        let q = c.table.as_deref()?;
        let col = if let Some((t, col)) = resolve_column(input, q, &c.column) {
            format!("{t}.{col}")
        } else {
            format!("{}.{}", base_of(q, tables)?, c.column.to_ascii_lowercase())
        };
        cols.push(col);
    }
    cols.sort();
    cols.dedup();
    let mut bases: Vec<String> = Vec::new();
    collect_base_tables(input, &mut bases);
    bases.sort();
    bases.dedup();
    Some(format!("{}@{}", cols.join(","), bases.join(",")))
}

fn collect_base_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::Scan { table, .. } => out.push(table.to_ascii_lowercase()),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Sort { input, .. } => collect_base_tables(input, out),
        LogicalPlan::CrossJoin { left, right } | LogicalPlan::Join { left, right, .. } => {
            collect_base_tables(left, out);
            collect_base_tables(right, out);
        }
    }
}

fn actual_rows(profile: &ProfileNode) -> f64 {
    profile.metrics.rows_out.max(profile.rows_out as u64) as f64
}

/// Distil learnable facts from one measured execution by walking the
/// plan and its profile in lockstep (the trees are congruent; on any
/// defensive mismatch the walk stops descending that branch).
#[must_use]
pub fn delta_from_profile(plan: &LogicalPlan, profile: &ProfileNode) -> FeedbackDelta {
    let mut tables = Vec::new();
    crate::stats::collect_plan_tables(plan, &mut tables);
    let mut delta = FeedbackDelta::default();
    walk(plan, profile, &tables, &mut delta);
    delta
}

fn walk(
    plan: &LogicalPlan,
    profile: &ProfileNode,
    tables: &[(String, String)],
    delta: &mut FeedbackDelta,
) {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            delta
                .table_rows
                .push((table.to_ascii_lowercase(), actual_rows(profile)));
        }
        LogicalPlan::Join {
            left,
            right,
            condition,
        } => {
            if let (Some(lp), Some(rp)) = (profile.children.first(), profile.children.get(1)) {
                let (l, r) = (actual_rows(lp), actual_rows(rp));
                if l * r > 0.0 {
                    if let Some(sig) = join_signature(condition, plan, tables) {
                        delta
                            .join_selectivity
                            .push((sig, actual_rows(profile) / (l * r)));
                    }
                }
                walk(left, lp, tables, delta);
                walk(right, rp, tables, delta);
            }
        }
        LogicalPlan::CrossJoin { left, right } => {
            if let (Some(lp), Some(rp)) = (profile.children.first(), profile.children.get(1)) {
                walk(left, lp, tables, delta);
                walk(right, rp, tables, delta);
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if let Some(cp) = profile.children.first() {
                if actual_rows(cp) > 0.0 {
                    if let Some(sig) = group_signature(group_by, input, tables) {
                        delta.group_counts.push((sig, actual_rows(profile)));
                    }
                }
                walk(input, cp, tables, delta);
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Sort { input, .. } => {
            if let Some(cp) = profile.children.first() {
                walk(input, cp, tables, delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::{DataType, Field, Schema};

    fn scan(table: &str, q: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            qualifier: q.into(),
            schema: Schema::new(vec![
                Field::new("DeptID", DataType::Int64, false).with_qualifier(q)
            ]),
        }
    }

    fn tables() -> Vec<(String, String)> {
        vec![
            ("E".into(), "Employee".into()),
            ("D".into(), "Department".into()),
        ]
    }

    fn join_of(left: LogicalPlan, right: LogicalPlan, condition: Expr) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            condition,
        }
    }

    #[test]
    fn join_signature_is_order_and_alias_invariant() {
        let t = tables();
        let a = Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID"));
        let b = Expr::col("D", "DeptID").eq(Expr::col("E", "DeptID"));
        let scope = join_of(scan("Employee", "E"), scan("Department", "D"), a.clone());
        let sig_a = join_signature(&a, &scope, &t).unwrap();
        assert_eq!(sig_a, "department.deptid=employee.deptid");
        assert_eq!(sig_a, join_signature(&b, &scope, &t).unwrap());
        // Same join under different aliases → same signature.
        let t2 = vec![
            ("X".to_string(), "EMPLOYEE".to_string()),
            ("Y".to_string(), "Department".to_string()),
        ];
        let c = Expr::col("X", "deptid").eq(Expr::col("Y", "DEPTID"));
        let scope2 = join_of(scan("EMPLOYEE", "X"), scan("Department", "Y"), c.clone());
        assert_eq!(sig_a, join_signature(&c, &scope2, &t2).unwrap());
    }

    #[test]
    fn join_signature_resolves_through_subquery_renames() {
        // The eager shape: Join(G1 = SubqueryAlias(Project(E.DeptID AS
        // E_DeptID, Aggregate(Scan E))), D) on G1.E_DeptID = D.DeptID.
        // Its signature must equal the lazy shape's so the learned
        // selectivity transfers.
        let t = tables();
        let cond = Expr::col("G1", "E_DeptID").eq(Expr::col("D", "DeptID"));
        let scope = join_of(
            LogicalPlan::SubqueryAlias {
                input: Box::new(LogicalPlan::Project {
                    input: Box::new(LogicalPlan::Aggregate {
                        input: Box::new(scan("Employee", "E")),
                        group_by: vec![Expr::col("E", "DeptID")],
                        aggregates: vec![],
                    }),
                    exprs: vec![(Expr::col("E", "DeptID"), "E_DeptID".into())],
                    distinct: false,
                }),
                alias: "G1".into(),
            },
            scan("Department", "D"),
            cond.clone(),
        );
        assert_eq!(
            join_signature(&cond, &scope, &t).unwrap(),
            "department.deptid=employee.deptid"
        );
    }

    #[test]
    fn non_equi_conditions_have_no_signature() {
        let t = tables();
        let range = Expr::col("E", "DeptID").binary(gbj_expr::BinaryOp::Lt, Expr::lit(5i64));
        let scope = join_of(
            scan("Employee", "E"),
            scan("Department", "D"),
            range.clone(),
        );
        assert_eq!(join_signature(&range, &scope, &t), None);
        let mixed = Expr::col("E", "DeptID")
            .eq(Expr::col("D", "DeptID"))
            .and(range);
        assert_eq!(
            join_signature(&mixed, &scope, &t),
            None,
            "any non-equi conjunct poisons it"
        );
    }

    #[test]
    fn group_signature_shared_between_lazy_and_eager_shapes() {
        let t = tables();
        let lazy_input = LogicalPlan::Join {
            left: Box::new(scan("Employee", "E")),
            right: Box::new(scan("Department", "D")),
            condition: Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID")),
        };
        let sig = group_signature(&[Expr::col("D", "DeptID")], &lazy_input, &t).unwrap();
        assert_eq!(sig, "department.deptid@department,employee");
        // The eager outer aggregate sits above the same join region →
        // same signature, so the learned count transfers.
        let eager_input = LogicalPlan::Join {
            left: Box::new(LogicalPlan::SubqueryAlias {
                input: Box::new(LogicalPlan::Aggregate {
                    input: Box::new(scan("Employee", "E")),
                    group_by: vec![Expr::col("E", "DeptID")],
                    aggregates: vec![],
                }),
                alias: "EA".into(),
            }),
            right: Box::new(scan("Department", "D")),
            condition: Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID")),
        };
        assert_eq!(
            group_signature(&[Expr::col("D", "DeptID")], &eager_input, &t).unwrap(),
            sig
        );
    }

    #[test]
    fn absorb_is_idempotent_and_epoch_bumps_once() {
        let mut store = FeedbackStore::new();
        assert_eq!(store.epoch(), 0);
        let delta = FeedbackDelta {
            table_rows: vec![("employee".into(), 1000.0)],
            join_selectivity: vec![("department.deptid=employee.deptid".into(), 0.1)],
            group_counts: vec![("department.deptid@department,employee".into(), 10.0)],
        };
        assert!(store.absorb(&delta));
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.table_rows("Employee"), Some(1000.0));
        assert_eq!(
            store.join_selectivity("department.deptid=employee.deptid"),
            Some(0.1)
        );
        assert_eq!(
            store.group_count("department.deptid@department,employee"),
            Some(10.0)
        );
        // Re-learning the same facts is a no-op.
        assert!(!store.absorb(&delta));
        assert_eq!(store.epoch(), 1);
        // A materially different fact bumps again.
        let update = FeedbackDelta {
            join_selectivity: vec![("department.deptid=employee.deptid".into(), 0.05)],
            ..FeedbackDelta::default()
        };
        assert!(store.absorb(&update));
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn non_finite_facts_are_rejected() {
        let mut store = FeedbackStore::new();
        let delta = FeedbackDelta {
            join_selectivity: vec![("a=b".into(), f64::NAN), ("c=d".into(), f64::INFINITY)],
            ..FeedbackDelta::default()
        };
        assert!(!store.absorb(&delta));
        assert_eq!(store.epoch(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn delta_from_profile_learns_scan_join_and_group_facts() {
        use gbj_exec::ProfileNode;
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan("Employee", "E")),
                right: Box::new(scan("Department", "D")),
                condition: Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID")),
            }),
            group_by: vec![Expr::col("D", "DeptID")],
            aggregates: vec![],
        };
        let profile = ProfileNode::new(
            "Aggregate",
            "HashAggregate",
            10,
            vec![ProfileNode::new(
                "Join",
                "HashJoin",
                1000,
                vec![
                    ProfileNode::new("Scan Employee AS E", "Scan", 1000, vec![]),
                    ProfileNode::new("Scan Department AS D", "Scan", 10, vec![]),
                ],
            )],
        );
        let delta = delta_from_profile(&plan, &profile);
        assert_eq!(
            delta.table_rows,
            vec![
                ("employee".to_string(), 1000.0),
                ("department".to_string(), 10.0)
            ]
        );
        assert_eq!(delta.join_selectivity.len(), 1);
        let (sig, sel) = &delta.join_selectivity[0];
        assert_eq!(sig, "department.deptid=employee.deptid");
        assert!((sel - 0.1).abs() < 1e-12);
        assert_eq!(
            delta.group_counts,
            vec![("department.deptid@department,employee".to_string(), 10.0)]
        );
    }
}
