//! The [`Database`] facade.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use gbj_analyze::{
    analyze_plan, Analysis, ColumnDomain, FdCertificate, Nullability, PruningFacts, SeedDomains,
};
use gbj_catalog::{Assertion, Catalog};
use gbj_core::{
    eager_aggregate, reverse_transform, CostModel, EagerOutcome, Partition, PlanCost,
    ReverseOutcome, Stats, TransformOptions,
};
use gbj_exec::{ExecOptions, Executor, ProfileNode, ResourceGuard, ResultSet};
use gbj_expr::Expr;
use gbj_fd::FdContext;
use gbj_optimizer::{shape_cost, CardTree, Optimizer, ShapeCost};
use gbj_plan::{BlockRelation, LogicalPlan, QueryBlock};
use gbj_sql::{parse_statements, Binder, BoundSelect, Statement};
use gbj_storage::Storage;
use gbj_types::{ColumnRef, Error, Result};

use crate::audit::{annotated_tree, audit_nodes, NodeAudit};
use crate::feedback::{delta_from_profile, FeedbackDelta, FeedbackStore};
use crate::stats::{Estimator, PlanEstimate};

/// When to apply a *valid* group-by-before-join transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PushdownPolicy {
    /// Compare the Section 7 cost model's estimates and pick the
    /// cheaper plan (the default).
    #[default]
    CostBased,
    /// Always take the eager (group-by first) plan when valid.
    Always,
    /// Never take the eager plan (always lazy / unfolded).
    Never,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Eager-aggregation policy.
    pub policy: PushdownPolicy,
    /// Options for the core transformation.
    pub transform: TransformOptions,
    /// The cost model used by [`PushdownPolicy::CostBased`].
    pub cost_model: CostModel,
    /// Physical execution options.
    pub exec: ExecOptions,
    /// Verify every rewrite with the static analyzer
    /// ([`gbj_analyze`]): replay the FD1/FD2 derivation for each eager
    /// rewrite and re-check the chosen plan's schema soundness, turning
    /// Error-severity diagnostics into planning failures. Defaults to
    /// on in debug builds (and CI); `GBJ_VERIFY_REWRITES=1`/`0`
    /// overrides either way.
    pub verify_rewrites: bool,
    /// Close the adaptive loop automatically: after every metered run,
    /// absorb the measured per-node cardinalities into the
    /// [`FeedbackStore`] so the next planning of the same (or a
    /// congruent) query re-costs with observed selectivities and group
    /// counts. Off by default — callers that want stable plan-cache
    /// behaviour opt in per database (or via `GBJ_ADAPTIVE=1`).
    pub adaptive: bool,
    /// Clamp cardinality estimates to the hard upper bounds proven by
    /// the range/NDV abstract-interpretation pass (pass 6): `groups ≤ Π
    /// NDV`, `join ≤ |L|·|R|`, zero for provably-empty subtrees. The
    /// bounds are sound (never below the true cardinality), so
    /// `min(estimate, bound)` can only move an estimate toward the
    /// truth. On by default; `GBJ_CLAMP_ESTIMATES=0` disables for A/B
    /// accuracy comparisons.
    pub clamp_estimates: bool,
}

impl Default for EngineOptions {
    /// Defaults everywhere, except that the `GBJ_TEST_THREADS`
    /// environment variable (when set to a positive integer) overrides
    /// the executor thread count, `GBJ_TEST_VECTORIZED` (`1`/`0`)
    /// overrides the vectorized-kernel switch, and `GBJ_TEST_SHARDS`
    /// (positive integer) overrides the in-process shard count — the
    /// hooks `scripts/verify.sh` uses to push the whole engine-level
    /// test suite through the parallel operators, the columnar path and
    /// the sharded distributed runner without touching each test.
    fn default() -> EngineOptions {
        let mut exec = ExecOptions::default();
        if let Some(threads) = gbj_exec::threads_from_env() {
            exec.threads = threads;
        }
        if let Some(on) = gbj_exec::vectorized_from_env() {
            exec.vectorized = on;
        }
        if let Some(shards) = gbj_exec::shards_from_env() {
            exec.shards = shards;
        }
        let verify_rewrites = match std::env::var("GBJ_VERIFY_REWRITES").ok().as_deref() {
            Some("1") => true,
            Some("0") => false,
            _ => cfg!(debug_assertions),
        };
        let adaptive = matches!(std::env::var("GBJ_ADAPTIVE").ok().as_deref(), Some("1"));
        let clamp_estimates = !matches!(
            std::env::var("GBJ_CLAMP_ESTIMATES").ok().as_deref(),
            Some("0")
        );
        EngineOptions {
            policy: PushdownPolicy::default(),
            transform: TransformOptions::default(),
            cost_model: CostModel::default(),
            exec,
            verify_rewrites,
            adaptive,
            clamp_estimates,
        }
    }
}

/// Which plan shape the engine chose for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// The standard order: joins first, then group-by (`E1`).
    Lazy,
    /// Group-by pushed below the join (`E2`).
    Eager,
    /// An aggregated view unfolded into the single-block form
    /// (Section 8's reverse transformation).
    Unfolded,
}

/// Everything the planner decided about one query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The chosen shape.
    pub choice: PlanChoice,
    /// Why (validity + policy/cost reasoning).
    pub reason: String,
    /// The TestFD trace, when the transformation was examined.
    pub testfd: Option<String>,
    /// The partition display, when one was formed.
    pub partition: Option<String>,
    /// Estimated cardinalities, when a cost decision was made.
    pub stats: Option<Stats>,
    /// Estimated cost of the lazy plan (block-level §7 model).
    pub lazy_cost: Option<PlanCost>,
    /// Estimated cost of the eager plan (block-level §7 model).
    pub eager_cost: Option<PlanCost>,
    /// Itemised cost of the *lowered* lazy plan shape (per-operator
    /// walk; this is what the cost-based choice compares).
    pub lazy_shape: Option<ShapeCost>,
    /// Itemised cost of the lowered eager plan shape.
    pub eager_shape: Option<ShapeCost>,
    /// The chosen, optimized plan.
    pub plan: LogicalPlan,
    /// The optimized alternative plan (when a valid alternative exists).
    pub alternative: Option<LogicalPlan>,
    /// The rendered FD1/FD2 certificate (the replayed TestFD
    /// derivation), attached to every eager-aggregation rewrite.
    pub certificate: Option<String>,
    /// Per-column facts the range pass proved for the chosen plan's
    /// output (catalog-seeded, data-independent), rendered as one
    /// deterministic line. Empty when nothing non-trivial is known.
    pub domains: String,
    /// Per-scan predicate→range implications from the range pass — the
    /// side-table the zone-map storage layer consumes to skip blocks.
    pub pruning: PruningFacts,
}

impl QueryReport {
    /// Render the EXPLAIN text.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "choice: {:?}\nreason: {}\n",
            self.choice, self.reason
        ));
        if let Some(p) = &self.partition {
            out.push_str(&format!("partition:\n{p}\n"));
        }
        if let Some(s) = &self.stats {
            out.push_str(&format!(
                "estimates: |R1|={:.0} |R2|={:.0} groups(R1)={:.0} join={:.0} groups={:.0}\n",
                s.r1_rows, s.r2_rows, s.r1_groups, s.join_rows, s.final_groups
            ));
        }
        if let (Some(l), Some(e)) = (&self.lazy_cost, &self.eager_cost) {
            out.push_str(&format!("cost: lazy={:.0} eager={:.0}\n", l.total, e.total));
        }
        if let (Some(l), Some(e)) = (&self.lazy_shape, &self.eager_shape) {
            out.push_str(&format!(
                "shape cost: lazy={:.0} eager={:.0}\n",
                l.total, e.total
            ));
            out.push_str(&format!(
                "shape rationale: join input {:.0} vs {:.0}, group input {:.0} vs {:.0} (lazy vs eager)\n",
                l.join_input, e.join_input, l.group_input, e.group_input
            ));
        }
        if let Some(t) = &self.testfd {
            out.push_str("TestFD:\n");
            out.push_str(t);
        }
        if let Some(c) = &self.certificate {
            out.push_str(c);
        }
        if !self.domains.is_empty() {
            out.push_str(&format!("domains: {}\n", self.domains));
        }
        if !self.pruning.is_empty() {
            out.push_str(&format!("pruning: {}\n", self.pruning.render_text()));
        }
        out.push_str("plan:\n");
        out.push_str(&self.plan.display_tree());
        if let Some(alt) = &self.alternative {
            out.push_str("alternative plan:\n");
            out.push_str(&alt.display_tree());
        }
        out
    }
}

/// Everything measured while running one query: separate planning and
/// execution wall times, whole-query resource measurements, the
/// per-operator profile and the estimator's per-node predictions.
/// Retrieved after the fact via [`Database::last_query_metrics`]
/// (the REPL's `\metrics` command).
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// The SQL that ran.
    pub sql_kind: &'static str,
    /// The plan shape the engine chose.
    pub choice: PlanChoice,
    /// Wall time spent in parse → bind → transform → optimize.
    pub planning: Duration,
    /// Wall time spent executing the physical plan.
    pub execution: Duration,
    /// Rows the query returned.
    pub rows: usize,
    /// Memory high-water mark across all operator state (bytes).
    pub peak_memory_bytes: u64,
    /// In-process shards the query ran on (1 = single-shard).
    pub shards: usize,
    /// Measured rows shipped across shard boundaries (0 single-shard).
    pub shipped_rows: u64,
    /// Measured modelled wire bytes for those rows (0 single-shard).
    pub shipped_bytes: u64,
    /// The distribution planner's predicted shipped rows, when the
    /// query actually ran sharded (None single-shard or on fallback).
    pub predicted_shipped_rows: Option<f64>,
    /// The measured per-operator profile (with counters and timings).
    pub profile: ProfileNode,
    /// The estimator's per-node cardinality predictions (as of
    /// planning: feedback-aware when facts were already learned).
    pub estimates: PlanEstimate,
    /// The facts this run's measurements would teach the feedback
    /// store. Already absorbed when [`EngineOptions::adaptive`] is on;
    /// otherwise pass to [`Database::absorb_feedback`] to close the
    /// loop manually.
    pub feedback: FeedbackDelta,
}

impl QueryMetrics {
    /// The per-node estimate-vs-actual audit (pre-order).
    #[must_use]
    pub fn audits(&self) -> Vec<NodeAudit> {
        audit_nodes(&self.estimates, &self.profile)
    }

    /// Q-error of the distribution planner's shipped-rows prediction
    /// against the measured exchange counters: `max(p/m, m/p)` with
    /// both sides floored at 1 row (so an exact 0-vs-0 scores 1.0).
    /// `None` when the query did not run sharded.
    #[must_use]
    pub fn shipped_q_error(&self) -> Option<f64> {
        let predicted = self.predicted_shipped_rows?.max(1.0);
        let measured = (self.shipped_rows as f64).max(1.0);
        Some((predicted / measured).max(measured / predicted))
    }

    /// Render the full metrics view: timings, resource high-water, the
    /// estimate-vs-actual tree and the raw counter/timing tree.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("choice: {:?}\n", self.choice));
        out.push_str(&format!("planning time: {:?}\n", self.planning));
        out.push_str(&format!("execution time: {:?}\n", self.execution));
        out.push_str(&format!("rows: {}\n", self.rows));
        out.push_str(&format!("peak memory: {} B\n", self.peak_memory_bytes));
        if self.shards > 1 {
            out.push_str(&format!(
                "shards: {} (shipped {} rows / {} B over the wire)\n",
                self.shards, self.shipped_rows, self.shipped_bytes
            ));
            if let (Some(p), Some(q)) = (self.predicted_shipped_rows, self.shipped_q_error()) {
                out.push_str(&format!(
                    "shipped prediction: {p:.0} rows (q-error {q:.2})\n"
                ));
            }
        }
        out.push_str("estimate vs actual:\n");
        out.push_str(&annotated_tree(&self.audits()));
        out.push_str("operator metrics:\n");
        out.push_str(&self.profile.display_tree_with_metrics());
        out
    }
}

/// The output of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// Rows from a SELECT.
    Rows(ResultSet),
    /// EXPLAIN text.
    Explain(String),
    /// Rows affected by INSERT.
    Affected(usize),
    /// DDL acknowledgement.
    Ddl(String),
}

impl QueryOutput {
    /// The rows, if this output carries any.
    #[must_use]
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            QueryOutput::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// An embedded `gbj` database.
///
/// ```
/// use gbj_engine::Database;
///
/// let mut db = Database::new();
/// db.run_script(
///     "CREATE TABLE Department (DeptID INTEGER PRIMARY KEY, Name VARCHAR(30));
///      CREATE TABLE Employee (EmpID INTEGER PRIMARY KEY,
///                             DeptID INTEGER REFERENCES Department);
///      INSERT INTO Department VALUES (1, 'Research'), (2, 'Sales');
///      INSERT INTO Employee VALUES (1, 1), (2, 1), (3, 2);",
/// )?;
/// let rows = db.query(
///     "SELECT D.Name, COUNT(E.EmpID) FROM Employee E, Department D
///      WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name",
/// )?;
/// assert_eq!(rows.len(), 2);
/// # Ok::<(), gbj_types::Error>(())
/// ```
#[derive(Default)]
pub struct Database {
    storage: Storage,
    options: EngineOptions,
    /// Metrics of the most recent query (SELECT or EXPLAIN ANALYZE),
    /// behind a mutex so the read-only query path can record them.
    last_metrics: Mutex<Option<QueryMetrics>>,
    /// Learned cardinality facts (adaptive stats feedback), behind a
    /// mutex so the read-only query path can absorb them.
    feedback: Mutex<FeedbackStore>,
}

impl Database {
    /// An empty database with default options.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// An empty database with explicit options.
    #[must_use]
    pub fn with_options(options: EngineOptions) -> Database {
        Database {
            storage: Storage::new(),
            options,
            last_metrics: Mutex::default(),
            feedback: Mutex::default(),
        }
    }

    /// Metrics of the most recent query (SELECT or `EXPLAIN ANALYZE`)
    /// on this database, if any ran yet.
    #[must_use]
    pub fn last_query_metrics(&self) -> Option<QueryMetrics> {
        self.last_metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn record_metrics(&self, metrics: QueryMetrics) {
        *self
            .last_metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(metrics);
    }

    /// The engine options (mutable, e.g. to switch policies between
    /// queries).
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Set the executor worker-thread count for subsequent queries
    /// (`1` = serial operators; results are identical either way).
    pub fn set_threads(&mut self, threads: std::num::NonZeroUsize) {
        self.options.exec.threads = threads;
    }

    /// Switch the vectorized columnar kernels on or off for subsequent
    /// queries (results are byte-identical either way; the row engine
    /// remains the oracle).
    pub fn set_vectorized(&mut self, on: bool) {
        self.options.exec.vectorized = on;
    }

    /// Set the in-process shard count for subsequent queries (`1` =
    /// single-shard execution; results are byte-identical at every
    /// value — only the shipped-rows/bytes counters change).
    pub fn set_shards(&mut self, shards: std::num::NonZeroUsize) {
        self.options.exec.shards = shards;
    }

    /// Declare a hash-partition key for a base table (see
    /// [`Storage::declare_partition_key`]): sharded scans of the table
    /// then start out co-partitioned on those columns, making exchanges
    /// on that key free. A physical-layout declaration only — results
    /// never change.
    pub fn declare_partition_key(&mut self, table: &str, cols: &[&str]) -> Result<()> {
        self.storage.declare_partition_key(table, cols)
    }

    /// The underlying storage.
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// The storage's data/schema epoch (see [`Storage::epoch`]):
    /// strictly increases across successful mutations, so two
    /// databases (or a database and its [`Database::fork`]) with equal
    /// epochs hold identical committed state.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.storage.epoch()
    }

    /// The stats epoch: bumped whenever absorbed feedback materially
    /// changed a learned fact (see [`FeedbackStore::epoch`]). Monotone.
    #[must_use]
    pub fn stats_epoch(&self) -> u64 {
        self.feedback
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .epoch()
    }

    /// The planning epoch: data epoch + stats epoch. Two databases with
    /// equal plan epochs produce identical plans for identical SQL, so
    /// this (not the data epoch alone) is the correct bound-plan cache
    /// key — a stats-feedback update invalidates cached plans exactly
    /// like a write does, without pretending the data changed.
    #[must_use]
    pub fn plan_epoch(&self) -> u64 {
        self.storage.epoch() + self.stats_epoch()
    }

    /// A point-in-time copy of the learned feedback facts.
    #[must_use]
    pub fn feedback_snapshot(&self) -> FeedbackStore {
        self.feedback
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Merge measured-cardinality facts into the feedback store.
    /// Returns `true` iff something materially changed (which also
    /// bumps [`Database::stats_epoch`]). Safe from the read-only query
    /// path. With [`EngineOptions::adaptive`] set this happens
    /// automatically after every metered run; callers running the loop
    /// manually feed [`QueryMetrics::feedback`] here.
    pub fn absorb_feedback(&self, delta: &FeedbackDelta) -> bool {
        self.feedback
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .absorb(delta)
    }

    /// A consistent point-in-time snapshot of this database.
    ///
    /// O(tables), not O(rows): table row storage is `Arc`-shared and
    /// copied lazily on the writer's next mutation, so a fork is cheap
    /// enough to take per read-batch. The fork carries the catalog,
    /// data, epoch, options and fault injector as of now; later
    /// mutations on either side are invisible to the other. Metrics
    /// history is *not* carried over — a fork starts with none — but
    /// the learned feedback facts (and their stats epoch) *are*, so a
    /// serving snapshot plans with everything learned so far.
    #[must_use]
    pub fn fork(&self) -> Database {
        Database {
            storage: self.storage.clone(),
            options: self.options.clone(),
            last_metrics: Mutex::default(),
            feedback: Mutex::new(self.feedback_snapshot()),
        }
    }

    /// Install (or clear) a deterministic fault injector on the storage
    /// layer. Subsequent scans observe the configured faults; planning
    /// and constraint checking are unaffected.
    pub fn set_fault_injector(&mut self, injector: Option<gbj_storage::FaultInjector>) {
        self.storage.set_fault_injector(injector);
    }

    /// The currently installed fault injector, if any (to read its
    /// counters or reset it between differential runs).
    #[must_use]
    pub fn fault_injector(&self) -> Option<&gbj_storage::FaultInjector> {
        self.storage.fault_injector()
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        self.storage.catalog()
    }

    /// Bulk-insert pre-built rows (bypasses SQL parsing but not
    /// constraint checking) — the fast path for data generators.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<gbj_types::Value>>,
    ) -> Result<usize> {
        self.storage.insert_many(table, rows)
    }

    /// Execute a script of `;`-separated statements.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput> {
        let mut outputs = self.run_script(sql)?;
        match outputs.len() {
            1 => Ok(outputs.remove(0)),
            n => Err(Error::Parse(format!("expected one statement, found {n}"))),
        }
    }

    /// Run a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        Ok(self.query_report(sql)?.0)
    }

    /// Run a SELECT, returning rows, the execution profile and the
    /// planning report.
    pub fn query_report(&self, sql: &str) -> Result<(ResultSet, ProfileNode, QueryReport)> {
        let stmt = gbj_sql::parse_sql(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::Unsupported("query() expects a SELECT".into()));
        };
        let binder = Binder::new(self.storage.catalog());
        let bound = binder.bind_select(&select)?;
        self.run_select(&bound, "query")
    }

    /// The shared SELECT path: plan (timed), execute (timed and
    /// metered), and record [`QueryMetrics`] for
    /// [`Database::last_query_metrics`].
    fn run_select(
        &self,
        bound: &BoundSelect,
        sql_kind: &'static str,
    ) -> Result<(ResultSet, ProfileNode, QueryReport)> {
        let plan_start = Instant::now();
        let report = self.plan_bound(bound)?;
        let planning = plan_start.elapsed();
        let exec_opts = self.exec_options_for(&report);
        let executor = Executor::with_options(&self.storage, exec_opts);
        let exec_start = Instant::now();
        let (rows, profile, summary) = executor.execute_metered(&report.plan)?;
        let execution = exec_start.elapsed();
        let fb = self.feedback_snapshot();
        let mut estimates =
            Estimator::with_feedback(&self.storage, &fb).estimate_plan(&report.plan);
        if self.options.clamp_estimates {
            clamp_plan_estimate(&mut estimates, &self.bound_tree_for(&report.plan));
        }
        let predicted_shipped_rows = self.predict_shipped(&report.plan, &estimates, &exec_opts);
        let feedback = delta_from_profile(&report.plan, &profile);
        if self.options.adaptive {
            self.absorb_feedback(&feedback);
        }
        self.record_metrics(QueryMetrics {
            sql_kind,
            choice: report.choice,
            planning,
            execution,
            rows: rows.len(),
            peak_memory_bytes: summary.peak_memory_bytes,
            shards: exec_opts.shards.get(),
            shipped_rows: summary.shipped_rows,
            shipped_bytes: summary.shipped_bytes,
            predicted_shipped_rows,
            profile: profile.clone(),
            estimates,
            feedback,
        });
        Ok((rows, profile, report))
    }

    /// Per-query executor options: the configured options plus the
    /// combiner switch, which is sound only for an FD-certified eager
    /// plan (the aggregate below the join is exactly the certified
    /// pre-aggregation, so merging its partials preserves `=ⁿ`
    /// semantics and every accumulator).
    fn exec_options_for(&self, report: &QueryReport) -> ExecOptions {
        let mut exec = self.options.exec;
        exec.combiner = report.certificate.is_some() && report.choice == PlanChoice::Eager;
        exec
    }

    /// Predicted shipped rows for the audit, when the plan will really
    /// run sharded (the prediction mirrors the runner's gating so a
    /// single-shard fallback never gets charged a phantom exchange).
    fn predict_shipped(
        &self,
        plan: &LogicalPlan,
        estimates: &PlanEstimate,
        exec_opts: &ExecOptions,
    ) -> Option<f64> {
        let shards = exec_opts.shards.get();
        if shards > 1 && gbj_exec::shard_supported(plan, exec_opts) {
            let dist = gbj_optimizer::plan_distribution(
                plan,
                &card_tree(estimates),
                shards,
                exec_opts.combiner,
                &|t| self.storage.partition_key(t).map(<[usize]>::to_vec),
            );
            Some(dist.shipped_rows)
        } else {
            None
        }
    }

    /// Run a SELECT under a caller-supplied [`ResourceGuard`] — the
    /// serving layer's entry point for deadlines, cancellation tokens
    /// and composed budgets.
    ///
    /// Returns the metrics directly (as well as recording them for
    /// [`Database::last_query_metrics`]) so concurrent sessions sharing
    /// a snapshot never race on the metrics slot.
    pub fn query_with_guard(
        &self,
        sql: &str,
        guard: &ResourceGuard,
    ) -> Result<(ResultSet, QueryReport, QueryMetrics)> {
        let stmt = gbj_sql::parse_sql(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::Unsupported(
                "query_with_guard() expects a SELECT".into(),
            ));
        };
        let binder = Binder::new(self.storage.catalog());
        let bound = binder.bind_select(&select)?;
        let plan_start = Instant::now();
        let report = self.plan_bound(&bound)?;
        let planning = plan_start.elapsed();
        let (rows, metrics) = self.run_planned(&report, planning, guard)?;
        Ok((rows, report, metrics))
    }

    /// Execute an already-planned query (e.g. a bound-plan cache hit)
    /// under a caller-supplied guard. Planning time is reported as zero
    /// — the cache paid it once at miss time.
    pub fn execute_report_guarded(
        &self,
        report: &QueryReport,
        guard: &ResourceGuard,
    ) -> Result<(ResultSet, QueryMetrics)> {
        self.run_planned(report, Duration::ZERO, guard)
    }

    /// Shared guarded execution tail: execute (timed and metered),
    /// then build and record [`QueryMetrics`].
    fn run_planned(
        &self,
        report: &QueryReport,
        planning: Duration,
        guard: &ResourceGuard,
    ) -> Result<(ResultSet, QueryMetrics)> {
        let exec_opts = self.exec_options_for(report);
        let executor = Executor::with_options(&self.storage, exec_opts);
        let exec_start = Instant::now();
        let (rows, profile, summary) = executor.execute_metered_with_guard(&report.plan, guard)?;
        let execution = exec_start.elapsed();
        let fb = self.feedback_snapshot();
        let mut estimates =
            Estimator::with_feedback(&self.storage, &fb).estimate_plan(&report.plan);
        if self.options.clamp_estimates {
            clamp_plan_estimate(&mut estimates, &self.bound_tree_for(&report.plan));
        }
        let predicted_shipped_rows = self.predict_shipped(&report.plan, &estimates, &exec_opts);
        let feedback = delta_from_profile(&report.plan, &profile);
        if self.options.adaptive {
            self.absorb_feedback(&feedback);
        }
        let metrics = QueryMetrics {
            sql_kind: "query",
            choice: report.choice,
            planning,
            execution,
            rows: rows.len(),
            peak_memory_bytes: summary.peak_memory_bytes,
            shards: exec_opts.shards.get(),
            shipped_rows: summary.shipped_rows,
            shipped_bytes: summary.shipped_bytes,
            predicted_shipped_rows,
            profile,
            estimates,
            feedback,
        };
        self.record_metrics(metrics.clone());
        Ok((rows, metrics))
    }

    /// Plan a SELECT without executing it.
    pub fn plan_query(&self, sql: &str) -> Result<QueryReport> {
        let stmt = gbj_sql::parse_sql(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::Unsupported("plan_query() expects a SELECT".into()));
        };
        let binder = Binder::new(self.storage.catalog());
        let bound = binder.bind_select(&select)?;
        self.plan_bound(&bound)
    }

    /// Run the static analyzer over a SELECT without executing it:
    /// passes 1–3 ([`gbj_analyze`]) on the planned query, including the
    /// FD-derivation audit of the eager-aggregation attempt.
    pub fn lint_select(&self, sql: &str) -> Result<gbj_analyze::Report> {
        let stmt = gbj_sql::parse_sql(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::Unsupported("lint_select() expects a SELECT".into()));
        };
        let binder = Binder::new(self.storage.catalog());
        let bound = binder.bind_select(&select)?;
        Ok(self.lint_bound(&bound, sql)?.0)
    }

    /// Lint every statement of a `;`-separated script: DDL and DML are
    /// *executed* (so later queries see their schemas and constraints),
    /// SELECTs (and the targets of EXPLAINs) are analyzed without
    /// running. Returns one report per analyzed query.
    pub fn lint_script(&mut self, sql: &str) -> Result<Vec<gbj_analyze::Report>> {
        let stmts = parse_statements(sql)?;
        let mut reports = Vec::new();
        for stmt in stmts {
            let select = match &stmt {
                Statement::Select(s) => Some(s.clone()),
                Statement::Explain { statement, .. } => match statement.as_ref() {
                    Statement::Select(s) => Some(s.clone()),
                    _ => None,
                },
                _ => None,
            };
            match select {
                Some(s) => {
                    let binder = Binder::new(self.storage.catalog());
                    let bound = binder.bind_select(&s)?;
                    let subject = bound.block.to_string();
                    reports.push(self.lint_bound(&bound, &subject)?.0);
                }
                None => {
                    self.execute_statement(stmt)?;
                }
            }
        }
        Ok(reports)
    }

    /// The shared lint path: plan the query, audit the transformation
    /// attempt (pass 2 + the `=ⁿ` grouping check), and run the
    /// schema/type and NULL-semantics passes over the chosen plan.
    fn lint_bound(
        &self,
        bound: &BoundSelect,
        subject: &str,
    ) -> Result<(gbj_analyze::Report, Option<FdCertificate>)> {
        let block = &bound.block;
        let mut analysis = Analysis::new(subject);
        if block.is_aggregating() {
            let fd_ctx = self.build_fd_context(block);
            let assertion_exprs: Vec<Expr> = self
                .storage
                .catalog()
                .assertions()
                .map(|a| a.check.clone())
                .collect();
            let mut transform_opts = self.options.transform.clone();
            transform_opts.extra_conjuncts =
                gbj_core::theorem3::assertion_conjuncts(&fd_ctx, &assertion_exprs);
            let outcome = eager_aggregate(block, &fd_ctx, &transform_opts)?;
            analysis.check_rewrite(block, &outcome, &fd_ctx, &transform_opts);
        }
        let report = self.plan_bound_inner(bound)?;
        analysis.check_logical(&report.plan);
        // Pass 6 (range/NULL-ness/NDV domains): catalog-only seeds so
        // lint findings are data-independent — the same corpus yields
        // the same report whether or not the tables are populated.
        let seeds = SeedDomains::from_catalog(self.storage.catalog());
        analysis.check_domains(&report.plan, &seeds);
        // GBJ501: the cost model declined a *certified* eager rewrite.
        // Only when the decision was data-driven — cost-based policy,
        // an FD1/FD2 certificate, and at least one populated base table
        // (schema-only lint corpora run over empty tables and must stay
        // clean).
        if matches!(self.options.policy, PushdownPolicy::CostBased)
            && report.choice == PlanChoice::Lazy
            && report.certificate.is_some()
        {
            let populated = base_tables(&bound.block)
                .iter()
                .any(|(_, t)| self.storage.table_data(t).is_some_and(|d| !d.is_empty()));
            if populated {
                let detail = match (&report.lazy_shape, &report.eager_shape) {
                    (Some(l), Some(e)) => format!(
                        "valid eager rewrite declined by cost: eager shape={:.0} >= lazy shape={:.0}",
                        e.total, l.total
                    ),
                    _ => "valid eager rewrite declined by cost".to_string(),
                };
                analysis.check_cost_choice(detail);
            }
        }
        // GBJ502: configured for sharded execution, the chosen plan has
        // an aggregate below a join, but there is no FD1/FD2
        // certificate — the pre-aggregation cannot run as a combiner
        // below the exchange, so raw rows will cross the wire.
        if self.options.exec.shards.get() > 1
            && report.certificate.is_none()
            && has_aggregate_below_join(&report.plan)
        {
            analysis.check_combiner_pushdown(format!(
                "aggregate below a join at {} shards without a certificate: \
                 the exchange ships raw rows, not per-group partials",
                self.options.exec.shards.get()
            ));
        }
        Ok(analysis.finish())
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<QueryOutput> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                constraints,
            } => {
                let def = Binder::new(self.storage.catalog()).bind_create_table(
                    &name,
                    &columns,
                    &constraints,
                )?;
                self.storage.create_table(def)?;
                Ok(QueryOutput::Ddl(format!("created table {name}")))
            }
            Statement::CreateDomain {
                name,
                data_type,
                check,
            } => {
                let domain = Binder::new(self.storage.catalog()).bind_create_domain(
                    &name,
                    data_type,
                    check.as_ref(),
                )?;
                self.storage.create_domain(domain)?;
                Ok(QueryOutput::Ddl(format!("created domain {name}")))
            }
            Statement::CreateView {
                name,
                columns,
                query_sql,
            } => {
                let view = Binder::new(self.storage.catalog())
                    .bind_create_view(&name, &columns, &query_sql)?;
                self.storage.create_view(view)?;
                Ok(QueryOutput::Ddl(format!("created view {name}")))
            }
            Statement::CreateAssertion { name, check } => {
                // Assertions are stated over table names; store the raw
                // expression for the optimizer's Theorem-3 use.
                let expr = raw_assertion_expr(&check)?;
                self.storage.create_assertion(Assertion {
                    name: name.clone(),
                    check: expr,
                })?;
                Ok(QueryOutput::Ddl(format!("created assertion {name}")))
            }
            Statement::Insert { table, rows } => {
                let values = Binder::new(self.storage.catalog()).bind_values(&rows)?;
                let n = self.storage.insert_many(&table, values)?;
                Ok(QueryOutput::Affected(n))
            }
            Statement::Select(select) => {
                let binder = Binder::new(self.storage.catalog());
                let bound = binder.bind_select(&select)?;
                let (rows, _, _) = self.run_select(&bound, "select")?;
                Ok(QueryOutput::Rows(rows))
            }
            Statement::Explain {
                analyze,
                lint,
                statement,
            } => {
                let Statement::Select(select) = *statement else {
                    return Err(Error::Unsupported("EXPLAIN expects a SELECT".into()));
                };
                let binder = Binder::new(self.storage.catalog());
                let bound = binder.bind_select(&select)?;
                if lint {
                    let subject = bound.block.to_string();
                    let (lint_report, _) = self.lint_bound(&bound, &subject)?;
                    let plan_report = self.plan_bound(&bound)?;
                    let mut text = plan_report.explain();
                    text.push_str("lint:\n");
                    text.push_str(&lint_report.render_text());
                    return Ok(QueryOutput::Explain(text));
                }
                if analyze {
                    let (rows, _, report) = self.run_select(&bound, "explain analyze")?;
                    let mut text = report.explain();
                    // The run just recorded its metrics; render the
                    // measured section from them. Planning and execution
                    // time are separate labeled lines — planning can
                    // dominate on small data and would otherwise hide
                    // inside one combined number.
                    if let Some(m) = self.last_query_metrics() {
                        text.push_str(&format!("planning time: {:?}\n", m.planning));
                        text.push_str(&format!("execution time: {:?}\n", m.execution));
                        text.push_str(&format!("actual rows: {}\n", rows.len()));
                        text.push_str(&format!("peak memory: {} B\n", m.peak_memory_bytes));
                        text.push_str("estimate vs actual:\n");
                        text.push_str(&annotated_tree(&m.audits()));
                    }
                    Ok(QueryOutput::Explain(text))
                } else {
                    let report = self.plan_bound(&bound)?;
                    Ok(QueryOutput::Explain(report.explain()))
                }
            }
            Statement::Delete { table, predicate } => {
                let binder = Binder::new(self.storage.catalog());
                let bound = predicate
                    .as_ref()
                    .map(|p| binder.bind_table_expr(&table, p))
                    .transpose()?;
                let n = self.storage.delete(&table, bound.as_ref())?;
                Ok(QueryOutput::Affected(n))
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                let binder = Binder::new(self.storage.catalog());
                let bound_assignments: Vec<(String, Expr)> = assignments
                    .iter()
                    .map(|(c, e)| Ok((c.clone(), binder.bind_table_expr(&table, e)?)))
                    .collect::<Result<_>>()?;
                let bound_pred = predicate
                    .as_ref()
                    .map(|p| binder.bind_table_expr(&table, p))
                    .transpose()?;
                let n = self
                    .storage
                    .update(&table, &bound_assignments, bound_pred.as_ref())?;
                Ok(QueryOutput::Affected(n))
            }
            Statement::DropTable(name) => {
                self.storage.drop_table(&name)?;
                Ok(QueryOutput::Ddl(format!("dropped table {name}")))
            }
            Statement::DropView(name) => {
                self.storage.drop_view(&name)?;
                Ok(QueryOutput::Ddl(format!("dropped view {name}")))
            }
        }
    }

    // ------------------------------------------------------------ planning

    fn plan_bound(&self, bound: &BoundSelect) -> Result<QueryReport> {
        let report = self.plan_bound_inner(bound)?;
        if self.options.verify_rewrites {
            // Verify-every-rewrite mode: pass 1 (schema/type soundness)
            // over the chosen plan; Error-severity findings abort
            // planning rather than executing an unsound plan.
            let mut analysis = Analysis::new("verify");
            analysis.check_logical(&report.plan);
            if analysis.has_errors() {
                return Err(Error::Plan(format!(
                    "plan verification failed:\n{}",
                    analysis.report().render_text()
                )));
            }
        }
        Ok(report)
    }

    /// Plan the query, then annotate the report with the range pass's
    /// catalog-seeded per-column domains and pruning side-table (both
    /// data-independent, so EXPLAIN output stays deterministic across
    /// data variations).
    fn plan_bound_inner(&self, bound: &BoundSelect) -> Result<QueryReport> {
        let mut report = self.plan_bound_shapes(bound)?;
        let seeds = SeedDomains::from_catalog(self.storage.catalog());
        let analysis = analyze_plan(&report.plan, &seeds);
        if let Ok(schema) = report.plan.schema() {
            report.domains = analysis.root.render_columns(&schema);
        }
        report.pruning = analysis.pruning;
        Ok(report)
    }

    fn plan_bound_shapes(&self, bound: &BoundSelect) -> Result<QueryReport> {
        let block = &bound.block;
        let fd_ctx = self.build_fd_context(block);
        let assertion_exprs: Vec<Expr> = self
            .storage
            .catalog()
            .assertions()
            .map(|a| a.check.clone())
            .collect();
        let mut transform_opts = self.options.transform.clone();
        transform_opts.extra_conjuncts =
            gbj_core::theorem3::assertion_conjuncts(&fd_ctx, &assertion_exprs);

        // Section 8: a non-aggregating query over one aggregated view —
        // the written form is the eager shape; unfolding gives the lazy
        // candidate.
        let aggregated_views = block
            .relations
            .iter()
            .filter(|r| match r {
                BlockRelation::Derived { block, .. } => block.is_aggregating(),
                BlockRelation::Base { .. } => false,
            })
            .count();
        if !block.is_aggregating() && aggregated_views == 1 {
            match reverse_transform(block, &fd_ctx)? {
                ReverseOutcome::Unfolded {
                    block: merged,
                    testfd,
                } => {
                    return self.choose_plans(
                        &merged,
                        block,
                        &fd_ctx,
                        Some(testfd.to_string()),
                        PlanChoice::Unfolded,
                        bound,
                    );
                }
                ReverseOutcome::NotApplicable { reason } => {
                    let plan = self.lower(block, &bound.order_by)?;
                    return Ok(QueryReport {
                        choice: PlanChoice::Lazy,
                        reason: format!("view not unfolded: {reason}"),
                        testfd: None,
                        partition: None,
                        stats: None,
                        lazy_cost: None,
                        eager_cost: None,
                        lazy_shape: None,
                        eager_shape: None,
                        plan,
                        alternative: None,
                        certificate: None,
                        domains: String::new(),
                        pruning: PruningFacts::default(),
                    });
                }
            }
        }

        // The forward transformation.
        let outcome = eager_aggregate(block, &fd_ctx, &transform_opts)?;
        if self.options.verify_rewrites && block.is_aggregating() {
            // Pass 2 (FD-derivation audit) + the =ⁿ grouping-shape
            // check: replay TestFD independently of the planner; a
            // chosen rewrite without a replayable FD1/FD2 derivation
            // is a planning error (refusals are warnings, not errors).
            let mut analysis = Analysis::new("verify");
            analysis.check_rewrite(block, &outcome, &fd_ctx, &transform_opts);
            if analysis.has_errors() {
                return Err(Error::Plan(format!(
                    "rewrite verification failed:\n{}",
                    analysis.report().render_text()
                )));
            }
        }
        match outcome {
            EagerOutcome::Rewritten {
                block: eager_block,
                partition,
                testfd,
            } => {
                // Attach the FD1/FD2 certificate: the replayed
                // constraint/equality-closure derivation.
                let constraints =
                    gbj_analyze::fd_audit::replay_constraints(&fd_ctx, &transform_opts);
                let certificate = FdCertificate::replay(&partition, &fd_ctx, &constraints);
                let mut report = self.choose_with_partition(
                    block,
                    &eager_block,
                    &partition,
                    Some(testfd.to_string()),
                    PlanChoice::Eager,
                    bound,
                )?;
                report.certificate = Some(certificate.to_string());
                Ok(report)
            }
            EagerOutcome::NotApplicable { reason, testfd } => {
                let plan = self.lower(block, &bound.order_by)?;
                Ok(QueryReport {
                    choice: PlanChoice::Lazy,
                    reason: format!("transformation not applied: {reason}"),
                    testfd: testfd.map(|t| t.to_string()),
                    partition: None,
                    stats: None,
                    lazy_cost: None,
                    eager_cost: None,
                    lazy_shape: None,
                    eager_shape: None,
                    plan,
                    alternative: None,
                    certificate: None,
                    domains: String::new(),
                    pruning: PruningFacts::default(),
                })
            }
        }
    }

    /// Decide between a lazy (merged) and the written (eager) shape for
    /// an unfolded view query.
    fn choose_plans(
        &self,
        lazy_block: &QueryBlock,
        eager_block: &QueryBlock,
        _fd_ctx: &FdContext,
        testfd: Option<String>,
        eager_choice: PlanChoice,
        bound: &BoundSelect,
    ) -> Result<QueryReport> {
        // Partition the merged (lazy) block to estimate stats: R1 = the
        // relations of the view side = relations not present in the
        // eager block's base list.
        let eager_bases: std::collections::BTreeSet<String> = eager_block
            .relations
            .iter()
            .filter(|r| !r.is_derived())
            .map(|r| r.qualifier().to_ascii_lowercase())
            .collect();
        let r1: std::collections::BTreeSet<String> = lazy_block
            .qualifiers()
            .into_iter()
            .filter(|q| !eager_bases.contains(&q.to_ascii_lowercase()))
            .collect();
        let partition = Partition::with_r1(lazy_block, r1)
            .map_err(|e| Error::Plan(format!("cannot partition unfolded query: {e}")))?;
        self.decide(
            lazy_block,
            eager_block,
            &partition,
            testfd,
            eager_choice,
            bound,
        )
    }

    fn choose_with_partition(
        &self,
        lazy_block: &QueryBlock,
        eager_block: &QueryBlock,
        partition: &Partition,
        testfd: Option<String>,
        eager_choice: PlanChoice,
        bound: &BoundSelect,
    ) -> Result<QueryReport> {
        self.decide(
            lazy_block,
            eager_block,
            partition,
            testfd,
            eager_choice,
            bound,
        )
    }

    fn decide(
        &self,
        lazy_block: &QueryBlock,
        eager_block: &QueryBlock,
        partition: &Partition,
        testfd: Option<String>,
        eager_choice: PlanChoice,
        bound: &BoundSelect,
    ) -> Result<QueryReport> {
        let tables = base_tables(lazy_block);
        let feedback = self.feedback_snapshot();
        let estimator = Estimator::with_feedback(&self.storage, &feedback);
        // The block-level §7 summary (kept for EXPLAIN's `estimates:` /
        // `cost:` lines and the bench reporters)…
        let stats = estimator.estimate(partition, &tables);
        let lazy_cost = self.options.cost_model.lazy(&stats);
        let eager_cost = self.options.cost_model.eager(&stats);

        // …and the decision itself: lower *both* candidates to their
        // optimized physical-ready shapes, attach per-node (feedback-
        // aware) cardinality estimates, and fold the cost model over
        // every operator each shape would actually run.
        let lazy_plan = self.lower(lazy_block, &bound.order_by)?;
        let eager_plan = self.lower(eager_block, &bound.order_by)?;
        let mut lazy_card = card_tree(&estimator.estimate_plan(&lazy_plan));
        let mut eager_card = card_tree(&estimator.estimate_plan(&eager_plan));
        if self.options.clamp_estimates {
            // Both candidates costed against bound-clamped cardinality
            // trees: a shape can never be charged more rows at an
            // operator than the domains prove possible.
            lazy_card.clamp(&self.bound_tree_for(&lazy_plan));
            eager_card.clamp(&self.bound_tree_for(&eager_plan));
        }
        let lazy_shape = shape_cost(&self.options.cost_model, &lazy_plan, &lazy_card);
        let eager_shape = shape_cost(&self.options.cost_model, &eager_plan, &eager_card);

        let (pick_eager, why) = match self.options.policy {
            PushdownPolicy::Always => (true, "policy = Always".to_string()),
            PushdownPolicy::Never => (false, "policy = Never".to_string()),
            PushdownPolicy::CostBased => {
                let pick = eager_shape.total < lazy_shape.total;
                (
                    pick,
                    format!(
                        "cost-based: eager shape={:.0} {} lazy shape={:.0}",
                        eager_shape.total,
                        if pick { "<" } else { ">=" },
                        lazy_shape.total
                    ),
                )
            }
        };

        let (choice, plan, alternative) = if pick_eager {
            (eager_choice, eager_plan, Some(lazy_plan))
        } else {
            (PlanChoice::Lazy, lazy_plan, Some(eager_plan))
        };
        Ok(QueryReport {
            choice,
            reason: format!("transformation valid; {why}"),
            testfd,
            partition: Some(partition.to_string()),
            stats: Some(stats),
            lazy_cost: Some(lazy_cost),
            eager_cost: Some(eager_cost),
            lazy_shape: Some(lazy_shape),
            eager_shape: Some(eager_shape),
            plan,
            alternative,
            certificate: None,
            domains: String::new(),
            pruning: PruningFacts::default(),
        })
    }

    /// Lower a block to an optimized plan, with presentation ORDER BY.
    fn lower(&self, block: &QueryBlock, order_by: &[(ColumnRef, bool)]) -> Result<LogicalPlan> {
        let mut plan = block.to_plan()?;
        if !order_by.is_empty() {
            // Order keys are output columns; reference them by bare name
            // so both the lazy and eager shapes resolve them.
            let keys = order_by
                .iter()
                .map(|(c, asc)| (Expr::bare(c.column.clone()), *asc))
                .collect();
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        Optimizer::standard().optimize(&plan)
    }

    /// The proven cardinality upper-bound tree for a plan: catalog
    /// seeds met with per-column facts scanned from the stored rows of
    /// the plan's base tables, pushed through the range pass.
    /// `INFINITY` marks nodes with no proven bound.
    fn bound_tree_for(&self, plan: &LogicalPlan) -> CardTree {
        let mut seeds = SeedDomains::from_catalog(self.storage.catalog());
        let mut tables = std::collections::BTreeSet::new();
        plan_scan_tables(plan, &mut tables);
        for table in &tables {
            let (Some(def), Some(data)) = (
                self.storage.catalog().table(table),
                self.storage.table_data(table),
            ) else {
                continue;
            };
            for (idx, col) in def.columns.iter().enumerate() {
                let observed = observed_domain(data, idx, col.data_type);
                seeds.merge(&def.name, &col.name, &observed);
            }
        }
        let analysis = analyze_plan(plan, &seeds);
        bound_tree(plan, &analysis.root, &self.storage)
    }

    fn build_fd_context(&self, block: &QueryBlock) -> FdContext {
        let mut ctx = FdContext::new();
        collect_tables(block, self.storage.catalog(), &mut ctx);
        ctx
    }
}

/// Register every base relation (including those inside derived blocks,
/// for the reverse transformation) under its qualifier.
fn collect_tables(block: &QueryBlock, catalog: &Catalog, ctx: &mut FdContext) {
    for rel in &block.relations {
        match rel {
            BlockRelation::Base {
                table, qualifier, ..
            } => {
                if let Some(def) = catalog.table(table) {
                    ctx.add_table(qualifier.clone(), def.clone());
                }
            }
            BlockRelation::Derived { block, .. } => {
                collect_tables(block, catalog, ctx);
            }
        }
    }
}

/// Whether the plan contains a grouped aggregate strictly below a join
/// — the site a certified combiner would occupy in sharded execution.
fn has_aggregate_below_join(plan: &LogicalPlan) -> bool {
    fn walk(plan: &LogicalPlan, under_join: bool) -> bool {
        match plan {
            LogicalPlan::Scan { .. } => false,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::SubqueryAlias { input, .. }
            | LogicalPlan::Sort { input, .. } => walk(input, under_join),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::CrossJoin { left, right } => {
                walk(left, true) || walk(right, true)
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => (under_join && !group_by.is_empty()) || walk(input, under_join),
        }
    }
    walk(plan, false)
}

/// Convert the estimator's per-node predictions into the optimizer's
/// shape-congruent cardinality tree.
fn card_tree(e: &PlanEstimate) -> CardTree {
    CardTree {
        rows: e.rows,
        children: e.children.iter().map(card_tree).collect(),
    }
}

/// The per-column facts actually observed in a stored table's rows:
/// min/max (numeric), the distinct non-NULL count, whether any NULL is
/// present, and (for small string columns) the exact value set. Met
/// with the catalog seed, these give the range pass the tightest sound
/// base domains for estimate clamping.
fn observed_domain(
    data: &gbj_storage::Table,
    idx: usize,
    data_type: gbj_types::DataType,
) -> ColumnDomain {
    use gbj_types::Value;
    let mut lo: Option<f64> = None;
    let mut hi: Option<f64> = None;
    let mut saw_null = false;
    let mut distinct: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for row in data.value_rows() {
        let Some(v) = row.get(idx) else { continue };
        match v {
            Value::Null => saw_null = true,
            other => {
                let n = match other {
                    Value::Int(i) => Some(*i as f64),
                    Value::Float(f) => Some(*f),
                    _ => None,
                };
                if let Some(n) = n {
                    lo = Some(lo.map_or(n, |l| l.min(n)));
                    hi = Some(hi.map_or(n, |h| h.max(n)));
                }
                distinct.insert(match other {
                    Value::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                });
            }
        }
    }
    let integral = matches!(data_type, gbj_types::DataType::Int64);
    let interval = match data_type {
        gbj_types::DataType::Int64 | gbj_types::DataType::Float64 => Some(match (lo, hi) {
            (Some(lo), Some(hi)) => gbj_analyze::Interval {
                lo: Some(lo),
                hi: Some(hi),
                integral,
            },
            // No non-NULL value stored: the non-NULL domain is empty.
            _ => gbj_analyze::Interval::empty(integral),
        }),
        _ => None,
    };
    let values = (data_type == gbj_types::DataType::Utf8
        && distinct.len() <= gbj_analyze::domain::MAX_VALUE_SET)
        .then(|| distinct.clone());
    ColumnDomain {
        interval,
        values,
        nullability: if saw_null {
            Nullability::Maybe
        } else {
            Nullability::Never
        },
        ndv: Some(distinct.len() as f64),
    }
}

/// The base-table names a plan scans, deduplicated.
fn plan_scan_tables(plan: &LogicalPlan, out: &mut std::collections::BTreeSet<String>) {
    if let LogicalPlan::Scan { table, .. } = plan {
        out.insert(table.clone());
    }
    for child in plan.children() {
        plan_scan_tables(child, out);
    }
}

/// Build the proven cardinality upper-bound tree for a plan from its
/// domain analysis: `INFINITY` means "no bound at this node". Every
/// finite entry is an upper bound on the node's *true* output
/// cardinality against the current stored data, so clamping estimates
/// with it can only move them toward the truth.
fn bound_tree(plan: &LogicalPlan, node: &gbj_analyze::DomainNode, storage: &Storage) -> CardTree {
    let children: Vec<CardTree> = plan
        .children()
        .iter()
        .zip(&node.children)
        .map(|(p, n)| bound_tree(p, n, storage))
        .collect();
    let child_rows = |i: usize| children.get(i).map_or(f64::INFINITY, |c| c.rows);
    let rows = match plan {
        LogicalPlan::Scan { table, .. } => storage
            .table_data(table)
            .map_or(f64::INFINITY, |d| d.len() as f64),
        LogicalPlan::Filter { .. } => {
            if node.never_true {
                0.0
            } else {
                child_rows(0)
            }
        }
        LogicalPlan::Join { .. } | LogicalPlan::CrossJoin { .. } => {
            if node.never_true {
                0.0
            } else {
                child_rows(0) * child_rows(1)
            }
        }
        LogicalPlan::Project { distinct, .. } => {
            let mut bound = child_rows(0);
            if *distinct {
                if let Some(groups) = groups_bound_from(node, plan) {
                    bound = bound.min(groups);
                }
            }
            bound
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                let mut bound = child_rows(0);
                // Π over the group keys' per-column group counts
                // (NDV, interval width, value-set size — each +1 for
                // the NULL group under `=ⁿ`), read from the child's
                // domains.
                if let (Ok(schema), Some(child_node)) = (input.schema(), node.children.first()) {
                    let mut product = 1.0_f64;
                    let mut all_known = true;
                    for g in group_by {
                        let per_col = match g {
                            Expr::Column(c) => child_node
                                .domain_of(&schema, c)
                                .and_then(gbj_analyze::ColumnDomain::group_ndv_upper),
                            _ => None,
                        };
                        match per_col {
                            Some(n) => product *= n,
                            None => {
                                all_known = false;
                                break;
                            }
                        }
                    }
                    if all_known {
                        bound = bound.min(product);
                    }
                }
                bound
            }
        }
        LogicalPlan::SubqueryAlias { .. } | LogicalPlan::Sort { .. } => child_rows(0),
    };
    CardTree { rows, children }
}

/// The `Π group_ndv_upper` bound over a DISTINCT projection's output
/// columns, when every column's group count is known.
fn groups_bound_from(node: &gbj_analyze::DomainNode, plan: &LogicalPlan) -> Option<f64> {
    let schema = plan.schema().ok()?;
    let mut product = 1.0_f64;
    for f in schema.fields() {
        let dom = node.columns.get(&gbj_analyze::range_pass::field_key(f))?;
        product *= dom.group_ndv_upper()?;
    }
    Some(product)
}

/// Clamp the estimator's per-node predictions to the proven bound tree
/// (shape-congruent; `INFINITY` = unbounded).
fn clamp_plan_estimate(est: &mut PlanEstimate, bound: &CardTree) {
    if bound.rows.is_finite() && est.rows > bound.rows {
        est.rows = bound.rows;
    }
    for (child, b) in est.children.iter_mut().zip(&bound.children) {
        clamp_plan_estimate(child, b);
    }
}

/// The (qualifier, base table) pairs of a block, recursively.
fn base_tables(block: &QueryBlock) -> Vec<(String, String)> {
    let mut out = Vec::new();
    fn walk(block: &QueryBlock, out: &mut Vec<(String, String)>) {
        for rel in &block.relations {
            match rel {
                BlockRelation::Base {
                    table, qualifier, ..
                } => out.push((qualifier.clone(), table.clone())),
                BlockRelation::Derived { block, .. } => walk(block, out),
            }
        }
    }
    walk(block, &mut out);
    out
}

/// Convert an assertion AST into a raw (table-name-qualified) expression.
fn raw_assertion_expr(ast: &gbj_sql::AstExpr) -> Result<Expr> {
    use gbj_sql::AstExpr;
    Ok(match ast {
        AstExpr::Name(parts) => match parts.as_slice() {
            [col] => Expr::Column(ColumnRef::bare(col.clone())),
            [table, col] => Expr::Column(ColumnRef::qualified(table.clone(), col.clone())),
            _ => {
                return Err(Error::Bind(format!(
                    "invalid assertion column {}",
                    parts.join(".")
                )))
            }
        },
        AstExpr::Literal(v) => Expr::Literal(v.clone()),
        AstExpr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(raw_assertion_expr(left)?),
            op: *op,
            right: Box::new(raw_assertion_expr(right)?),
        },
        AstExpr::Not(e) => Expr::Not(Box::new(raw_assertion_expr(e)?)),
        AstExpr::Neg(e) => Expr::Neg(Box::new(raw_assertion_expr(e)?)),
        AstExpr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(raw_assertion_expr(expr)?),
            negated: *negated,
        },
        AstExpr::Func { name, .. } => {
            return Err(Error::Unsupported(format!("aggregate {name} in assertion")))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::Value;

    /// Example 1 end to end, small scale.
    fn example1_db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE Department (DeptID INT PRIMARY KEY, Name VARCHAR(30)); \
             CREATE TABLE Employee (EmpID INT PRIMARY KEY, LastName VARCHAR(30), \
                 FirstName VARCHAR(30), DeptID INT REFERENCES Department);",
        )
        .unwrap();
        for d in 1..=4 {
            db.execute(&format!("INSERT INTO Department VALUES ({d}, 'dept{d}')"))
                .unwrap();
        }
        for e in 1..=20 {
            let d = e % 4 + 1;
            db.execute(&format!(
                "INSERT INTO Employee VALUES ({e}, 'last{e}', 'first{e}', {d})"
            ))
            .unwrap();
        }
        db
    }

    const EXAMPLE1_SQL: &str = "SELECT D.DeptID, D.Name, COUNT(E.EmpID) \
         FROM Employee E, Department D \
         WHERE E.DeptID = D.DeptID \
         GROUP BY D.DeptID, D.Name";

    #[test]
    fn example1_end_to_end_transforms_and_answers() {
        let db = example1_db();
        let (rows, profile, report) = db.query_report(EXAMPLE1_SQL).unwrap();
        assert_eq!(rows.len(), 4);
        let sorted = rows.sorted();
        assert_eq!(
            sorted.rows[0],
            vec![Value::Int(1), Value::str("dept1"), Value::Int(5)]
        );
        // The transformation is valid and (cost-based) chosen.
        assert_eq!(report.choice, PlanChoice::Eager);
        assert!(report.testfd.is_some());
        // The profile shows aggregation below the join.
        let tree = profile.display_tree();
        let agg_pos = tree.find("Aggregate").unwrap();
        let join_pos = tree.find("Join").unwrap();
        assert!(agg_pos > join_pos, "{tree}");
    }

    #[test]
    fn policies_agree_on_results() {
        let mut db = example1_db();
        let mut results = Vec::new();
        for policy in [
            PushdownPolicy::CostBased,
            PushdownPolicy::Always,
            PushdownPolicy::Never,
        ] {
            db.options_mut().policy = policy;
            results.push(db.query(EXAMPLE1_SQL).unwrap());
        }
        assert!(results[0].multiset_eq(&results[1]));
        assert!(results[0].multiset_eq(&results[2]));
    }

    #[test]
    fn never_policy_keeps_lazy_plan() {
        let mut db = example1_db();
        db.options_mut().policy = PushdownPolicy::Never;
        let report = db.plan_query(EXAMPLE1_SQL).unwrap();
        assert_eq!(report.choice, PlanChoice::Lazy);
        assert!(report.alternative.is_some(), "eager plan still reported");
    }

    #[test]
    fn explain_mentions_everything() {
        let mut db = example1_db();
        let out = db.execute(&format!("EXPLAIN {EXAMPLE1_SQL}")).unwrap();
        let QueryOutput::Explain(text) = out else {
            panic!()
        };
        assert!(text.contains("choice: Eager"), "{text}");
        assert!(text.contains("TestFD"));
        assert!(text.contains("partition"));
        assert!(text.contains("alternative plan:"));
        assert!(text.contains("cost:"));
    }

    #[test]
    fn explain_analyze_reports_times_and_estimate_audit() {
        let mut db = example1_db();
        let out = db
            .execute(&format!("EXPLAIN ANALYZE {EXAMPLE1_SQL}"))
            .unwrap();
        let QueryOutput::Explain(text) = out else {
            panic!()
        };
        // Bugfix: planning and execution are separate labeled lines.
        assert!(text.contains("planning time: "), "{text}");
        assert!(text.contains("execution time: "), "{text}");
        assert!(text.contains("actual rows: 4"), "{text}");
        assert!(text.contains("peak memory: "), "{text}");
        // Each measured node carries est/actual/q columns.
        assert!(text.contains("estimate vs actual:"), "{text}");
        assert!(text.contains("est="), "{text}");
        assert!(text.contains("actual="), "{text}");
        assert!(text.contains("q="), "{text}");
    }

    #[test]
    fn last_query_metrics_registry_updates_per_query() {
        let db = example1_db();
        assert!(db.last_query_metrics().is_none(), "nothing ran yet");
        db.query(EXAMPLE1_SQL).unwrap();
        let m = db.last_query_metrics().expect("query recorded metrics");
        assert_eq!(m.rows, 4);
        assert_eq!(m.choice, PlanChoice::Eager);
        assert!(m.peak_memory_bytes > 0);
        let audits = m.audits();
        assert!(!audits.is_empty());
        assert!(crate::audit::max_q(&audits) >= 1.0);
        // A different query overwrites the registry.
        db.query("SELECT E.LastName FROM Employee E WHERE E.DeptID = 1")
            .unwrap();
        let m2 = db.last_query_metrics().unwrap();
        assert_eq!(m2.rows, 5);
        // The render mentions every section.
        let text = m2.render();
        assert!(text.contains("planning time: "), "{text}");
        assert!(text.contains("execution time: "), "{text}");
        assert!(text.contains("estimate vs actual:"), "{text}");
        assert!(text.contains("operator metrics:"), "{text}");
        assert!(text.contains("batches="), "{text}");
    }

    #[test]
    fn ungrouped_query_stays_lazy() {
        let db = example1_db();
        let (rows, _, report) = db
            .query_report("SELECT E.LastName FROM Employee E WHERE E.DeptID = 1")
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(report.choice, PlanChoice::Lazy);
        assert!(report.reason.contains("not applied"));
    }

    #[test]
    fn order_by_applies_to_both_shapes() {
        let mut db = example1_db();
        for policy in [PushdownPolicy::Always, PushdownPolicy::Never] {
            db.options_mut().policy = policy;
            let rows = db
                .query(&format!("{EXAMPLE1_SQL} ORDER BY DeptID DESC"))
                .unwrap();
            assert_eq!(rows.rows[0][0], Value::Int(4));
            assert_eq!(rows.rows[3][0], Value::Int(1));
        }
    }

    #[test]
    fn constraint_violations_surface() {
        let mut db = example1_db();
        let err = db
            .execute("INSERT INTO Employee VALUES (1, 'dup', 'dup', 1)")
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");
        let err = db
            .execute("INSERT INTO Employee VALUES (99, 'x', 'y', 42)")
            .unwrap_err();
        assert!(err.message().contains("foreign key"));
    }

    #[test]
    fn aggregated_view_is_unfolded_or_kept_by_policy() {
        let mut db = example1_db();
        db.execute(
            "CREATE VIEW DeptStats (DeptID, Cnt) AS \
             SELECT E.DeptID, COUNT(E.EmpID) FROM Employee E GROUP BY E.DeptID",
        )
        .unwrap();
        let sql = "SELECT D.Name, V.Cnt FROM DeptStats V, Department D \
                   WHERE V.DeptID = D.DeptID";
        let (rows, _, report) = db.query_report(sql).unwrap();
        assert_eq!(rows.len(), 4);
        // Under the default cost model the merged form may win or lose;
        // the report must say the transformation was valid either way.
        assert!(report.testfd.is_some());
        assert!(matches!(
            report.choice,
            PlanChoice::Unfolded | PlanChoice::Eager
        ));

        // Policy Never forces the unfolded (lazy) shape.
        db.options_mut().policy = PushdownPolicy::Never;
        let report = db.plan_query(sql).unwrap();
        assert_eq!(report.choice, PlanChoice::Lazy);
        let rows2 = db.query(sql).unwrap();
        assert!(rows.multiset_eq(&rows2));

        // Policy Always keeps the written (eager) shape.
        db.options_mut().policy = PushdownPolicy::Always;
        let report = db.plan_query(sql).unwrap();
        assert_eq!(report.choice, PlanChoice::Unfolded);
        let rows3 = db.query(sql).unwrap();
        assert!(rows.multiset_eq(&rows3));
    }

    #[test]
    fn ddl_outputs() {
        let mut db = Database::new();
        let out = db.execute("CREATE TABLE T (x INT)").unwrap();
        assert!(matches!(out, QueryOutput::Ddl(_)));
        let out = db.execute("INSERT INTO T VALUES (1), (2)").unwrap();
        assert!(matches!(out, QueryOutput::Affected(2)));
        let out = db.execute("DROP TABLE T").unwrap();
        assert!(matches!(out, QueryOutput::Ddl(_)));
        assert!(db.execute("SELECT * FROM T").is_err());
    }

    #[test]
    fn assertion_rescues_the_transformation() {
        // Grouping by D.Name (a non-key of Department) normally fails
        // TestFD: two departments could share a name.
        let by_name = "SELECT D.Name, COUNT(E.EmpID) FROM Employee E, Department D \
                 WHERE E.DeptID = D.DeptID GROUP BY D.Name";
        let mut db = example1_db();
        let report = db.plan_query(by_name).unwrap();
        assert_eq!(report.choice, PlanChoice::Lazy);

        // An assertion pinning E.DeptID to a constant makes the key of
        // Department derivable (Theorem 3): the rewrite becomes valid.
        db.execute("CREATE ASSERTION all_in_one CHECK (Employee.DeptID = 1)")
            .unwrap();
        db.options_mut().policy = PushdownPolicy::Always;
        let report = db.plan_query(by_name).unwrap();
        assert_eq!(report.choice, PlanChoice::Eager);
    }

    #[test]
    fn missing_tables_are_typed_errors_on_every_entry_point() {
        let mut db = example1_db();
        // Every DML/query entry point over an unknown table must come
        // back as a catalog or bind error — never a panic, never an
        // internal error.
        let cases = [
            "SELECT * FROM Nope",
            "SELECT N.x FROM Nope N WHERE N.x = 1",
            "INSERT INTO Nope VALUES (1)",
            "DELETE FROM Nope",
            "DELETE FROM Nope WHERE x = 1",
            "UPDATE Nope SET x = 1",
            "UPDATE Nope SET x = 1 WHERE x = 2",
            "DROP TABLE Nope",
            "EXPLAIN SELECT * FROM Nope",
        ];
        for sql in cases {
            let err = db.execute(sql).unwrap_err();
            assert!(
                matches!(err.kind(), "catalog" | "bind"),
                "{sql}: kind {} ({err})",
                err.kind()
            );
        }
        // Unknown columns on a known table are bind errors.
        let err = db.execute("UPDATE Employee SET Nope = 1").unwrap_err();
        assert!(
            matches!(err.kind(), "catalog" | "bind"),
            "unknown column: kind {} ({err})",
            err.kind()
        );
        let err = db.execute("SELECT E.Nope FROM Employee E").unwrap_err();
        assert_eq!(err.kind(), "bind");
    }

    #[test]
    fn fault_injector_is_installable_and_observable() {
        use gbj_storage::{FaultConfig, FaultInjector};
        let mut db = example1_db();
        assert!(db.fault_injector().is_none());
        db.set_fault_injector(Some(FaultInjector::new(FaultConfig {
            seed: 7,
            fail_nth_batch: Some(0),
            ..FaultConfig::default()
        })));
        let err = db.query(EXAMPLE1_SQL).unwrap_err();
        assert_eq!(err.kind(), "execution");
        assert!(err.message().contains("injected fault"), "{err}");
        assert!(db.fault_injector().unwrap().failures_injected() >= 1);
        db.set_fault_injector(None);
        assert_eq!(db.query(EXAMPLE1_SQL).unwrap().len(), 4);
    }

    #[test]
    fn count_distinct_runs_end_to_end() {
        let db = example1_db();
        let rows = db
            .query(
                "SELECT D.DeptID, COUNT(DISTINCT E.LastName) FROM Employee E, Department D \
                 WHERE E.DeptID = D.DeptID GROUP BY D.DeptID",
            )
            .unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn having_query_executes_unrewritten() {
        let mut db = example1_db();
        // Give dept 1 a sixth member so HAVING > 5 is selective.
        db.execute("INSERT INTO Employee VALUES (21, 'extra', 'e', 1)")
            .unwrap();
        let (rows, _, report) = db
            .query_report(&format!("{EXAMPLE1_SQL} HAVING COUNT(E.EmpID) > 5"))
            .unwrap();
        assert_eq!(report.choice, PlanChoice::Lazy);
        assert!(report.reason.contains("HAVING"));
        assert_eq!(rows.len(), 1, "only dept1 now has 6 members");
        assert_eq!(rows.rows[0][2], Value::Int(6));
    }
}
