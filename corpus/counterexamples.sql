-- Counterexample corpus: queries whose eager-aggregation rewrite is
-- REFUSED, plus NULL-semantics pitfalls. Every refusal must surface as
-- a stable GBJxxx diagnostic at Warning/Info severity — refusing is
-- the *correct* outcome, so `gbj-lint` still exits 0 over this file
-- (tests/analyzer_negative.rs pins the exact codes).

-- Grouping by a non-key of R2 (the paper's canonical invalid case):
-- GA1+ = {E.DeptID} is not derivable from {D.Name} — TestFD Step 4h
-- fails FD1 → GBJ202.
CREATE TABLE Department (
    DeptID INTEGER PRIMARY KEY,
    Name VARCHAR(30) NOT NULL);
CREATE TABLE Employee (
    EmpID INTEGER PRIMARY KEY,
    DeptID INTEGER NOT NULL REFERENCES Department);

SELECT D.Name, COUNT(E.EmpID)
FROM Employee E, Department D
WHERE E.DeptID = D.DeptID
GROUP BY D.Name;

-- A keyless R2: GA1+ is derivable through the join equality, but no
-- candidate key of KeylessDept exists, so FD2's Step 4d key check
-- fails → GBJ203.
CREATE TABLE KeylessDept (DeptID INTEGER, Name VARCHAR(30));
CREATE TABLE Worker (WorkerID INTEGER PRIMARY KEY, DeptID INTEGER NOT NULL);

SELECT K.DeptID, COUNT(W.WorkerID)
FROM Worker W, KeylessDept K
WHERE W.DeptID = K.DeptID
GROUP BY K.DeptID;

-- Degenerate Main-Theorem case: a Cartesian product grouped by R2's
-- key leaves GA1+ = ∅ — structurally inapplicable → GBJ206.
CREATE TABLE L (a INTEGER PRIMARY KEY, v INTEGER NOT NULL);
CREATE TABLE R (b INTEGER PRIMARY KEY, w INTEGER NOT NULL);

SELECT R.b, SUM(L.v) FROM L, R GROUP BY R.b;

-- NULL-semantics pitfalls (§3: ⌊P⌋ / ⌈P⌉ vs naive 2VL):
-- `= NULL` is never true under 3VL → GBJ301; `<>` and `NOT` over a
-- nullable column diverge from their 2VL readings → GBJ303 / GBJ302.
CREATE TABLE Account (Id INTEGER PRIMARY KEY, RegionCode INTEGER);

SELECT A.Id FROM Account A WHERE A.RegionCode = NULL;

SELECT A.Id FROM Account A WHERE A.RegionCode <> 7;
