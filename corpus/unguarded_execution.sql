-- GBJ405 counterexample: a query that *runs* (produces an execution
-- profile) with neither a resource budget nor a deadline attached to
-- its ResourceGuard. Nothing could cancel, shed, or time it out — the
-- serving layer (DESIGN.md §13) always attaches one or the other, so
-- a profiled-but-unguarded run marks a code path that bypassed
-- admission control. tests/analyzer_negative.rs executes the final
-- SELECT and pins the exec-pass verdict: exactly [GBJ405] (warning)
-- unguarded, clean once a deadline or any ResourceLimits budget is
-- attached.
--
-- This file is deliberately NOT part of the `gbj-lint` corpus sweep
-- (scripts/verify.sh / CI diff the codes of counterexamples.sql only):
-- GBJ405 needs a post-execution profile, which static linting of SQL
-- text cannot produce.

CREATE TABLE Dept (
    DeptId INTEGER PRIMARY KEY,
    Budget INTEGER NOT NULL);
CREATE TABLE Emp (
    EmpId INTEGER PRIMARY KEY,
    DeptId INTEGER NOT NULL REFERENCES Dept,
    Sal INTEGER NOT NULL);

INSERT INTO Dept VALUES (1, 100), (2, 200);
INSERT INTO Emp VALUES (10, 1, 50), (11, 1, 60), (12, 2, 70);

SELECT D.DeptId, COUNT(E.EmpId), SUM(E.Sal)
FROM Emp E, Dept D
WHERE E.DeptId = D.DeptId
GROUP BY D.DeptId;
