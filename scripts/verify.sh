#!/usr/bin/env bash
# Tier-1 verification: build, tests, and the panic-freedom lint gate.
#
# The clippy step enforces the workspace lint gate: gbj-exec,
# gbj-storage and gbj-engine deny unwrap_used / expect_used / panic /
# indexing_slicing outside test code — including the morsel-driven
# parallel module crates/exec/src/parallel.rs (see
# [workspace.lints.clippy] in Cargo.toml).
#
# The GBJ_TEST_THREADS=4 pass re-runs the whole suite with the engine
# defaulting to 4 worker threads, pushing every engine-level test
# through the parallel hash join / hash aggregate operators — the
# observability suites (estimator_accuracy, explain_golden,
# parallel_differential) run in both passes, so metrics counters and
# EXPLAIN ANALYZE output are checked serial and parallel.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
GBJ_TEST_THREADS=4 cargo test -q --workspace
# Explicit 1- and 4-thread passes over the observability suites (cheap,
# and keeps them covered even if the workspace matrix above changes).
for t in 1 4; do
  GBJ_TEST_THREADS=$t cargo test -q \
    --test estimator_accuracy --test explain_golden --test parallel_differential
done
# Smoke the estimate-vs-actual audit sweep (JSON to stdout).
cargo run --release -q -p gbj-bench --bin cardinality_audit > /dev/null
cargo clippy --all-targets
echo "verify: OK"
