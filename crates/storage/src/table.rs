//! The stored table: a multiset of rows with implicit RowIDs and
//! hash indexes over declared keys.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use gbj_types::{Error, GroupKey, Result, Schema, Value};

/// A stored row: its implicit RowID plus the column values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The implicit unique row identifier (paper §4.3).
    pub row_id: u64,
    /// Column values in schema order.
    pub values: Vec<Value>,
}

/// An index over one candidate key of a table.
///
/// PRIMARY KEY entries always participate; UNIQUE entries with any NULL
/// component are *not* indexed because SQL2's UNIQUE uses "NULL ≠ NULL"
/// semantics — such rows can never conflict.
#[derive(Debug, Clone)]
struct KeyIndex {
    columns: Vec<usize>,
    /// Whether NULLs are allowed in the key (UNIQUE yes, PRIMARY KEY no).
    allows_null: bool,
    /// `Arc`-shared so cloning a table for a snapshot is O(1) per
    /// index; mutation goes through `Arc::make_mut` (copy-on-write).
    entries: Arc<HashSet<GroupKey>>,
}

/// An in-memory base table.
///
/// Rows and key-index entries live behind `Arc`s, so [`Table::clone`]
/// (and hence a whole-database snapshot) is O(tables), not O(rows):
/// a clone shares the row storage, and the first mutation after a
/// snapshot pays a one-time copy-on-write of the mutated table only.
/// Snapshots therefore never observe torn state — they hold the exact
/// row vector that existed when they were taken.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    rows: Arc<Vec<Row>>,
    next_row_id: u64,
    /// Bumped on every mutation; invalidates lazy lookup sets.
    generation: u64,
    key_indexes: Vec<KeyIndex>,
    /// Lookup sets for foreign keys *into* this table, keyed by the
    /// referenced column ordinals, tagged with the generation they were
    /// built at. Built lazily, maintained incrementally on insert.
    ref_lookups: HashMap<Vec<usize>, (u64, HashSet<GroupKey>)>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: Arc::clone(&self.rows),
            next_row_id: self.next_row_id,
            generation: self.generation,
            key_indexes: self.key_indexes.clone(),
            // The lazy FK-lookup cache is not carried across clones: a
            // stale generation tag would force a rebuild anyway, and
            // dropping it keeps snapshots cheap.
            ref_lookups: HashMap::new(),
        }
    }
}

/// Clone the value at column ordinal `c`, treating a (never-expected)
/// out-of-range ordinal as NULL. Storage validates row arity before any
/// row reaches `Table`, so the fallback exists only to keep this module
/// panic-free under the `indexing_slicing` lint.
fn val_at(values: &[Value], c: usize) -> Value {
    values.get(c).cloned().unwrap_or(Value::Null)
}

impl Table {
    /// An empty table with the given (unqualified or table-qualified)
    /// schema.
    #[must_use]
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Arc::new(Vec::new()),
            next_row_id: 0,
            generation: 0,
            key_indexes: Vec::new(),
            ref_lookups: HashMap::new(),
        }
    }

    /// Declare a key over column ordinals; `allows_null` is true for
    /// UNIQUE, false for PRIMARY KEY.
    pub(crate) fn add_key_index(&mut self, columns: Vec<usize>, allows_null: bool) {
        self.key_indexes.push(KeyIndex {
            columns,
            allows_null,
            entries: Arc::new(HashSet::new()),
        });
    }

    /// The table schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate the stored rows.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// The raw value vectors, for the executor's scan.
    pub fn value_rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.values.as_slice())
    }

    /// The stored rows as a slice (for batched scan cursors).
    pub(crate) fn raw_rows(&self) -> &[Row] {
        &self.rows
    }

    /// Check key uniqueness for a candidate row (without inserting).
    pub(crate) fn check_keys(&self, values: &[Value]) -> Result<()> {
        for idx in &self.key_indexes {
            let key_vals: Vec<Value> = idx.columns.iter().map(|&c| val_at(values, c)).collect();
            let has_null = key_vals.iter().any(Value::is_null);
            if has_null {
                if idx.allows_null {
                    continue; // UNIQUE: NULL ≠ NULL, never conflicts
                }
                return Err(Error::Constraint(format!(
                    "NULL in primary key column of key ({:?})",
                    idx.columns
                )));
            }
            if idx.entries.contains(&GroupKey(key_vals)) {
                return Err(Error::Constraint(format!(
                    "duplicate key value for key on columns {:?}",
                    idx.columns
                )));
            }
        }
        Ok(())
    }

    /// Append a row, updating indexes. The caller (Storage) has already
    /// validated constraints.
    pub(crate) fn push(&mut self, values: Vec<Value>) -> u64 {
        for idx in &mut self.key_indexes {
            let key_vals: Vec<Value> = idx.columns.iter().map(|&c| val_at(&values, c)).collect();
            if !key_vals.iter().any(Value::is_null) {
                Arc::make_mut(&mut idx.entries).insert(GroupKey(key_vals));
            }
        }
        self.generation += 1;
        // Keep current lookup sets current (incremental maintenance).
        for (cols, (gen, set)) in &mut self.ref_lookups {
            let key_vals: Vec<Value> = cols.iter().map(|&c| val_at(&values, c)).collect();
            if !key_vals.iter().any(Value::is_null) {
                set.insert(GroupKey(key_vals));
            }
            *gen = self.generation;
        }
        let id = self.next_row_id;
        self.next_row_id += 1;
        // Copy-on-write: the first push after a snapshot copies the row
        // vector; snapshots keep reading the old one untouched.
        Arc::make_mut(&mut self.rows).push(Row { row_id: id, values });
        id
    }

    /// Replace the stored rows wholesale (DELETE / UPDATE), rebuilding
    /// key indexes and invalidating lookup sets. Surviving rows keep
    /// their RowIDs; `next_row_id` never goes backwards, so IDs are
    /// never reused.
    pub(crate) fn replace_rows(&mut self, rows: Vec<Row>) {
        self.ref_lookups.clear();
        for idx in &mut self.key_indexes {
            let mut entries = HashSet::new();
            for row in &rows {
                let key_vals: Vec<Value> = idx
                    .columns
                    .iter()
                    .map(|&c| val_at(&row.values, c))
                    .collect();
                if !key_vals.iter().any(Value::is_null) {
                    entries.insert(GroupKey(key_vals));
                }
            }
            // Fresh Arcs: snapshots holding the old sets are unaffected.
            idx.entries = Arc::new(entries);
        }
        self.generation += 1;
        self.rows = Arc::new(rows);
    }

    /// Key-uniqueness check over an arbitrary candidate row multiset
    /// (used by UPDATE, which must validate the *final* state).
    pub(crate) fn check_keys_over(&self, rows: &[Row]) -> Result<()> {
        for idx in &self.key_indexes {
            let mut seen: HashSet<GroupKey> = HashSet::with_capacity(rows.len());
            for row in rows {
                let key_vals: Vec<Value> = idx
                    .columns
                    .iter()
                    .map(|&c| val_at(&row.values, c))
                    .collect();
                if key_vals.iter().any(Value::is_null) {
                    if idx.allows_null {
                        continue;
                    }
                    return Err(Error::Constraint(format!(
                        "NULL in primary key column of key ({:?})",
                        idx.columns
                    )));
                }
                if !seen.insert(GroupKey(key_vals)) {
                    return Err(Error::Constraint(format!(
                        "duplicate key value for key on columns {:?}",
                        idx.columns
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether a (fully non-NULL) key value exists under the given
    /// referenced columns — used for foreign-key validation. Builds a
    /// lookup set on first use.
    pub(crate) fn contains_key_value(&mut self, columns: &[usize], key: &[Value]) -> bool {
        // Fast path: an existing key index over exactly these columns.
        if let Some(idx) = self.key_indexes.iter().find(|i| i.columns == columns) {
            return idx.entries.contains(&GroupKey(key.to_vec()));
        }
        let generation = self.generation;
        let (gen, set) = self
            .ref_lookups
            .entry(columns.to_vec())
            .or_insert_with(|| (0, HashSet::new()));
        if *gen != generation {
            // (Re)build for the current generation; push() maintains it
            // incrementally afterwards.
            set.clear();
            for row in self.rows.iter() {
                let vals: Vec<Value> = columns.iter().map(|&c| val_at(&row.values, c)).collect();
                if !vals.iter().any(Value::is_null) {
                    set.insert(GroupKey(vals));
                }
            }
            *gen = generation;
        }
        set.contains(&GroupKey(key.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Int64, true),
        ])
    }

    #[test]
    fn row_ids_are_sequential_and_unique() {
        let mut t = Table::new(schema());
        let a = t.push(vec![Value::Int(1), Value::Null]);
        let b = t.push(vec![Value::Int(2), Value::Null]);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        let ids: Vec<u64> = t.rows().map(|r| r.row_id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn duplicate_rows_are_allowed_as_multiset() {
        let mut t = Table::new(schema());
        t.push(vec![Value::Int(1), Value::Int(5)]);
        t.push(vec![Value::Int(1), Value::Int(5)]);
        assert_eq!(t.len(), 2, "tables are multisets");
    }

    #[test]
    fn primary_key_index_rejects_duplicates_and_nulls() {
        let mut t = Table::new(schema());
        t.add_key_index(vec![0], false);
        t.check_keys(&[Value::Int(1), Value::Null]).unwrap();
        t.push(vec![Value::Int(1), Value::Null]);
        assert!(t.check_keys(&[Value::Int(1), Value::Int(9)]).is_err());
        assert!(t.check_keys(&[Value::Null, Value::Int(9)]).is_err());
        t.check_keys(&[Value::Int(2), Value::Null]).unwrap();
    }

    #[test]
    fn unique_index_allows_multiple_nulls() {
        let mut t = Table::new(schema());
        t.add_key_index(vec![1], true);
        t.push(vec![Value::Int(1), Value::Null]);
        // A second NULL never conflicts (UNIQUE uses NULL ≠ NULL).
        t.check_keys(&[Value::Int(2), Value::Null]).unwrap();
        t.push(vec![Value::Int(2), Value::Null]);
        t.push(vec![Value::Int(3), Value::Int(7)]);
        assert!(t.check_keys(&[Value::Int(4), Value::Int(7)]).is_err());
    }

    #[test]
    fn contains_key_value_lookup() {
        let mut t = Table::new(schema());
        t.push(vec![Value::Int(1), Value::Int(10)]);
        t.push(vec![Value::Int(2), Value::Int(20)]);
        assert!(t.contains_key_value(&[0], &[Value::Int(1)]));
        assert!(!t.contains_key_value(&[0], &[Value::Int(3)]));
        // Lookup set stays correct across later pushes.
        t.push(vec![Value::Int(3), Value::Int(30)]);
        assert!(t.contains_key_value(&[0], &[Value::Int(3)]));
        // Composite lookup.
        assert!(t.contains_key_value(&[0, 1], &[Value::Int(2), Value::Int(20)]));
        assert!(!t.contains_key_value(&[0, 1], &[Value::Int(2), Value::Int(99)]));
    }

    #[test]
    fn clone_is_a_stable_snapshot() {
        let mut t = Table::new(schema());
        t.add_key_index(vec![0], false);
        t.push(vec![Value::Int(1), Value::Null]);
        let mut snap = t.clone();
        // Writer-side mutations are invisible to the snapshot...
        t.push(vec![Value::Int(2), Value::Null]);
        t.replace_rows(Vec::new());
        assert_eq!(snap.len(), 1);
        assert_eq!(t.len(), 0);
        // ...including its key index and (rebuilt) FK lookup sets.
        assert!(snap.check_keys(&[Value::Int(1), Value::Null]).is_err());
        assert!(snap.contains_key_value(&[0], &[Value::Int(1)]));
        assert!(t.check_keys(&[Value::Int(1), Value::Null]).is_ok());
    }

    #[test]
    fn contains_key_value_uses_key_index_fast_path() {
        let mut t = Table::new(schema());
        t.add_key_index(vec![0], false);
        t.push(vec![Value::Int(5), Value::Null]);
        assert!(t.contains_key_value(&[0], &[Value::Int(5)]));
        assert!(!t.contains_key_value(&[0], &[Value::Int(6)]));
    }
}
