//! Criterion bench for Figure 8 / Example 4: the adversarial instance
//! where the (valid) rewrite loses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbj_datagen::AdversarialConfig;
use gbj_engine::PushdownPolicy;

fn bench(c: &mut Criterion) {
    let cfg = AdversarialConfig::paper();
    let mut db = cfg.build().expect("build");
    let sql = cfg.query();

    let mut group = c.benchmark_group("fig8_counterexample");
    group.sample_size(20);
    for (policy, name) in [
        (PushdownPolicy::Never, "lazy"),
        (PushdownPolicy::Always, "eager"),
        (PushdownPolicy::CostBased, "cost_based"),
    ] {
        db.options_mut().policy = policy;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| db.query(sql).expect("query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
