//! Cardinality estimation for the Section 7 cost decision.
//!
//! Classic System-R-style estimates over the in-memory data:
//!
//! * per-column NDV (number of distinct values) by scanning;
//! * equality-with-constant selectivity `1 / ndv(col)`;
//! * equi-join selectivity `1 / max(ndv(a), ndv(b))`;
//! * integer range predicates via a per-column **equi-depth
//!   histogram** ([`EquiDepthHistogram`]);
//! * other predicates at selectivity `1/3`;
//! * multi-column distinct counts via a **KMV distinct sketch**
//!   ([`DistinctSketch`]) over the joint key when every column lives in
//!   one base table (exact below the sketch size, so the classic
//!   independence-assumption overestimate disappears for correlated
//!   columns), `min(rows, Π ndv)` otherwise.
//!
//! These feed [`gbj_core::Stats`], which the
//! [`CostModel`](gbj_core::CostModel) compares for the lazy and eager
//! plans. When planned with [`Estimator::with_feedback`], learned facts
//! from past measured executions
//! ([`FeedbackStore`](crate::FeedbackStore)) override the model
//! assumptions: an observed join selectivity replaces the `1/max(ndv)`
//! guess and an observed group count replaces the distinct estimate —
//! this is the adaptive half of the cost-based eager/lazy choice.

use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

use gbj_core::{Partition, Stats};
use gbj_expr::{conjuncts, AtomClass, BinaryOp, Expr};
use gbj_plan::LogicalPlan;
use gbj_storage::Storage;
use gbj_types::{ColumnRef, GroupKey, Value};

use crate::feedback::{group_signature, join_signature, FeedbackStore};

/// Selectivity assumed for predicates the estimator cannot analyse.
const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// Buckets per equi-depth histogram.
const HISTOGRAM_BUCKETS: usize = 32;

/// KMV sketch size: exact distinct counts below this, estimated above.
const SKETCH_K: usize = 1024;

/// An equi-depth (equi-height) histogram over one integer column:
/// `buckets` upper bounds chosen so each bucket holds ~the same number
/// of values. Estimates the selectivity of `col < x` and friends by
/// counting full buckets below `x` and linearly interpolating inside
/// the straddling bucket. NULLs are excluded from the buckets (a range
/// predicate is never *true* of NULL) and discount the selectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    min: i64,
    /// Upper bound of each bucket (ascending, last = column max).
    bounds: Vec<i64>,
    non_null: usize,
    total: usize,
}

impl EquiDepthHistogram {
    /// Build from a column's values. Returns `None` when there are no
    /// non-NULL integer values to summarise.
    #[must_use]
    pub fn build(values: &[Option<i64>], buckets: usize) -> Option<EquiDepthHistogram> {
        let total = values.len();
        let mut ints: Vec<i64> = values.iter().filter_map(|v| *v).collect();
        if ints.is_empty() {
            return None;
        }
        ints.sort_unstable();
        let non_null = ints.len();
        let buckets = buckets.max(1).min(non_null);
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            // Rank of this bucket's upper bound (1-based, inclusive).
            let rank = (b * non_null).div_ceil(buckets);
            if let Some(v) = ints.get(rank.saturating_sub(1)) {
                bounds.push(*v);
            }
        }
        let min = ints.first().copied()?;
        Some(EquiDepthHistogram {
            min,
            bounds,
            non_null,
            total,
        })
    }

    /// Estimated fraction of **non-NULL** values `≤ x`.
    #[must_use]
    pub fn fraction_le(&self, x: i64) -> f64 {
        if x < self.min {
            return 0.0;
        }
        let n = self.bounds.len() as f64;
        let mut lower = self.min;
        for (i, &upper) in self.bounds.iter().enumerate() {
            if x >= upper {
                lower = upper;
                continue;
            }
            // x falls inside bucket i: interpolate linearly.
            let width = (upper - lower) as f64;
            let within = if width <= 0.0 {
                1.0
            } else {
                ((x - lower) as f64 / width).clamp(0.0, 1.0)
            };
            return ((i as f64 + within) / n).clamp(0.0, 1.0);
        }
        1.0
    }

    /// Selectivity of `col op literal` over the whole column (NULLs
    /// count against: they never satisfy a range predicate).
    #[must_use]
    pub fn selectivity(&self, op: BinaryOp, lit: i64) -> f64 {
        let le = self.fraction_le(lit);
        // `fraction_lt` via the predecessor; exact enough for integers.
        let lt = self.fraction_le(lit.saturating_sub(1));
        let frac = match op {
            BinaryOp::Lt => lt,
            BinaryOp::LtEq => le,
            BinaryOp::Gt => 1.0 - le,
            BinaryOp::GtEq => 1.0 - lt,
            _ => return DEFAULT_SELECTIVITY,
        };
        let null_discount = if self.total == 0 {
            1.0
        } else {
            self.non_null as f64 / self.total as f64
        };
        (frac * null_discount).clamp(0.0, 1.0)
    }
}

/// A KMV (k-minimum-values) distinct-count sketch: keeps the `k`
/// smallest 64-bit hashes seen. Below `k` distinct values the count is
/// exact; above, the k-th smallest hash estimates the density as
/// `(k-1) · 2⁶⁴ / kth_min`.
#[derive(Debug, Clone, Default)]
pub struct DistinctSketch {
    k: usize,
    mins: BTreeSet<u64>,
}

impl DistinctSketch {
    /// A sketch keeping the `k` minimum hash values.
    #[must_use]
    pub fn new(k: usize) -> DistinctSketch {
        DistinctSketch {
            k: k.max(2),
            mins: BTreeSet::new(),
        }
    }

    /// Record one (hashable) value.
    pub fn insert<T: Hash>(&mut self, value: &T) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        value.hash(&mut h);
        let hv = h.finish();
        if self.mins.len() < self.k {
            self.mins.insert(hv);
        } else if let Some(&max) = self.mins.iter().next_back() {
            if hv < max && self.mins.insert(hv) {
                self.mins.remove(&max);
            }
        }
    }

    /// Estimated number of distinct values inserted.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64;
        }
        match self.mins.iter().next_back() {
            Some(&kth) if kth > 0 => (self.k as f64 - 1.0) * (u64::MAX as f64 / kth as f64),
            _ => self.mins.len() as f64,
        }
    }
}

/// The Q-error of an estimate: `max(est, actual) / min(est, actual)`,
/// with both sides floored at one row so empty results don't divide by
/// zero. Always ≥ 1; 1.0 means a perfect estimate.
#[must_use]
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let e = estimated.max(1.0);
    let a = actual.max(1.0);
    e.max(a) / e.min(a)
}

/// Estimated output cardinality for one plan node; mirrors the
/// [`LogicalPlan`] tree shape exactly, so it can be zipped against the
/// measured [`ProfileNode`](gbj_exec::ProfileNode) tree node by node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEstimate {
    /// The plan node's label (same as the profile node's label).
    pub label: String,
    /// Estimated output rows.
    pub rows: f64,
    /// Child estimates, in plan order.
    pub children: Vec<PlanEstimate>,
}

/// Estimates cardinalities against live storage, optionally corrected
/// by learned feedback facts.
pub struct Estimator<'a> {
    storage: &'a Storage,
    feedback: Option<&'a FeedbackStore>,
}

impl<'a> Estimator<'a> {
    /// An estimator over the given storage (no feedback).
    #[must_use]
    pub fn new(storage: &'a Storage) -> Estimator<'a> {
        Estimator {
            storage,
            feedback: None,
        }
    }

    /// An estimator that consults learned feedback facts before falling
    /// back to the model assumptions.
    #[must_use]
    pub fn with_feedback(storage: &'a Storage, feedback: &'a FeedbackStore) -> Estimator<'a> {
        Estimator {
            storage,
            feedback: Some(feedback),
        }
    }

    /// Row count of a base table (0 when unknown).
    #[must_use]
    pub fn table_rows(&self, table: &str) -> f64 {
        self.storage
            .table_data(table)
            .map_or(0.0, |t| t.len() as f64)
    }

    /// Number of distinct values in a base-table column (NULL counts as
    /// one value, matching `=ⁿ` grouping).
    #[must_use]
    pub fn column_ndv(&self, table: &str, column: &str) -> f64 {
        let Some(data) = self.storage.table_data(table) else {
            return 1.0;
        };
        let Ok(idx) = data.schema().index_of(&ColumnRef::bare(column.to_string())) else {
            return 1.0;
        };
        let mut seen = HashSet::new();
        for row in data.value_rows() {
            let v = row.get(idx).cloned().unwrap_or(Value::Null);
            seen.insert(GroupKey(vec![v]));
        }
        (seen.len() as f64).max(1.0)
    }

    /// NDV of a (qualified) column, given the mapping from qualifier to
    /// base table name.
    fn ndv_of(&self, col: &ColumnRef, tables: &[(String, String)]) -> f64 {
        let Some(q) = &col.table else { return 1.0 };
        let Some((_, table)) = tables.iter().find(|(qual, _)| qual.eq_ignore_ascii_case(q)) else {
            return 1.0;
        };
        self.column_ndv(table, &col.column)
    }

    /// Selectivity of one conjunct.
    fn selectivity(&self, conjunct: &Expr, tables: &[(String, String)]) -> f64 {
        match AtomClass::of(conjunct) {
            AtomClass::ColumnEqConstant(col, _) => 1.0 / self.ndv_of(&col, tables).max(1.0),
            AtomClass::ColumnEqColumn(a, b) => {
                1.0 / self
                    .ndv_of(&a, tables)
                    .max(self.ndv_of(&b, tables))
                    .max(1.0)
            }
            AtomClass::Other => self
                .range_selectivity(conjunct, tables)
                .unwrap_or(DEFAULT_SELECTIVITY),
        }
    }

    /// Histogram-based selectivity for `col <op> int-literal` (either
    /// operand order). `None` when the predicate has a different shape
    /// or the column has no non-NULL integers to summarise.
    fn range_selectivity(&self, conjunct: &Expr, tables: &[(String, String)]) -> Option<f64> {
        let Expr::Binary { left, op, right } = conjunct else {
            return None;
        };
        let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(Value::Int(v))) => (c, *v, *op),
            (Expr::Literal(Value::Int(v)), Expr::Column(c)) => (c, *v, flip(*op)?),
            _ => return None,
        };
        if !matches!(
            op,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
        ) {
            return None;
        }
        let q = col.table.as_deref()?;
        let (_, table) = tables
            .iter()
            .find(|(qual, _)| qual.eq_ignore_ascii_case(q))?;
        let hist = self.histogram(table, &col.column)?;
        Some(hist.selectivity(op, lit))
    }

    /// Build the equi-depth histogram for one integer column (scanning
    /// the live data; `None` when the table/column is missing or holds
    /// no non-NULL integers).
    #[must_use]
    pub fn histogram(&self, table: &str, column: &str) -> Option<EquiDepthHistogram> {
        let data = self.storage.table_data(table)?;
        let idx = data
            .schema()
            .index_of(&ColumnRef::bare(column.to_string()))
            .ok()?;
        let values: Vec<Option<i64>> = data
            .value_rows()
            .map(|row| match row.get(idx) {
                Some(Value::Int(v)) => Some(*v),
                _ => None,
            })
            .collect();
        EquiDepthHistogram::build(&values, HISTOGRAM_BUCKETS)
    }

    /// Joint distinct count of a multi-column set via a KMV sketch over
    /// the concatenated key, when every column maps into one base table
    /// — exact below the sketch size, so correlated columns (the
    /// classic `(DeptID, Name)` case) don't multiply out. `None` when
    /// the columns span tables or can't be resolved.
    fn joint_ndv(&self, cols: &BTreeSet<ColumnRef>, tables: &[(String, String)]) -> Option<f64> {
        if cols.len() < 2 {
            return None;
        }
        let mut table: Option<&str> = None;
        for c in cols {
            let q = c.table.as_deref()?;
            let (_, t) = tables
                .iter()
                .find(|(qual, _)| qual.eq_ignore_ascii_case(q))?;
            match table {
                None => table = Some(t),
                Some(prev) if prev.eq_ignore_ascii_case(t) => {}
                Some(_) => return None,
            }
        }
        let data = self.storage.table_data(table?)?;
        let mut idxs = Vec::with_capacity(cols.len());
        for c in cols {
            idxs.push(
                data.schema()
                    .index_of(&ColumnRef::bare(c.column.clone()))
                    .ok()?,
            );
        }
        let mut sketch = DistinctSketch::new(SKETCH_K);
        for row in data.value_rows() {
            let key = GroupKey(
                idxs.iter()
                    .map(|&i| row.get(i).cloned().unwrap_or(Value::Null))
                    .collect(),
            );
            sketch.insert(&key);
        }
        Some(sketch.estimate().max(1.0))
    }

    /// Estimate the side cardinality: product of member table rows times
    /// the selectivity of the side's local predicate.
    fn side_rows(
        &self,
        qualifiers: &std::collections::BTreeSet<String>,
        local_preds: &[Expr],
        tables: &[(String, String)],
    ) -> f64 {
        let mut rows = 1.0;
        for q in qualifiers {
            if let Some((_, table)) = tables.iter().find(|(qual, _)| qual.eq_ignore_ascii_case(q)) {
                rows *= self.table_rows(table).max(1.0);
            }
        }
        for p in local_preds {
            rows *= self.selectivity(p, tables);
        }
        rows.max(1.0)
    }

    /// Distinct-group estimate for a column set within `rows` rows:
    /// the joint-sketch count when available, else `min(rows, Π ndv)`.
    fn group_count(
        &self,
        cols: &std::collections::BTreeSet<ColumnRef>,
        rows: f64,
        tables: &[(String, String)],
    ) -> f64 {
        self.column_set_groups(cols, rows, tables)
    }

    /// Build the [`Stats`] for one partitioned query.
    ///
    /// `tables` maps each qualifier to its base-table name (the engine
    /// collects it from the block's relations).
    #[must_use]
    pub fn estimate(&self, partition: &Partition, tables: &[(String, String)]) -> Stats {
        let r1_rows = self.side_rows(&partition.r1, &partition.parts.c1, tables);
        let r2_rows = self.side_rows(&partition.r2, &partition.parts.c2, tables);
        let r1_groups = self.group_count(&partition.ga1_plus, r1_rows, tables);

        let mut join_sel = 1.0;
        for c0 in &partition.parts.c0 {
            join_sel *= self.selectivity(c0, tables);
        }
        let join_rows = (r1_rows * r2_rows * join_sel).max(1.0);
        let final_groups = self
            .group_count(&partition.grouping_columns(), join_rows, tables)
            .max(1.0);

        Stats {
            r1_rows,
            r2_rows,
            r1_groups,
            join_rows,
            final_groups,
        }
    }

    /// Estimate the output cardinality of every node in a physical-ready
    /// logical plan, mirroring the tree shape. The same System-R rules
    /// as [`Estimator::estimate`] apply per node: scans report table
    /// rows, filters and joins multiply conjunct selectivities, and
    /// grouping is capped by `min(input, Π ndv)`.
    #[must_use]
    pub fn estimate_plan(&self, plan: &LogicalPlan) -> PlanEstimate {
        let mut tables = Vec::new();
        collect_plan_tables(plan, &mut tables);
        self.node_estimate(plan, &tables)
    }

    fn node_estimate(&self, plan: &LogicalPlan, tables: &[(String, String)]) -> PlanEstimate {
        let label = plan.label();
        match plan {
            LogicalPlan::Scan { table, .. } => PlanEstimate {
                label,
                rows: self.table_rows(table),
                children: vec![],
            },
            LogicalPlan::Filter { input, predicate } => {
                let child = self.node_estimate(input, tables);
                let mut rows = child.rows;
                for c in conjuncts(predicate) {
                    rows *= self.selectivity(&c, tables);
                }
                PlanEstimate {
                    label,
                    rows,
                    children: vec![child],
                }
            }
            LogicalPlan::Project {
                input,
                exprs,
                distinct,
            } => {
                let child = self.node_estimate(input, tables);
                let rows = if *distinct {
                    let cols: std::collections::BTreeSet<ColumnRef> =
                        exprs.iter().flat_map(|(e, _)| e.columns()).collect();
                    self.column_set_groups(&cols, child.rows, tables)
                } else {
                    child.rows
                };
                PlanEstimate {
                    label,
                    rows,
                    children: vec![child],
                }
            }
            LogicalPlan::CrossJoin { left, right } => {
                let l = self.node_estimate(left, tables);
                let r = self.node_estimate(right, tables);
                PlanEstimate {
                    label,
                    rows: l.rows * r.rows,
                    children: vec![l, r],
                }
            }
            LogicalPlan::Join {
                left,
                right,
                condition,
            } => {
                let l = self.node_estimate(left, tables);
                let r = self.node_estimate(right, tables);
                // A learned selectivity for this exact join (by
                // canonical base-table signature) replaces the
                // 1/max(ndv) assumption.
                let learned = self.feedback.and_then(|fb| {
                    join_signature(condition, plan, tables)
                        .and_then(|sig| fb.join_selectivity(&sig))
                });
                let rows = if let Some(sel) = learned {
                    (l.rows * r.rows * sel).max(0.0)
                } else {
                    let mut rows = l.rows * r.rows;
                    for c in conjuncts(condition) {
                        rows *= self.selectivity(&c, tables);
                    }
                    rows
                };
                PlanEstimate {
                    label,
                    rows,
                    children: vec![l, r],
                }
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let child = self.node_estimate(input, tables);
                let learned = self.feedback.and_then(|fb| {
                    group_signature(group_by, input, tables).and_then(|sig| fb.group_count(&sig))
                });
                let rows = if group_by.is_empty() {
                    1.0
                } else if let Some(groups) = learned {
                    groups.max(1.0)
                } else {
                    let cols: std::collections::BTreeSet<ColumnRef> =
                        group_by.iter().flat_map(Expr::columns).collect();
                    self.column_set_groups(&cols, child.rows, tables)
                };
                PlanEstimate {
                    label,
                    rows,
                    children: vec![child],
                }
            }
            LogicalPlan::SubqueryAlias { input, .. } | LogicalPlan::Sort { input, .. } => {
                let child = self.node_estimate(input, tables);
                PlanEstimate {
                    label,
                    rows: child.rows,
                    children: vec![child],
                }
            }
        }
    }

    /// Distinct-group estimate over a column set, never below one row.
    /// Single-table multi-column sets use the joint KMV sketch (no
    /// independence assumption); everything else falls back to
    /// `min(rows, Π ndv(col))`.
    fn column_set_groups(
        &self,
        cols: &std::collections::BTreeSet<ColumnRef>,
        rows: f64,
        tables: &[(String, String)],
    ) -> f64 {
        if let Some(joint) = self.joint_ndv(cols, tables) {
            return joint.min(rows.max(1.0)).max(1.0);
        }
        let mut ndv = 1.0;
        for c in cols {
            ndv *= self.ndv_of(c, tables).max(1.0);
        }
        ndv.min(rows).max(1.0)
    }
}

/// Mirror a comparison operator for `lit op col → col flipped(op) lit`.
fn flip(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        _ => return None,
    })
}

/// Collect `(qualifier, base table)` pairs from a plan's scans. A
/// `SubqueryAlias` whose subtree reads exactly one base table also maps
/// its alias to that table, so estimates survive the rename that
/// re-qualifies the eager plan's aggregated side.
pub(crate) fn collect_plan_tables(plan: &LogicalPlan, out: &mut Vec<(String, String)>) {
    match plan {
        LogicalPlan::Scan {
            table, qualifier, ..
        } => out.push((qualifier.clone(), table.clone())),
        LogicalPlan::SubqueryAlias { input, alias } => {
            let before = out.len();
            collect_plan_tables(input, out);
            if out.len() == before + 1 {
                if let Some((_, table)) = out.last() {
                    out.push((alias.clone(), table.clone()));
                }
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. } => collect_plan_tables(input, out),
        LogicalPlan::CrossJoin { left, right } | LogicalPlan::Join { left, right, .. } => {
            collect_plan_tables(left, out);
            collect_plan_tables(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_catalog::{ColumnDef, Constraint, TableDef};
    use gbj_plan::{BlockRelation, QueryBlock, SelectItem};
    use gbj_types::{DataType, Value};

    /// Example 1 at 1/10 scale: 1000 employees over 10 departments.
    fn setup() -> Storage {
        let mut s = Storage::new();
        s.create_table(
            TableDef::new(
                "Department",
                vec![
                    ColumnDef::new("DeptID", DataType::Int64),
                    ColumnDef::new("Name", DataType::Utf8),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["DeptID".into()])),
        )
        .unwrap();
        s.create_table(
            TableDef::new(
                "Employee",
                vec![
                    ColumnDef::new("EmpID", DataType::Int64),
                    ColumnDef::new("DeptID", DataType::Int64),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["EmpID".into()])),
        )
        .unwrap();
        for d in 0..10 {
            s.insert(
                "Department",
                vec![Value::Int(d), Value::str(format!("dept{d}"))],
            )
            .unwrap();
        }
        for e in 0..1000 {
            s.insert("Employee", vec![Value::Int(e), Value::Int(e % 10)])
                .unwrap();
        }
        s
    }

    fn example1_partition() -> Partition {
        let schema_e = gbj_types::Schema::new(vec![
            gbj_types::Field::new("EmpID", DataType::Int64, false).with_qualifier("E"),
            gbj_types::Field::new("DeptID", DataType::Int64, true).with_qualifier("E"),
        ]);
        let schema_d = gbj_types::Schema::new(vec![
            gbj_types::Field::new("DeptID", DataType::Int64, false).with_qualifier("D"),
            gbj_types::Field::new("Name", DataType::Utf8, true).with_qualifier("D"),
        ]);
        let mut b = QueryBlock::new(vec![
            BlockRelation::Base {
                table: "Employee".into(),
                qualifier: "E".into(),
                schema: schema_e,
            },
            BlockRelation::Base {
                table: "Department".into(),
                qualifier: "D".into(),
                schema: schema_d,
            },
        ]);
        b.predicate = vec![Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID"))];
        b.group_by = vec![
            ColumnRef::qualified("D", "DeptID"),
            ColumnRef::qualified("D", "Name"),
        ];
        b.aggregates = vec![(
            gbj_expr::AggregateCall::new(
                gbj_expr::AggregateFunction::Count,
                Expr::col("E", "EmpID"),
            ),
            "cnt".into(),
        )];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("D", "DeptID"),
                alias: "DeptID".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];
        Partition::minimal(&b).unwrap()
    }

    fn tables() -> Vec<(String, String)> {
        vec![
            ("E".into(), "Employee".into()),
            ("D".into(), "Department".into()),
        ]
    }

    #[test]
    fn ndv_and_rows() {
        let s = setup();
        let est = Estimator::new(&s);
        assert_eq!(est.table_rows("Employee"), 1000.0);
        assert_eq!(est.table_rows("Missing"), 0.0);
        assert_eq!(est.column_ndv("Employee", "DeptID"), 10.0);
        assert_eq!(est.column_ndv("Employee", "EmpID"), 1000.0);
        assert_eq!(est.column_ndv("Employee", "Nope"), 1.0);
    }

    #[test]
    fn example1_estimates_match_intuition() {
        let s = setup();
        let est = Estimator::new(&s);
        let stats = est.estimate(&example1_partition(), &tables());
        assert_eq!(stats.r1_rows, 1000.0);
        assert_eq!(stats.r2_rows, 10.0);
        assert_eq!(stats.r1_groups, 10.0, "10 distinct E.DeptID values");
        // Join selectivity 1/max(10,10) = 0.1 → 1000×10×0.1 = 1000.
        assert_eq!(stats.join_rows, 1000.0);
        // Name is perfectly correlated with DeptID; the joint KMV
        // sketch sees the real pair count (10), where the old
        // independence-assuming Π ndv produced 100.
        assert_eq!(stats.final_groups, 10.0);
        // The cost model then prefers the eager plan here.
        let model = gbj_core::CostModel::default();
        assert!(model.should_transform(&stats));
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0, "symmetric");
        assert_eq!(q_error(0.0, 0.0), 1.0, "empty vs empty is perfect");
        assert_eq!(q_error(5.0, 0.0), 5.0, "actual floored at one row");
    }

    #[test]
    fn plan_estimates_mirror_the_tree_and_match_intuition() {
        let s = setup();
        let est = Estimator::new(&s);
        let scan_e = LogicalPlan::Scan {
            table: "Employee".into(),
            qualifier: "E".into(),
            schema: gbj_types::Schema::new(vec![
                gbj_types::Field::new("EmpID", DataType::Int64, false).with_qualifier("E"),
                gbj_types::Field::new("DeptID", DataType::Int64, true).with_qualifier("E"),
            ]),
        };
        let scan_d = LogicalPlan::Scan {
            table: "Department".into(),
            qualifier: "D".into(),
            schema: gbj_types::Schema::new(vec![
                gbj_types::Field::new("DeptID", DataType::Int64, false).with_qualifier("D"),
                gbj_types::Field::new("Name", DataType::Utf8, true).with_qualifier("D"),
            ]),
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan_e),
                right: Box::new(scan_d),
                condition: Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID")),
            }),
            group_by: vec![Expr::col("D", "DeptID")],
            aggregates: vec![(
                gbj_expr::AggregateCall::new(
                    gbj_expr::AggregateFunction::Count,
                    Expr::col("E", "EmpID"),
                ),
                "cnt".into(),
            )],
        };
        let e = est.estimate_plan(&plan);
        assert_eq!(e.rows, 10.0, "10 distinct D.DeptID groups");
        assert_eq!(e.children.len(), 1);
        let join = &e.children[0];
        // 1000 × 10 × 1/max(10,10) = 1000.
        assert_eq!(join.rows, 1000.0);
        assert_eq!(join.children[0].rows, 1000.0, "Employee scan");
        assert_eq!(join.children[1].rows, 10.0, "Department scan");
        // The estimate tree mirrors the plan tree's labels.
        assert_eq!(join.label, plan_child_label(&plan));
    }

    fn plan_child_label(plan: &LogicalPlan) -> String {
        match plan {
            LogicalPlan::Aggregate { input, .. } => input.label(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn subquery_alias_over_one_table_keeps_estimates() {
        let s = setup();
        let est = Estimator::new(&s);
        let plan = LogicalPlan::SubqueryAlias {
            input: Box::new(LogicalPlan::Scan {
                table: "Department".into(),
                qualifier: "D".into(),
                schema: gbj_types::Schema::new(vec![gbj_types::Field::new(
                    "DeptID",
                    DataType::Int64,
                    false,
                )
                .with_qualifier("D")]),
            }),
            alias: "V".into(),
        };
        let mut tables = Vec::new();
        super::collect_plan_tables(&plan, &mut tables);
        assert!(tables.iter().any(|(q, t)| q == "V" && t == "Department"));
        assert_eq!(est.estimate_plan(&plan).rows, 10.0);
    }

    #[test]
    fn ndv_counts_null_as_one_group() {
        let mut s = Storage::new();
        s.create_table(TableDef::new(
            "T",
            vec![ColumnDef::new("x", DataType::Int64)],
        ))
        .unwrap();
        s.insert("T", vec![Value::Null]).unwrap();
        s.insert("T", vec![Value::Null]).unwrap();
        s.insert("T", vec![Value::Int(1)]).unwrap();
        let est = Estimator::new(&s);
        assert_eq!(est.column_ndv("T", "x"), 2.0);
    }
}
