//! Negative coverage for the static analyzer: each hand-built
//! counterexample to the Main Theorem (mirroring
//! `theorem_counterexamples.rs`) must surface the *specific* GBJxxx
//! code for the condition it violates, and the paper's worked examples
//! must lint completely clean — refusals are explained, valid rewrites
//! are not second-guessed.

use gbj::analyze::{Code, Severity};
use gbj::Database;

/// Lint one query against a fresh schema script, returning its codes.
fn lint(schema: &str, sql: &str) -> Vec<Code> {
    let mut db = Database::new();
    db.run_script(schema).unwrap();
    let report = db.lint_select(sql).unwrap();
    report.codes()
}

/// Lemma 2's counterexample: `(GA1, GA2) → GA1+` is not derivable, so
/// the analyzer must explain the refusal with GBJ202 — and nothing at
/// Error severity (a refusal is advice, not a broken invariant).
#[test]
fn fd1_violation_is_gbj202() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (B INTEGER PRIMARY KEY, H INTEGER); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, G INTEGER, V INTEGER);",
    )
    .unwrap();
    let report = db
        .lint_select("SELECT F.G, D.H, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY F.G, D.H")
        .unwrap();
    assert_eq!(report.codes(), vec![Code::Fd1NotDerivable]);
    assert!(
        !report.has_severity(Severity::Error),
        "a TestFD refusal is Warning-level, not an invariant break:\n{}",
        report.render_text()
    );
}

/// Lemma 3's counterexample: no key of `R2` is derivable from
/// `(GA1+, GA2)` — GBJ203.
#[test]
fn fd2_violation_is_gbj203() {
    let codes = lint(
        "CREATE TABLE D (Id INTEGER PRIMARY KEY, B INTEGER, H INTEGER); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, V INTEGER);",
        "SELECT F.A, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY F.A",
    );
    assert_eq!(codes, vec![Code::Fd2NotDerivable]);
}

/// The minimal repair of Lemma 3's instance — `UNIQUE(B)` restores
/// FD2 — must flip the same query to a clean bill of health.
#[test]
fn restoring_the_key_lints_clean() {
    let codes = lint(
        "CREATE TABLE D (Id INTEGER PRIMARY KEY, B INTEGER UNIQUE, H INTEGER); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, V INTEGER);",
        "SELECT F.A, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY F.A",
    );
    assert_eq!(codes, Vec::<Code>::new());
}

/// A query with no usable join equality (pure Cartesian product
/// grouped on the other side) is structurally inapplicable — GBJ206,
/// Info severity.
#[test]
fn cartesian_grouping_is_gbj206() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE L (Id INTEGER PRIMARY KEY, V INTEGER); \
         CREATE TABLE R (Id INTEGER PRIMARY KEY, B INTEGER);",
    )
    .unwrap();
    let report = db
        .lint_select("SELECT R.B, SUM(L.V) FROM L, R GROUP BY R.B")
        .unwrap();
    assert_eq!(report.codes(), vec![Code::RewriteInapplicable]);
    assert!(!report.has_severity(Severity::Warning));
    assert!(!report.has_severity(Severity::Error));
}

/// `x = NULL` is always UNKNOWN under ⌊P⌋ — GBJ301.
#[test]
fn null_literal_comparison_is_gbj301() {
    let codes = lint(
        "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER);",
        "SELECT T.Id FROM T WHERE T.C = NULL",
    );
    assert_eq!(codes, vec![Code::NullLiteralComparison]);
}

/// `<>` over a nullable operand diverges between ⌊P⌋ and ⌈P⌉ — GBJ303;
/// the same predicate over a NOT NULL column must stay silent.
#[test]
fn noteq_over_nullable_is_gbj303() {
    let codes = lint(
        "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER);",
        "SELECT T.Id FROM T WHERE T.C <> 7",
    );
    assert_eq!(codes, vec![Code::FloorCeilDivergence]);

    let clean = lint(
        "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER NOT NULL);",
        "SELECT T.Id FROM T WHERE T.C <> 7",
    );
    assert_eq!(clean, Vec::<Code>::new());
}

/// The paper's Example 1 (Emp/Dept with a NOT NULL join column) is the
/// canonical *valid* rewrite: zero diagnostics, and the engine really
/// does rewrite it (the lint is not clean merely because nothing was
/// attempted).
#[test]
fn paper_example_1_lints_clean() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Dept (DeptID INTEGER PRIMARY KEY, Budget INTEGER NOT NULL); \
         CREATE TABLE Emp (EmpID INTEGER PRIMARY KEY, \
                           DeptID INTEGER NOT NULL, Salary INTEGER NOT NULL);",
    )
    .unwrap();
    let sql = "SELECT Dept.DeptID, Dept.Budget, SUM(Emp.Salary) \
               FROM Emp, Dept WHERE Emp.DeptID = Dept.DeptID \
               GROUP BY Dept.DeptID, Dept.Budget";
    let report = db.lint_select(sql).unwrap();
    assert!(
        report.is_empty(),
        "Example 1 must lint clean:\n{}",
        report.render_text()
    );
}

/// The whole shipped corpus: every paper example is diagnostic-free,
/// and every counterexample file query yields exactly one refusal or
/// NULL-semantics lint (never an Error).
#[test]
fn shipped_corpus_matches_expectations() {
    let valid = std::fs::read_to_string("corpus/paper_examples.sql").unwrap();
    let mut db = Database::new();
    let reports = db.lint_script(&valid).unwrap();
    assert_eq!(reports.len(), 5, "five linted queries in paper_examples");
    for r in &reports {
        assert!(
            r.is_empty(),
            "expected a clean report:\n{}",
            r.render_text()
        );
    }

    let invalid = std::fs::read_to_string("corpus/counterexamples.sql").unwrap();
    let mut db = Database::new();
    let reports = db.lint_script(&invalid).unwrap();
    let codes: Vec<Code> = reports
        .iter()
        .flat_map(gbj::analyze::Report::codes)
        .collect();
    assert_eq!(
        codes,
        vec![
            Code::Fd1NotDerivable,
            Code::Fd2NotDerivable,
            Code::RewriteInapplicable,
            Code::NullLiteralComparison,
            Code::FloorCeilDivergence,
        ]
    );
    assert!(
        reports.iter().all(|r| !r.has_severity(Severity::Error)),
        "counterexamples document refusals; none is an engine invariant break"
    );

    // The domain-analysis corpus: five queries, each tripping exactly
    // one GBJ6xx code from the range pass, in file order.
    let domain = std::fs::read_to_string("corpus/domain_counterexamples.sql").unwrap();
    let mut db = Database::new();
    let reports = db.lint_script(&domain).unwrap();
    assert_eq!(reports.len(), 5, "five linted queries in domain corpus");
    let codes: Vec<Vec<Code>> = reports.iter().map(gbj::analyze::Report::codes).collect();
    assert_eq!(
        codes,
        vec![
            vec![Code::AlwaysFalsePredicate],
            vec![Code::TautologicalPredicate],
            vec![Code::ProvablyEmptyJoin],
            vec![Code::RedundantNullCheck],
            vec![Code::OutOfDomainComparison],
        ],
        "each domain counterexample yields exactly its own GBJ6xx code"
    );
    assert!(
        reports.iter().all(|r| !r.has_severity(Severity::Error)),
        "GBJ6xx findings are advisory (Warning/Info), never Error"
    );
}

/// GBJ601–GBJ605 minimal inline triggers, each checked against its
/// satisfiable twin so the pass proves facts rather than
/// pattern-matching shapes.
#[test]
fn domain_lints_fire_on_proofs_not_shapes() {
    // GBJ601 needs an actual contradiction; a satisfiable conjunction
    // over the same column is clean.
    let schema = "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER NOT NULL);";
    assert_eq!(
        lint(schema, "SELECT T.Id FROM T WHERE T.C > 10 AND T.C < 5"),
        vec![Code::AlwaysFalsePredicate]
    );
    assert_eq!(
        lint(schema, "SELECT T.Id FROM T WHERE T.C > 5 AND T.C < 10"),
        Vec::<Code>::new()
    );

    // GBJ602 requires 2VL-safety: the same CHECK-implied predicate
    // over a *nullable* column can still be UNKNOWN, so no tautology
    // may be claimed.
    assert_eq!(
        lint(
            "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER NOT NULL CHECK (C >= 1));",
            "SELECT T.Id FROM T WHERE T.C >= 1"
        ),
        vec![Code::TautologicalPredicate]
    );
    assert_eq!(
        lint(
            "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER CHECK (C >= 1));",
            "SELECT T.Id FROM T WHERE T.C >= 1"
        ),
        Vec::<Code>::new()
    );

    // GBJ604 on IS NULL over a PRIMARY KEY (constantly false) as well
    // as IS NOT NULL (constantly true); nullable columns are clean.
    assert_eq!(
        lint(schema, "SELECT T.Id FROM T WHERE T.Id IS NULL"),
        vec![Code::RedundantNullCheck]
    );
    assert_eq!(
        lint(
            "CREATE TABLE T (Id INTEGER PRIMARY KEY, C INTEGER);",
            "SELECT T.Id FROM T WHERE T.C IS NOT NULL"
        ),
        Vec::<Code>::new()
    );

    // GBJ605 fires only outside the proven domain.
    let meter = "CREATE TABLE M (Id INTEGER PRIMARY KEY, \
                 Pct INTEGER CHECK (Pct >= 0 AND Pct <= 100));";
    assert_eq!(
        lint(meter, "SELECT M.Id FROM M WHERE M.Pct = 500"),
        vec![Code::OutOfDomainComparison]
    );
    assert_eq!(
        lint(meter, "SELECT M.Id FROM M WHERE M.Pct = 50"),
        Vec::<Code>::new()
    );
}

/// Serving-layer counterexample (corpus/unguarded_execution.sql): a
/// query that actually ran — it has an execution profile — but whose
/// guard carried neither a resource budget nor a deadline must be
/// flagged GBJ405 (warning), and attaching either one silences it.
#[test]
fn unguarded_profiled_run_is_gbj405() {
    use gbj::analyze::Analysis;
    use gbj::exec::{ExecOptions, ResourceLimits};

    let corpus = std::fs::read_to_string("corpus/unguarded_execution.sql").unwrap();
    let without_comments: String = corpus
        .lines()
        .filter(|l| !l.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n");
    let select = without_comments
        .split(';')
        .map(str::trim)
        .find(|s| s.to_ascii_uppercase().starts_with("SELECT"))
        .expect("corpus file ends with a SELECT")
        .to_string();

    let mut db = Database::new();
    db.run_script(&corpus).unwrap();
    let (_rows, profile, report) = db.query_report(&select).unwrap();

    // The default engine runs unlimited; a profiled run with no
    // deadline either is exactly the unguarded case.
    let unguarded = ExecOptions::default();
    assert!(unguarded.limits.is_unlimited());
    let mut analysis = Analysis::new("corpus/unguarded_execution.sql");
    analysis.check_execution(&report.plan, &unguarded, Some(&profile), false);
    assert_eq!(analysis.report().codes(), vec![Code::UnguardedExecution]);
    assert!(
        analysis.report().has_severity(Severity::Warning),
        "GBJ405 is a warning:\n{}",
        analysis.report().render_text()
    );
    assert!(
        !analysis.report().has_severity(Severity::Error),
        "GBJ405 must not be an error:\n{}",
        analysis.report().render_text()
    );

    // A session deadline counts as a budget: the serving layer always
    // attaches one, so the same profile lints clean.
    let mut analysis = Analysis::new("corpus/unguarded_execution.sql");
    analysis.check_execution(&report.plan, &unguarded, Some(&profile), true);
    assert!(
        analysis.report().is_empty(),
        "deadline silences GBJ405:\n{}",
        analysis.report().render_text()
    );

    // So does any real ResourceLimits budget.
    let bounded = ExecOptions {
        limits: ResourceLimits {
            max_rows: Some(1_000_000),
            ..ResourceLimits::default()
        },
        ..ExecOptions::default()
    };
    let mut analysis = Analysis::new("corpus/unguarded_execution.sql");
    analysis.check_execution(&report.plan, &bounded, Some(&profile), false);
    assert!(
        analysis.report().is_empty(),
        "a row budget silences GBJ405:\n{}",
        analysis.report().render_text()
    );
}
