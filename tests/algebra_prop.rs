//! Property-based tests for the formal machinery underneath the
//! transformation: predicate normal forms preserve three-valued
//! semantics on NULL-bearing rows, `GroupKey` is a lawful hash key
//! under `=ⁿ`, and FD closures satisfy the closure laws the TestFD
//! proof relies on.
//!
//! Offline build note: proptest is unavailable, so inputs are drawn
//! from the local deterministic `rand` shim in seeded loops.

use std::collections::BTreeSet;
use std::collections::HashMap;

use gbj::expr::{from_cnf, to_cnf, to_dnf, to_nnf, BinaryOp, Expr};
use gbj::fd::{Fd, FdSet};
use gbj::types::{ColumnRef, DataType, Field, GroupKey, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("a", DataType::Int64, true),
        Field::new("b", DataType::Int64, true),
        Field::new("c", DataType::Int64, true),
    ])
}

/// Random predicate trees over columns a/b/c with comparisons, logical
/// connectives, NOT and IS NULL, bounded in depth.
fn random_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        let col = ["a", "b", "c"][rng.gen_range(0usize..3)];
        let k = rng.gen_range(-2i64..3);
        let op = [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ][rng.gen_range(0usize..6)];
        return Expr::bare(col).binary(op, Expr::lit(k));
    }
    match rng.gen_range(0u8..4) {
        0 => random_expr(rng, depth - 1).and(random_expr(rng, depth - 1)),
        1 => random_expr(rng, depth - 1).or(random_expr(rng, depth - 1)),
        2 => Expr::Not(Box::new(random_expr(rng, depth - 1))),
        _ => Expr::IsNull {
            expr: Box::new(Expr::bare("a")),
            negated: rng.gen_bool(0.5),
        },
    }
}

fn random_row(rng: &mut StdRng) -> Vec<Value> {
    (0..3)
        .map(|_| {
            if rng.gen_bool(0.7) {
                Value::Int(rng.gen_range(-2i64..3))
            } else {
                Value::Null
            }
        })
        .collect()
}

const CASES: usize = 256;

/// NNF conversion preserves three-valued semantics.
#[test]
fn nnf_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xa1_0001);
    for case in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let row = random_row(&mut rng);
        let s = schema();
        let n = to_nnf(&e);
        assert_eq!(
            e.eval_truth(&row, &s).unwrap(),
            n.eval_truth(&row, &s).unwrap(),
            "case {case}: expr {e} vs nnf {n}"
        );
    }
}

/// CNF round trip preserves semantics (when within the clause cap).
#[test]
fn cnf_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xa1_0002);
    for case in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let row = random_row(&mut rng);
        let s = schema();
        if let Ok(clauses) = to_cnf(&e) {
            let back = from_cnf(&clauses).expect("non-empty");
            assert_eq!(
                e.eval_truth(&row, &s).unwrap(),
                back.eval_truth(&row, &s).unwrap(),
                "case {case}: {e}"
            );
        }
    }
}

/// DNF terms, reassembled as a disjunction of conjunctions, are
/// semantically equal to the original.
#[test]
fn dnf_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xa1_0003);
    for case in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let row = random_row(&mut rng);
        let s = schema();
        if let Ok(terms) = to_dnf(&e) {
            let back = terms
                .into_iter()
                .filter_map(Expr::conjunction)
                .reduce(Expr::or)
                .expect("non-empty");
            assert_eq!(
                e.eval_truth(&row, &s).unwrap(),
                back.eval_truth(&row, &s).unwrap(),
                "case {case}: {e}"
            );
        }
    }
}

/// Double negation is the identity under three-valued evaluation.
#[test]
fn double_negation() {
    let mut rng = StdRng::seed_from_u64(0xa1_0004);
    for case in 0..CASES {
        let e = random_expr(&mut rng, 4);
        let row = random_row(&mut rng);
        let s = schema();
        let nn = Expr::Not(Box::new(Expr::Not(Box::new(e.clone()))));
        assert_eq!(
            e.eval_truth(&row, &s).unwrap(),
            nn.eval_truth(&row, &s).unwrap(),
            "case {case}: {e}"
        );
    }
}

fn random_opt_vec(rng: &mut StdRng, len_range: std::ops::Range<usize>) -> Vec<Option<i64>> {
    let len = rng.gen_range(len_range);
    (0..len)
        .map(|_| rng.gen_bool(0.7).then(|| rng.gen_range(-3i64..4)))
        .collect()
}

/// GroupKey: equality is reflexive/symmetric and consistent with
/// hashing (equal keys land in the same bucket).
#[test]
fn group_key_laws() {
    let mut rng = StdRng::seed_from_u64(0xa1_0005);
    for case in 0..CASES {
        let xs = random_opt_vec(&mut rng, 1..4);
        let ys = random_opt_vec(&mut rng, 1..4);
        let to_key = |v: &Vec<Option<i64>>| {
            GroupKey(
                v.iter()
                    .map(|o| o.map_or(Value::Null, Value::Int))
                    .collect(),
            )
        };
        let kx = to_key(&xs);
        let ky = to_key(&ys);
        assert_eq!(&kx, &kx, "case {case}: reflexivity");
        assert_eq!(kx == ky, ky == kx, "case {case}: symmetry");
        let mut m: HashMap<GroupKey, usize> = HashMap::new();
        m.insert(kx.clone(), 1);
        if kx == ky {
            assert!(m.contains_key(&ky), "case {case}: Eq implies same bucket");
        }
        // Int/Float coercion consistency.
        let fx = GroupKey(
            xs.iter()
                .map(|o| o.map_or(Value::Null, |i| Value::Float(i as f64)))
                .collect(),
        );
        assert_eq!(&kx, &fx, "case {case}");
        assert!(m.contains_key(&fx), "case {case}");
    }
}

fn random_col_set(rng: &mut StdRng, len_range: std::ops::Range<usize>) -> BTreeSet<u8> {
    let len = rng.gen_range(len_range);
    let mut s = BTreeSet::new();
    for _ in 0..len {
        s.insert(rng.gen_range(0u8..6));
    }
    s
}

/// FD closures: extensive (S ⊆ S⁺), monotone, idempotent.
#[test]
fn closure_laws() {
    let mut rng = StdRng::seed_from_u64(0xa1_0006);
    for case in 0..CASES {
        let n_fds = rng.gen_range(0usize..6);
        let fd_spec: Vec<(BTreeSet<u8>, BTreeSet<u8>)> = (0..n_fds)
            .map(|_| {
                (
                    random_col_set(&mut rng, 1..3),
                    random_col_set(&mut rng, 1..3),
                )
            })
            .collect();
        let seed = random_col_set(&mut rng, 0..4);
        let extra = random_col_set(&mut rng, 0..3);

        let col = |i: &u8| ColumnRef::qualified("T", format!("c{i}"));
        let mut fds = FdSet::new();
        for (lhs, rhs) in &fd_spec {
            if lhs.is_empty() || rhs.is_empty() {
                continue;
            }
            fds.add(Fd::new(lhs.iter().map(col), rhs.iter().map(col), "prop"));
        }
        let seed_cols: BTreeSet<ColumnRef> = seed.iter().map(col).collect();
        let closure = fds.closure(&seed_cols);
        // Extensive.
        assert!(seed_cols.is_subset(&closure), "case {case}");
        // Idempotent.
        assert_eq!(&fds.closure(&closure), &closure, "case {case}");
        // Monotone: a superset seed has a superset closure.
        let mut bigger = seed_cols.clone();
        bigger.extend(extra.iter().map(col));
        let bigger_closure = fds.closure(&bigger);
        assert!(closure.is_subset(&bigger_closure), "case {case}");
        // implies() is consistent with the closure.
        for c in &closure {
            assert!(
                fds.implies(&seed_cols, &[c.clone()].into_iter().collect()),
                "case {case}"
            );
        }
    }
}

/// Value::total_cmp is a total order (antisymmetric + transitive on
/// the sampled values), as the sort operators require.
#[test]
fn total_cmp_is_a_total_order() {
    let mut rng = StdRng::seed_from_u64(0xa1_0007);
    for case in 0..CASES {
        let len = rng.gen_range(3usize..6);
        let vals: Vec<Value> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    Value::Int(rng.gen_range(-5i64..6))
                } else {
                    Value::Null
                }
            })
            .collect();
        for a in &vals {
            assert_eq!(a.total_cmp(a), std::cmp::Ordering::Equal, "case {case}");
            for b in &vals {
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse(), "case {case}");
                for c in &vals {
                    if a.total_cmp(b) != std::cmp::Ordering::Greater
                        && b.total_cmp(c) != std::cmp::Ordering::Greater
                    {
                        assert_ne!(
                            a.total_cmp(c),
                            std::cmp::Ordering::Greater,
                            "case {case}: transitivity"
                        );
                    }
                }
            }
        }
    }
}
