#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]
#![warn(missing_docs)]

//! # gbj-expr
//!
//! Scalar expressions, predicates and aggregate functions for the `gbj`
//! engine.
//!
//! The pieces the paper needs:
//!
//! * [`Expr`] — the scalar expression tree, evaluated under SQL2's
//!   three-valued logic ([`Expr::eval_truth`]); column references are
//!   name-based and resolved against a
//!   [`Schema`](gbj_types::Schema) at evaluation/bind time.
//! * [`BoundExpr`] — the same tree with column references compiled to
//!   row ordinals, for fast repeated evaluation in the executor.
//! * [`normalize`] — CNF/DNF conversion used by the `TestFD` algorithm
//!   (Section 6.3, steps 1 and 3).
//! * [`classify`] — splitting a WHERE clause into the paper's
//!   `C1 ∧ C0 ∧ C2` (by table support) and recognising the Type-1
//!   (`column = constant`) and Type-2 (`column = column`) equality atoms
//!   TestFD consumes.
//! * [`aggregate`] — `COUNT / SUM / MIN / MAX / AVG` with SQL NULL
//!   semantics and `DISTINCT` support.

pub mod aggregate;
pub mod classify;
pub mod expr;
pub mod normalize;

pub use aggregate::{Accumulator, AggregateCall, AggregateFunction};
pub use classify::{classify_conjuncts, AtomClass, PredicateParts};
pub use expr::{
    compare_values, ordering_truth, truth_to_value, value_to_truth, BinaryOp, BoundExpr, Expr,
};
pub use normalize::{conjuncts, disjuncts, from_cnf, to_cnf, to_dnf, to_nnf};
