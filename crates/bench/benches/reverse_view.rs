//! Section 8 / Example 5: the aggregated-view query in its written
//! (materialise-view-then-join) form vs the unfolded
//! (join-then-group-by) form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbj_datagen::PrinterConfig;
use gbj_engine::PushdownPolicy;

fn bench(c: &mut Criterion) {
    let cfg = PrinterConfig::default();
    let mut db = cfg.build().expect("build");
    let sql = cfg.example5_query();

    let mut group = c.benchmark_group("reverse_view");
    group.sample_size(20);
    for (policy, name) in [
        (PushdownPolicy::Always, "written_view_form"),
        (PushdownPolicy::Never, "unfolded_form"),
        (PushdownPolicy::CostBased, "cost_based"),
    ] {
        db.options_mut().policy = policy;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| db.query(sql).expect("query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
