//! Recursive-descent parser.

use gbj_expr::BinaryOp;
use gbj_types::{DataType, Error, Result, Value};

use crate::ast::{
    AstExpr, ColumnDefAst, SelectItemAst, SelectStmt, Statement, TableConstraintAst, TableRef,
    TypeRef,
};
use crate::lexer::{tokenize, Token, TokenKind};

/// Identifiers that terminate an implicit table alias.
const RESERVED_AFTER_TABLE: &[&str] = &[
    "WHERE", "GROUP", "HAVING", "ORDER", "UNION", "ON", "INNER", "LEFT", "RIGHT", "JOIN", "AS",
    "SELECT", "FROM", "LIMIT",
];

/// Parse a source string into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        src: sql,
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.peek_kind() == &TokenKind::Eof {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_sql(sql: &str) -> Result<Statement> {
    let stmts = parse_statements(sql)?;
    let n = stmts.len();
    match (n, stmts.into_iter().next()) {
        (1, Some(stmt)) => Ok(stmt),
        _ => Err(Error::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Maximum recursion depth across nested expressions and statements.
/// Recursive-descent parsing consumes native stack per nesting level,
/// so unbounded `((((…))))` or `NOT NOT …` input would overflow the
/// stack; beyond this depth the parser returns `Error::Parse` instead.
const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        // The token stream always ends with Eof (see `tokenize`), so
        // clamp to the last token instead of running off the end.
        static EOF: Token = Token {
            kind: TokenKind::Eof,
            start: 0,
            end: 0,
        };
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .unwrap_or(&EOF)
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_kind().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw}")))
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Enter one recursion level; errors out past [`MAX_DEPTH`]. Every
    /// self-recursive production calls this (paired with
    /// [`Parser::leave`]) so pathological nesting is a parse error,
    /// never a stack overflow.
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::Parse(format!(
                "nesting exceeds the maximum depth of {MAX_DEPTH} at byte {}",
                self.peek().start
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    fn unexpected(&self, what: &str) -> Error {
        Error::Parse(format!(
            "expected {what}, found {:?} at byte {}",
            self.peek_kind(),
            self.peek().start
        ))
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        self.enter()?;
        let out = self.statement_inner();
        self.leave();
        out
    }

    fn statement_inner(&mut self) -> Result<Statement> {
        if self.peek_kind().is_keyword("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_keyword("EXPLAIN") {
            let mut analyze = self.eat_keyword("ANALYZE");
            let mut lint = false;
            // `EXPLAIN (LINT)` / `EXPLAIN (ANALYZE, LINT)` option list.
            if self.eat_kind(&TokenKind::LParen) {
                loop {
                    if self.eat_keyword("LINT") {
                        lint = true;
                    } else if self.eat_keyword("ANALYZE") {
                        analyze = true;
                    } else {
                        return Err(self.unexpected("LINT or ANALYZE"));
                    }
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(&TokenKind::RParen, ")")?;
            }
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                analyze,
                lint,
                statement: Box::new(inner),
            });
        }
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("TABLE") {
                return self.create_table();
            }
            if self.eat_keyword("DOMAIN") {
                return self.create_domain();
            }
            if self.eat_keyword("VIEW") {
                return self.create_view();
            }
            if self.eat_keyword("ASSERTION") {
                let name = self.expect_ident("assertion name")?;
                self.expect_keyword("CHECK")?;
                let check = self.paren_or_bare_expr()?;
                return Ok(Statement::CreateAssertion { name, check });
            }
            return Err(self.unexpected("TABLE, DOMAIN, VIEW or ASSERTION"));
        }
        if self.eat_keyword("INSERT") {
            self.expect_keyword("INTO")?;
            let table = self.expect_ident("table name")?;
            self.expect_keyword("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_kind(&TokenKind::LParen, "(")?;
                let mut row = Vec::new();
                if self.peek_kind() != &TokenKind::RParen {
                    loop {
                        row.push(self.expr()?);
                        if !self.eat_kind(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect_kind(&TokenKind::RParen, ")")?;
                rows.push(row);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_keyword("DELETE") {
            self.expect_keyword("FROM")?;
            let table = self.expect_ident("table name")?;
            let predicate = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_keyword("UPDATE") {
            let table = self.expect_ident("table name")?;
            self.expect_keyword("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.expect_ident("column name")?;
                self.expect_kind(&TokenKind::Eq, "=")?;
                let value = self.expr()?;
                assignments.push((col, value));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                predicate,
            });
        }
        if self.eat_keyword("DROP") {
            if self.eat_keyword("TABLE") {
                return Ok(Statement::DropTable(self.expect_ident("table name")?));
            }
            if self.eat_keyword("VIEW") {
                return Ok(Statement::DropView(self.expect_ident("view name")?));
            }
            return Err(self.unexpected("TABLE or VIEW"));
        }
        Err(self.unexpected("a statement"))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.eat_keyword("DISTINCT") {
            true
        } else {
            let _ = self.eat_keyword("ALL");
            false
        };
        let mut items = Vec::new();
        loop {
            if self.eat_kind(&TokenKind::Star) {
                items.push(SelectItemAst::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = self.optional_alias()?;
                items.push(SelectItemAst::Expr { expr, alias });
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let name = self.expect_ident("table name")?;
            let alias = self.optional_alias()?;
            from.push(TableRef { name, alias });
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.qualified_name()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let name = self.qualified_name()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    let _ = self.eat_keyword("ASC");
                    true
                };
                order_by.push((name, asc));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.expect_ident("alias")?));
        }
        if let TokenKind::Ident(s) = self.peek_kind() {
            if !RESERVED_AFTER_TABLE
                .iter()
                .any(|kw| s.eq_ignore_ascii_case(kw))
            {
                let s = s.clone();
                self.advance();
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn qualified_name(&mut self) -> Result<Vec<String>> {
        let mut parts = vec![self.expect_ident("name")?];
        while self.eat_kind(&TokenKind::Dot) {
            parts.push(self.expect_ident("name part")?);
        }
        Ok(parts)
    }

    // ----------------------------------------------------------------- DDL

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.expect_ident("table name")?;
        self.expect_kind(&TokenKind::LParen, "(")?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.peek_kind().is_keyword("PRIMARY") {
                self.advance();
                self.expect_keyword("KEY")?;
                constraints.push(TableConstraintAst::PrimaryKey(self.column_list()?));
            } else if self.peek_kind().is_keyword("UNIQUE") {
                self.advance();
                constraints.push(TableConstraintAst::Unique(self.column_list()?));
            } else if self.peek_kind().is_keyword("CHECK") {
                self.advance();
                constraints.push(TableConstraintAst::Check(self.paren_or_bare_expr()?));
            } else if self.peek_kind().is_keyword("FOREIGN") {
                self.advance();
                self.expect_keyword("KEY")?;
                let columns = self.column_list()?;
                self.expect_keyword("REFERENCES")?;
                let ref_table = self.expect_ident("referenced table")?;
                let ref_columns = if self.peek_kind() == &TokenKind::LParen {
                    self.column_list()?
                } else {
                    vec![]
                };
                constraints.push(TableConstraintAst::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                });
            } else if self.peek_kind().is_keyword("CONSTRAINT") {
                self.advance();
                let _name = self.expect_ident("constraint name")?;
                self.expect_keyword("CHECK")?;
                constraints.push(TableConstraintAst::Check(self.paren_or_bare_expr()?));
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen, ")")?;
        Ok(Statement::CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn column_list(&mut self) -> Result<Vec<String>> {
        self.expect_kind(&TokenKind::LParen, "(")?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.expect_ident("column name")?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen, ")")?;
        Ok(cols)
    }

    fn column_def(&mut self) -> Result<ColumnDefAst> {
        let name = self.expect_ident("column name")?;
        let data_type = self.type_ref()?;
        let mut def = ColumnDefAst {
            name,
            data_type,
            not_null: false,
            primary_key: false,
            unique: false,
            checks: vec![],
            references: None,
        };
        loop {
            if self.eat_keyword("NOT") {
                self.expect_keyword("NULL")?;
                def.not_null = true;
            } else if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                def.primary_key = true;
            } else if self.eat_keyword("UNIQUE") {
                def.unique = true;
            } else if self.eat_keyword("CHECK") {
                def.checks.push(self.paren_or_bare_expr()?);
            } else if self.eat_keyword("REFERENCES") {
                let ref_table = self.expect_ident("referenced table")?;
                let ref_columns = if self.peek_kind() == &TokenKind::LParen {
                    self.column_list()?
                } else {
                    vec![]
                };
                def.references = Some((ref_table, ref_columns));
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn type_ref(&mut self) -> Result<TypeRef> {
        let name = self.expect_ident("type name")?;
        let upper = name.to_ascii_uppercase();
        let builtin = match upper.as_str() {
            "INT" | "INTEGER" | "SMALLINT" | "BIGINT" => Some(DataType::Int64),
            "FLOAT" | "REAL" => Some(DataType::Float64),
            "DOUBLE" => {
                let _ = self.eat_keyword("PRECISION");
                Some(DataType::Float64)
            }
            "BOOLEAN" | "BOOL" => Some(DataType::Boolean),
            "CHAR" | "CHARACTER" | "VARCHAR" | "TEXT" => {
                // Optional length.
                if self.eat_kind(&TokenKind::LParen) {
                    match self.peek_kind() {
                        TokenKind::Int(_) => {
                            self.advance();
                        }
                        _ => return Err(self.unexpected("a length")),
                    }
                    self.expect_kind(&TokenKind::RParen, ")")?;
                }
                Some(DataType::Utf8)
            }
            _ => None,
        };
        Ok(match builtin {
            Some(t) => TypeRef::Builtin(t),
            None => TypeRef::Domain(name),
        })
    }

    fn create_domain(&mut self) -> Result<Statement> {
        let name = self.expect_ident("domain name")?;
        let data_type = match self.type_ref()? {
            TypeRef::Builtin(t) => t,
            TypeRef::Domain(d) => {
                return Err(Error::Parse(format!(
                    "domain {name} must use a built-in type, found {d}"
                )))
            }
        };
        let check = if self.eat_keyword("CHECK") {
            Some(self.paren_or_bare_expr()?)
        } else {
            None
        };
        Ok(Statement::CreateDomain {
            name,
            data_type,
            check,
        })
    }

    fn create_view(&mut self) -> Result<Statement> {
        let name = self.expect_ident("view name")?;
        let columns = if self.peek_kind() == &TokenKind::LParen {
            self.column_list()?
        } else {
            vec![]
        };
        self.expect_keyword("AS")?;
        // Capture the raw query text: from here to the statement end.
        let start = self.peek().start;
        let mut depth = 0usize;
        let mut end = start;
        while !matches!(self.peek_kind(), TokenKind::Eof)
            && (depth != 0 || self.peek_kind() != &TokenKind::Semicolon)
        {
            match self.peek_kind() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => depth = depth.saturating_sub(1),
                _ => {}
            }
            end = self.peek().end;
            self.advance();
        }
        let query_sql = self.src[start..end].trim().to_string();
        if query_sql.is_empty() {
            return Err(Error::Parse(format!("view {name} has an empty body")));
        }
        Ok(Statement::CreateView {
            name,
            columns,
            query_sql,
        })
    }

    /// `CHECK (expr)` or, as in the paper's Figure 5 domain example,
    /// `CHECK VALUE > 0 AND VALUE < 100` without parentheses.
    fn paren_or_bare_expr(&mut self) -> Result<AstExpr> {
        self.expr()
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<AstExpr> {
        self.enter()?;
        let out = self.or_expr();
        self.leave();
        out
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_keyword("NOT") {
            self.enter()?;
            let inner = self.not_expr();
            self.leave();
            return Ok(AstExpr::Not(Box::new(inner?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL postfix.
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(AstExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat_kind(&TokenKind::Minus) {
            self.enter()?;
            let inner = self.unary();
            self.leave();
            return Ok(AstExpr::Neg(Box::new(inner?)));
        }
        if self.eat_kind(&TokenKind::Plus) {
            self.enter()?;
            let inner = self.unary();
            self.leave();
            return inner;
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(AstExpr::Literal(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(AstExpr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(AstExpr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(AstExpr::Literal(Value::Bool(false)));
                }
                self.advance();
                // Function call?
                if self.peek_kind() == &TokenKind::LParen {
                    self.advance();
                    let distinct = self.eat_keyword("DISTINCT");
                    if self.eat_kind(&TokenKind::Star) {
                        self.expect_kind(&TokenKind::RParen, ")")?;
                        return Ok(AstExpr::Func {
                            name,
                            distinct,
                            star: true,
                            args: vec![],
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek_kind() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_kind(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_kind(&TokenKind::RParen, ")")?;
                    return Ok(AstExpr::Func {
                        name,
                        distinct,
                        star: false,
                        args,
                    });
                }
                // Qualified name.
                let mut parts = vec![name];
                while self.eat_kind(&TokenKind::Dot) {
                    parts.push(self.expect_ident("name part")?);
                }
                Ok(AstExpr::Name(parts))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SelectItemAst;

    #[test]
    fn parses_example1_query() {
        let stmt = parse_sql(
            "SELECT D.DeptID, D.Name, COUNT(E.EmpID) \
             FROM Employee E, Department D \
             WHERE E.DeptID = D.DeptID \
             GROUP BY D.DeptID, D.Name",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(!s.distinct);
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("E"));
        assert!(s.where_clause.is_some());
        assert_eq!(
            s.group_by,
            vec![
                vec!["D".to_string(), "DeptID".to_string()],
                vec!["D".to_string(), "Name".to_string()]
            ]
        );
    }

    #[test]
    fn parses_aggregates_with_distinct_and_star() {
        let Statement::Select(s) =
            parse_sql("SELECT COUNT(*), COUNT(DISTINCT x), SUM(a + b) FROM t").unwrap()
        else {
            panic!()
        };
        let SelectItemAst::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(
            *expr,
            AstExpr::Func {
                name: "COUNT".into(),
                distinct: false,
                star: true,
                args: vec![]
            }
        );
        let SelectItemAst::Expr { expr, .. } = &s.items[1] else {
            panic!()
        };
        assert!(matches!(expr, AstExpr::Func { distinct: true, .. }));
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(s) =
            parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap()
        else {
            panic!()
        };
        // OR binds loosest: (a=1) OR ((b=2) AND (c=3)).
        let AstExpr::Binary { op, right, .. } = s.where_clause.unwrap() else {
            panic!()
        };
        assert_eq!(op, BinaryOp::Or);
        assert!(matches!(
            *right,
            AstExpr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn arithmetic_precedence() {
        let Statement::Select(s) = parse_sql("SELECT * FROM t WHERE a + b * 2 = 7").unwrap() else {
            panic!()
        };
        let AstExpr::Binary { left, .. } = s.where_clause.unwrap() else {
            panic!()
        };
        // a + (b * 2)
        let AstExpr::Binary { op, right, .. } = *left else {
            panic!()
        };
        assert_eq!(op, BinaryOp::Add);
        assert!(matches!(
            *right,
            AstExpr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn is_null_and_not() {
        let Statement::Select(s) =
            parse_sql("SELECT * FROM t WHERE x IS NOT NULL AND NOT y IS NULL").unwrap()
        else {
            panic!()
        };
        let w = s.where_clause.unwrap();
        let AstExpr::Binary { left, right, .. } = w else {
            panic!()
        };
        assert!(matches!(*left, AstExpr::IsNull { negated: true, .. }));
        assert!(matches!(*right, AstExpr::Not(_)));
    }

    #[test]
    fn parses_figure5_create_table() {
        let stmt = parse_sql(
            "CREATE TABLE Employee ( \
               EmpID INTEGER CHECK (EmpID > 0), \
               EmpSID INTEGER UNIQUE, \
               LastName CHARACTER(30) NOT NULL, \
               FirstName CHARACTER(30), \
               DeptID DepIdType CHECK (DeptID > 5), \
               PRIMARY KEY (EmpID), \
               FOREIGN KEY (DeptID) REFERENCES Dept)",
        )
        .unwrap();
        let Statement::CreateTable {
            name,
            columns,
            constraints,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(name, "Employee");
        assert_eq!(columns.len(), 5);
        assert!(columns[2].not_null);
        assert!(columns[1].unique);
        assert_eq!(columns[4].data_type, TypeRef::Domain("DepIdType".into()));
        assert_eq!(columns[0].checks.len(), 1);
        assert_eq!(constraints.len(), 2);
        assert!(matches!(
            &constraints[1],
            TableConstraintAst::ForeignKey { ref_table, .. } if ref_table == "Dept"
        ));
    }

    #[test]
    fn parses_figure5_create_domain_without_parens() {
        let stmt =
            parse_sql("CREATE DOMAIN DepIdType SMALLINT CHECK VALUE > 0 AND VALUE < 100").unwrap();
        let Statement::CreateDomain {
            name,
            data_type,
            check,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(name, "DepIdType");
        assert_eq!(data_type, DataType::Int64);
        assert!(matches!(
            check.unwrap(),
            AstExpr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_create_view_capturing_raw_text() {
        let stmt = parse_sql(
            "CREATE VIEW UserInfo (UserId, Machine, TotUsage) AS \
             SELECT A.UserId, A.Machine, SUM(A.Usage) \
             FROM PrinterAuth A GROUP BY A.UserId, A.Machine",
        )
        .unwrap();
        let Statement::CreateView {
            name,
            columns,
            query_sql,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(name, "UserInfo");
        assert_eq!(columns, vec!["UserId", "Machine", "TotUsage"]);
        assert!(query_sql.starts_with("SELECT"));
        assert!(query_sql.ends_with("A.Machine"));
        // The captured text must itself parse.
        assert!(matches!(
            parse_sql(&query_sql).unwrap(),
            Statement::Select(_)
        ));
    }

    #[test]
    fn parses_insert_with_multiple_rows_and_negatives() {
        let stmt = parse_sql("INSERT INTO t VALUES (1, 'a', NULL), (-2, 'b', 3.5)").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], AstExpr::Literal(Value::Null));
        assert!(matches!(rows[1][0], AstExpr::Neg(_)));
    }

    #[test]
    fn parses_explain_and_drop() {
        assert!(matches!(
            parse_sql("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse_sql("EXPLAIN ANALYZE SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        assert!(matches!(
            parse_sql("EXPLAIN (LINT) SELECT * FROM t").unwrap(),
            Statement::Explain {
                analyze: false,
                lint: true,
                ..
            }
        ));
        assert!(matches!(
            parse_sql("EXPLAIN (ANALYZE, LINT) SELECT * FROM t").unwrap(),
            Statement::Explain {
                analyze: true,
                lint: true,
                ..
            }
        ));
        assert!(parse_sql("EXPLAIN (VERBOSE) SELECT * FROM t").is_err());
        assert_eq!(
            parse_sql("DROP TABLE t").unwrap(),
            Statement::DropTable("t".into())
        );
        assert_eq!(
            parse_sql("DROP VIEW v").unwrap(),
            Statement::DropView("v".into())
        );
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts =
            parse_statements("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parses_having_and_order_by() {
        let Statement::Select(s) = parse_sql(
            "SELECT d, COUNT(*) FROM t GROUP BY d HAVING COUNT(*) > 5 ORDER BY d DESC, e",
        )
        .unwrap() else {
            panic!()
        };
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1, "DESC");
        assert!(s.order_by[1].1, "default ASC");
    }

    #[test]
    fn parses_distinct_select() {
        let Statement::Select(s) = parse_sql("SELECT DISTINCT a FROM t").unwrap() else {
            panic!()
        };
        assert!(s.distinct);
        let Statement::Select(s) = parse_sql("SELECT ALL a FROM t").unwrap() else {
            panic!()
        };
        assert!(!s.distinct);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_sql("SELECT FROM t").is_err());
        assert!(parse_sql("SELECT * FROM").is_err());
        assert!(parse_sql("CREATE NONSENSE x").is_err());
        assert!(parse_sql("SELECT * FROM t; SELECT * FROM u").is_err()); // parse_sql wants one
        assert!(parse_sql("").is_err());
        assert!(parse_sql("INSERT INTO t VALUES 1").is_err());
    }

    #[test]
    fn parses_delete_and_update() {
        let stmt = parse_sql("DELETE FROM t WHERE x = 1").unwrap();
        let Statement::Delete { table, predicate } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert!(predicate.is_some());
        let stmt = parse_sql("DELETE FROM t").unwrap();
        assert!(matches!(
            stmt,
            Statement::Delete {
                predicate: None,
                ..
            }
        ));

        let stmt = parse_sql("UPDATE t SET a = a + 1, b = 'x' WHERE c IS NULL").unwrap();
        let Statement::Update {
            table,
            assignments,
            predicate,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[1].0, "b");
        assert!(predicate.is_some());
        assert!(parse_sql("UPDATE t SET").is_err());
        assert!(parse_sql("DELETE t").is_err());
    }

    #[test]
    fn parses_create_assertion() {
        let stmt = parse_sql("CREATE ASSERTION positive CHECK (Employee.EmpID > 0)").unwrap();
        let Statement::CreateAssertion { name, .. } = stmt else {
            panic!()
        };
        assert_eq!(name, "positive");
    }

    #[test]
    fn keywords_do_not_become_aliases() {
        let Statement::Select(s) = parse_sql("SELECT * FROM t WHERE x = 1").unwrap() else {
            panic!()
        };
        assert_eq!(s.from[0].alias, None);
    }
}
