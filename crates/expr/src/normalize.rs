//! Predicate normal forms: NNF, CNF and DNF.
//!
//! The `TestFD` algorithm (paper Section 6.3) needs the WHERE clause and
//! constraint conjunction in *conjunctive* normal form (step 1), and —
//! after non-equality conjuncts are dropped — in *disjunctive* normal
//! form (step 3). De Morgan's laws and distributivity hold in SQL2's
//! three-valued logic (verified by exhaustive tests in `gbj-types`), so
//! the classical rewriting is semantics-preserving here too.

use gbj_types::{Error, Result};

use crate::expr::{BinaryOp, Expr};

/// Upper bound on the number of clauses a normal-form conversion may
/// produce before we give up. Distribution is worst-case exponential;
/// TestFD simply answers NO (conservatively) when a predicate is too
/// irregular to normalise, so a modest cap is safe.
pub const MAX_CLAUSES: usize = 4096;

/// Split an expression into its top-level conjuncts (`AND` operands).
#[must_use]
pub fn conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect(expr, BinaryOp::And, &mut out);
    out
}

/// Split an expression into its top-level disjuncts (`OR` operands).
#[must_use]
pub fn disjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect(expr, BinaryOp::Or, &mut out);
    out
}

fn collect(expr: &Expr, op: BinaryOp, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: eop,
            right,
        } if *eop == op => {
            collect(left, op, out);
            collect(right, op, out);
        }
        other => out.push(other.clone()),
    }
}

/// Push `NOT` down to the atoms (negation normal form).
///
/// `NOT` over comparisons is folded into the complementary comparison
/// operator — valid in three-valued logic because both sides are
/// `unknown` exactly when an operand is NULL.
#[must_use]
pub fn to_nnf(expr: &Expr) -> Expr {
    nnf(expr, false)
}

fn nnf(expr: &Expr, negate: bool) -> Expr {
    match expr {
        Expr::Not(inner) => nnf(inner, !negate),
        Expr::Binary { left, op, right } if op.is_logical() => {
            let new_op = match (op, negate) {
                (BinaryOp::And, false) | (BinaryOp::Or, true) => BinaryOp::And,
                _ => BinaryOp::Or,
            };
            Expr::Binary {
                left: Box::new(nnf(left, negate)),
                op: new_op,
                right: Box::new(nnf(right, negate)),
            }
        }
        Expr::Binary { left, op, right } if op.is_comparison() && negate => Expr::Binary {
            left: left.clone(),
            op: complement(*op),
            right: right.clone(),
        },
        Expr::IsNull {
            expr: inner,
            negated,
        } if negate => Expr::IsNull {
            expr: inner.clone(),
            negated: !negated,
        },
        other => {
            if negate {
                Expr::Not(Box::new(other.clone()))
            } else {
                other.clone()
            }
        }
    }
}

fn complement(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Eq => BinaryOp::NotEq,
        BinaryOp::NotEq => BinaryOp::Eq,
        BinaryOp::Lt => BinaryOp::GtEq,
        BinaryOp::GtEq => BinaryOp::Lt,
        BinaryOp::Gt => BinaryOp::LtEq,
        BinaryOp::LtEq => BinaryOp::Gt,
        other => other,
    }
}

/// Convert to conjunctive normal form: a list of clauses, each clause a
/// list of atoms understood as a disjunction. Errors if the result would
/// exceed [`MAX_CLAUSES`].
pub fn to_cnf(expr: &Expr) -> Result<Vec<Vec<Expr>>> {
    let nnf = to_nnf(expr);
    cnf(&nnf)
}

fn cnf(expr: &Expr) -> Result<Vec<Vec<Expr>>> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut l = cnf(left)?;
            let r = cnf(right)?;
            l.extend(r);
            check_size(l.len())?;
            Ok(l)
        }
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            // (A1∧…∧Am) ∨ (B1∧…∧Bn)  →  ∧_{i,j} (Ai ∨ Bj)
            let l = cnf(left)?;
            let r = cnf(right)?;
            check_size(l.len().saturating_mul(r.len()))?;
            let mut out = Vec::with_capacity(l.len() * r.len());
            for lc in &l {
                for rc in &r {
                    let mut clause = lc.clone();
                    clause.extend(rc.iter().cloned());
                    out.push(clause);
                }
            }
            Ok(out)
        }
        atom => Ok(vec![vec![atom.clone()]]),
    }
}

/// Convert to disjunctive normal form: a list of disjuncts, each a list
/// of atoms understood as a conjunction. Errors if the result would
/// exceed [`MAX_CLAUSES`].
pub fn to_dnf(expr: &Expr) -> Result<Vec<Vec<Expr>>> {
    let nnf = to_nnf(expr);
    dnf(&nnf)
}

fn dnf(expr: &Expr) -> Result<Vec<Vec<Expr>>> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let mut l = dnf(left)?;
            let r = dnf(right)?;
            l.extend(r);
            check_size(l.len())?;
            Ok(l)
        }
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let l = dnf(left)?;
            let r = dnf(right)?;
            check_size(l.len().saturating_mul(r.len()))?;
            let mut out = Vec::with_capacity(l.len() * r.len());
            for ld in &l {
                for rd in &r {
                    let mut term = ld.clone();
                    term.extend(rd.iter().cloned());
                    out.push(term);
                }
            }
            Ok(out)
        }
        atom => Ok(vec![vec![atom.clone()]]),
    }
}

fn check_size(n: usize) -> Result<()> {
    if n > MAX_CLAUSES {
        Err(Error::Plan(format!(
            "normal-form conversion exceeded {MAX_CLAUSES} clauses"
        )))
    } else {
        Ok(())
    }
}

/// Rebuild an expression from CNF clause lists (for display/round trips).
#[must_use]
pub fn from_cnf(clauses: &[Vec<Expr>]) -> Option<Expr> {
    Expr::conjunction(
        clauses
            .iter()
            .filter_map(|c| c.iter().cloned().reduce(Expr::or)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::{DataType, Field, Schema, Truth, Value};

    fn a() -> Expr {
        Expr::bare("a").eq(Expr::lit(1i64))
    }
    fn b() -> Expr {
        Expr::bare("b").eq(Expr::lit(2i64))
    }
    fn c() -> Expr {
        Expr::bare("c").eq(Expr::lit(3i64))
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = a().and(b()).and(c());
        let cs = conjuncts(&e);
        assert_eq!(cs, vec![a(), b(), c()]);
        // A single atom is its own conjunct list.
        assert_eq!(conjuncts(&a()), vec![a()]);
    }

    #[test]
    fn disjuncts_flatten_nested_ors() {
        let e = a().or(b()).or(c());
        assert_eq!(disjuncts(&e), vec![a(), b(), c()]);
    }

    #[test]
    fn nnf_pushes_not_through_de_morgan() {
        let e = Expr::Not(Box::new(a().and(b())));
        let n = to_nnf(&e);
        // NOT(a=1 AND b=2) → a<>1 OR b<>2
        let expected = Expr::bare("a")
            .binary(BinaryOp::NotEq, Expr::lit(1i64))
            .or(Expr::bare("b").binary(BinaryOp::NotEq, Expr::lit(2i64)));
        assert_eq!(n, expected);
    }

    #[test]
    fn nnf_double_negation() {
        let e = Expr::Not(Box::new(Expr::Not(Box::new(a()))));
        assert_eq!(to_nnf(&e), a());
    }

    #[test]
    fn nnf_complements_comparisons_and_isnull() {
        let lt = Expr::bare("a").binary(BinaryOp::Lt, Expr::lit(5i64));
        let n = to_nnf(&Expr::Not(Box::new(lt)));
        assert_eq!(n, Expr::bare("a").binary(BinaryOp::GtEq, Expr::lit(5i64)));
        let isnull = Expr::IsNull {
            expr: Box::new(Expr::bare("a")),
            negated: false,
        };
        let n = to_nnf(&Expr::Not(Box::new(isnull)));
        assert_eq!(
            n,
            Expr::IsNull {
                expr: Box::new(Expr::bare("a")),
                negated: true
            }
        );
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        // a ∨ (b ∧ c) → (a ∨ b) ∧ (a ∨ c)
        let e = a().or(b().and(c()));
        let clauses = to_cnf(&e).unwrap();
        assert_eq!(clauses, vec![vec![a(), b()], vec![a(), c()]]);
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // a ∧ (b ∨ c) → (a ∧ b) ∨ (a ∧ c)
        let e = a().and(b().or(c()));
        let terms = to_dnf(&e).unwrap();
        assert_eq!(terms, vec![vec![a(), b()], vec![a(), c()]]);
    }

    #[test]
    fn already_normal_forms_pass_through() {
        let e = a().and(b());
        assert_eq!(to_cnf(&e).unwrap(), vec![vec![a()], vec![b()]]);
        assert_eq!(to_dnf(&e).unwrap(), vec![vec![a(), b()]]);
    }

    #[test]
    fn explosion_is_capped() {
        // Build (a1∧b1) ∨ (a2∧b2) ∨ … — CNF of this grows exponentially.
        let mut e = Expr::bare("x0")
            .eq(Expr::lit(0i64))
            .and(Expr::bare("y0").eq(Expr::lit(0i64)));
        for i in 1..16 {
            let t = Expr::bare(format!("x{i}"))
                .eq(Expr::lit(i as i64))
                .and(Expr::bare(format!("y{i}")).eq(Expr::lit(i as i64)));
            e = e.or(t);
        }
        assert!(to_cnf(&e).is_err());
    }

    #[test]
    fn from_cnf_round_trip_semantics() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
            Field::new("c", DataType::Int64, true),
        ]);
        let e = a().or(b().and(c()));
        let back = from_cnf(&to_cnf(&e).unwrap()).unwrap();
        // Semantically equal on a grid of rows (including NULLs).
        let vals = [Value::Null, Value::Int(1), Value::Int(2), Value::Int(3)];
        for va in &vals {
            for vb in &vals {
                for vc in &vals {
                    let row = vec![va.clone(), vb.clone(), vc.clone()];
                    assert_eq!(
                        e.eval_truth(&row, &s).unwrap(),
                        back.eval_truth(&row, &s).unwrap(),
                        "row {row:?}"
                    );
                }
            }
        }
    }

    /// NNF preserves three-valued semantics on NULL-bearing rows.
    #[test]
    fn nnf_semantics_preserved_with_nulls() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
        ]);
        let exprs = [
            Expr::Not(Box::new(a().and(b()))),
            Expr::Not(Box::new(a().or(b()))),
            Expr::Not(Box::new(
                Expr::bare("a").binary(BinaryOp::Lt, Expr::bare("b")),
            )),
            Expr::Not(Box::new(Expr::Not(Box::new(a())))),
        ];
        let vals = [Value::Null, Value::Int(1), Value::Int(2)];
        for e in &exprs {
            let n = to_nnf(e);
            for va in &vals {
                for vb in &vals {
                    let row = vec![va.clone(), vb.clone()];
                    assert_eq!(
                        e.eval_truth(&row, &s).unwrap(),
                        n.eval_truth(&row, &s).unwrap(),
                        "expr {e} vs nnf {n} on {row:?}"
                    );
                }
            }
        }
        // Spot-check a genuinely unknown case survives conversion.
        let e = Expr::Not(Box::new(a().and(b())));
        let n = to_nnf(&e);
        let row = vec![Value::Null, Value::Int(2)];
        assert_eq!(n.eval_truth(&row, &s).unwrap(), Truth::Unknown);
    }
}
