#!/usr/bin/env bash
# Memory-safety gate: every workspace crate must carry
# `#![forbid(unsafe_code)]` as a crate-level attribute, and no source
# file may contain an `unsafe` block. The forbid attribute is the real
# enforcement (rustc refuses to compile unsafe code under it, and it
# cannot be overridden by an inner allow); the grep below is a
# belt-and-braces check that also catches files added outside a lib
# target and reports offenders without a full compile.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for lib in crates/*/src/lib.rs src/lib.rs; do
  if ! grep -q '^#!\[forbid(unsafe_code)\]' "$lib"; then
    echo "missing #![forbid(unsafe_code)]: $lib" >&2
    fail=1
  fi
done

# `unsafe` as a token (fn/blocks/impls/traits), excluding the forbid
# attribute itself and doc/comment mentions.
if grep -rn --include='*.rs' -E '\bunsafe\b' crates/*/src src tests \
  | grep -v 'forbid(unsafe_code)' \
  | grep -vE '^\S+:[0-9]+:\s*(//|//!|///)'; then
  echo "unsafe code found (see matches above)" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_unsafe: OK"
