//! The Employee / Department workload of Example 1 (Figure 1).

use gbj_engine::Database;
use gbj_types::{Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Example 1 workload.
#[derive(Debug, Clone, Copy)]
pub struct EmpDeptConfig {
    /// Number of employees (paper: 10000).
    pub employees: usize,
    /// Number of departments (paper: 100).
    pub departments: usize,
    /// Fraction of employees with a NULL `DeptID` (exercises the NULL
    /// semantics; the paper's instance has none).
    pub null_dept_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmpDeptConfig {
    fn default() -> EmpDeptConfig {
        EmpDeptConfig {
            employees: 10_000,
            departments: 100,
            null_dept_fraction: 0.0,
            seed: 42,
        }
    }
}

impl EmpDeptConfig {
    /// The paper's exact instance sizes.
    #[must_use]
    pub fn paper() -> EmpDeptConfig {
        EmpDeptConfig::default()
    }

    /// Build and populate the database.
    pub fn build(&self) -> Result<Database> {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE Department ( \
                 DeptID INTEGER PRIMARY KEY, \
                 Name VARCHAR(30) NOT NULL); \
             CREATE TABLE Employee ( \
                 EmpID INTEGER PRIMARY KEY, \
                 LastName VARCHAR(30) NOT NULL, \
                 FirstName VARCHAR(30), \
                 DeptID INTEGER REFERENCES Department);",
        )?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        db.insert_rows(
            "Department",
            (0..self.departments)
                .map(|d| vec![Value::Int(d as i64), Value::str(format!("Department-{d}"))]),
        )?;
        db.insert_rows(
            "Employee",
            (0..self.employees).map(|e| {
                let dept = if rng.gen_bool(self.null_dept_fraction.clamp(0.0, 1.0)) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..self.departments as i64))
                };
                vec![
                    Value::Int(e as i64),
                    Value::str(format!("Last{e}")),
                    Value::str(format!("First{e}")),
                    dept,
                ]
            }),
        )?;
        Ok(db)
    }

    /// The paper's Example 1 query.
    #[must_use]
    pub fn query(&self) -> &'static str {
        "SELECT D.DeptID, D.Name, COUNT(E.EmpID) \
         FROM Employee E, Department D \
         WHERE E.DeptID = D.DeptID \
         GROUP BY D.DeptID, D.Name"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_engine::{PlanChoice, PushdownPolicy};

    fn small() -> EmpDeptConfig {
        EmpDeptConfig {
            employees: 200,
            departments: 10,
            null_dept_fraction: 0.1,
            seed: 7,
        }
    }

    #[test]
    fn builds_with_expected_cardinalities() {
        let cfg = small();
        let db = cfg.build().unwrap();
        assert_eq!(db.storage().table_data("Employee").unwrap().len(), 200);
        assert_eq!(db.storage().table_data("Department").unwrap().len(), 10);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = small();
        let a = cfg.build().unwrap();
        let b = cfg.build().unwrap();
        let qa = a.query(cfg.query()).unwrap();
        let qb = b.query(cfg.query()).unwrap();
        assert!(qa.multiset_eq(&qb));
    }

    #[test]
    fn transformation_applies_and_plans_agree() {
        let cfg = small();
        let mut db = cfg.build().unwrap();
        let report = db.plan_query(cfg.query()).unwrap();
        assert_eq!(report.choice, PlanChoice::Eager);

        db.options_mut().policy = PushdownPolicy::Never;
        let lazy = db.query(cfg.query()).unwrap();
        db.options_mut().policy = PushdownPolicy::Always;
        let eager = db.query(cfg.query()).unwrap();
        assert!(lazy.multiset_eq(&eager));
        // NULL-DeptID employees join nothing, so total counted
        // employees < 200.
        let total: i64 = lazy
            .rows
            .iter()
            .map(|r| match r[2] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        assert!(total < 200 && total > 0);
    }
}
