//! Brute-force verification of a functional dependency on concrete data.
//!
//! Definition 2 of the paper, executably: `A → B` holds in an instance
//! when every pair of rows that agree on `A` under `=ⁿ` also agree on
//! `B` under `=ⁿ`. Used by the property-based tests that validate the
//! Main Theorem against random instances, and available to users who
//! want to audit a `TestFD` answer on real data.

use std::collections::HashMap;

use gbj_types::{GroupKey, Value};

/// Check whether the dependency `lhs → rhs` (given as column ordinals)
/// holds in `rows` under SQL2's `=ⁿ` duplicate semantics.
///
/// Runs in `O(n)` expected time by bucketing rows on their `lhs` key.
#[must_use]
pub fn fd_holds_in<'a>(
    rows: impl IntoIterator<Item = &'a [Value]>,
    lhs: &[usize],
    rhs: &[usize],
) -> bool {
    let mut witness: HashMap<GroupKey, Vec<Value>> = HashMap::new();
    // Out-of-range ordinals read as NULL rather than panicking: the
    // check is a test/audit helper, and `=ⁿ` treats NULL as a value.
    let value_at = |row: &[Value], i: usize| row.get(i).cloned().unwrap_or(Value::Null);
    for row in rows {
        let key = GroupKey(lhs.iter().map(|&i| value_at(row, i)).collect());
        let rhs_vals: Vec<Value> = rhs.iter().map(|&i| value_at(row, i)).collect();
        match witness.get(&key) {
            None => {
                witness.insert(key, rhs_vals);
            }
            Some(existing) => {
                let agrees = existing.iter().zip(&rhs_vals).all(|(a, b)| a.null_eq(b));
                if !agrees {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[i64]]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    #[test]
    fn holds_on_functional_data() {
        let data = rows(&[&[1, 10], &[2, 20], &[1, 10]]);
        assert!(fd_holds_in(data.iter().map(Vec::as_slice), &[0], &[1]));
    }

    #[test]
    fn fails_on_conflicting_rows() {
        let data = rows(&[&[1, 10], &[1, 11]]);
        assert!(!fd_holds_in(data.iter().map(Vec::as_slice), &[0], &[1]));
    }

    #[test]
    fn null_lhs_values_group_together() {
        // Two rows with NULL key and different rhs: under "NULL =ⁿ NULL"
        // they are the same group, so the FD fails.
        let data = [
            vec![Value::Null, Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
        ];
        assert!(!fd_holds_in(data.iter().map(Vec::as_slice), &[0], &[1]));
        // …but matching NULL rhs values agree.
        let data = [
            vec![Value::Null, Value::Null],
            vec![Value::Null, Value::Null],
        ];
        assert!(fd_holds_in(data.iter().map(Vec::as_slice), &[0], &[1]));
    }

    #[test]
    fn empty_and_singleton_instances_always_satisfy() {
        let empty: Vec<Vec<Value>> = vec![];
        assert!(fd_holds_in(empty.iter().map(Vec::as_slice), &[0], &[1]));
        let one = rows(&[&[1, 2]]);
        assert!(fd_holds_in(one.iter().map(Vec::as_slice), &[0], &[1]));
    }

    #[test]
    fn composite_lhs() {
        let data = rows(&[&[1, 1, 5], &[1, 2, 6], &[1, 1, 5]]);
        assert!(fd_holds_in(data.iter().map(Vec::as_slice), &[0, 1], &[2]));
        // A alone does not determine C.
        assert!(!fd_holds_in(data.iter().map(Vec::as_slice), &[0], &[2]));
    }

    #[test]
    fn empty_lhs_means_rhs_constant_everywhere() {
        let constant = rows(&[&[1, 7], &[2, 7]]);
        assert!(fd_holds_in(constant.iter().map(Vec::as_slice), &[], &[1]));
        let varying = rows(&[&[1, 7], &[2, 8]]);
        assert!(!fd_holds_in(varying.iter().map(Vec::as_slice), &[], &[1]));
    }

    #[test]
    fn empty_rhs_trivially_holds() {
        let data = rows(&[&[1, 7], &[1, 8]]);
        assert!(fd_holds_in(data.iter().map(Vec::as_slice), &[0], &[]));
    }
}
