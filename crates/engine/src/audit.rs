//! Cardinality auditing: estimated vs. actual rows per plan node.
//!
//! The optimizer's [`Estimator`](crate::Estimator) predicts an output
//! cardinality for every node of the chosen plan
//! ([`PlanEstimate`](crate::stats::PlanEstimate)); the executor measures
//! what actually flowed ([`ProfileNode`]). Both trees mirror the logical
//! plan exactly, so zipping them node by node yields an estimate-vs-
//! actual table with a **Q-error** per node — `max(est, actual) /
//! min(est, actual)`, the standard symmetric accuracy measure (≥ 1,
//! where 1 is a perfect estimate). `EXPLAIN ANALYZE`, the REPL's
//! `\metrics` command and the `cardinality_audit` bench bin all render
//! from this module.

use gbj_exec::ProfileNode;

use crate::stats::{q_error, PlanEstimate};

/// One plan node's estimate-vs-actual record.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAudit {
    /// The plan node's label.
    pub label: String,
    /// The physical operator that ran.
    pub operator: String,
    /// Estimated output rows.
    pub estimated: f64,
    /// Measured output rows.
    pub actual: u64,
    /// `max(est, actual) / min(est, actual)`, both floored at one row.
    pub q_error: f64,
    /// Tree depth (root = 0), for indented rendering.
    pub depth: usize,
}

/// Zip an estimate tree onto the measured profile tree, pre-order. The
/// trees mirror the same logical plan, so they are congruent; if a
/// defensive mismatch ever appears, the surplus children are skipped
/// rather than misattributed.
#[must_use]
pub fn audit_nodes(est: &PlanEstimate, profile: &ProfileNode) -> Vec<NodeAudit> {
    let mut out = Vec::new();
    zip_nodes(est, profile, 0, &mut out);
    out
}

fn zip_nodes(est: &PlanEstimate, profile: &ProfileNode, depth: usize, out: &mut Vec<NodeAudit>) {
    let actual = profile.metrics.rows_out.max(profile.rows_out as u64);
    out.push(NodeAudit {
        label: profile.label.clone(),
        operator: profile.operator.clone(),
        estimated: est.rows,
        actual,
        q_error: q_error(est.rows, actual as f64),
        depth,
    });
    for (e, p) in est.children.iter().zip(&profile.children) {
        zip_nodes(e, p, depth + 1, out);
    }
}

/// Render the audit as an indented tree, one line per node:
/// `label [operator] est=… actual=… q=…`. Deterministic across runs —
/// no timings — so golden tests can assert on it verbatim.
#[must_use]
pub fn annotated_tree(audits: &[NodeAudit]) -> String {
    let mut out = String::new();
    for a in audits {
        for _ in 0..a.depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{}] est={:.0} actual={} q={:.2}\n",
            a.label, a.operator, a.estimated, a.actual, a.q_error
        ));
    }
    out
}

/// The largest per-node Q-error (1.0 for an empty audit).
#[must_use]
pub fn max_q(audits: &[NodeAudit]) -> f64 {
    audits.iter().map(|a| a.q_error).fold(1.0, f64::max)
}

/// The median per-node Q-error (1.0 for an empty audit). For an even
/// count this is the lower median — deterministic and bound-friendly.
#[must_use]
pub fn median_q(audits: &[NodeAudit]) -> f64 {
    if audits.is_empty() {
        return 1.0;
    }
    let mut qs: Vec<f64> = audits.iter().map(|a| a.q_error).collect();
    qs.sort_by(f64::total_cmp);
    let mid = (qs.len() - 1) / 2;
    qs.get(mid).copied().unwrap_or(1.0)
}

/// Render the audit as a JSON array (hand-rolled; the workspace carries
/// no serde), one object per node in pre-order.
#[must_use]
pub fn audits_to_json(audits: &[NodeAudit]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let rows: Vec<String> = audits
        .iter()
        .map(|a| {
            format!(
                "{{\"label\":\"{}\",\"operator\":\"{}\",\"estimated\":{:.1},\"actual\":{},\"q_error\":{:.3}}}",
                esc(&a.label),
                esc(&a.operator),
                a.estimated,
                a.actual,
                a.q_error
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_exec::OperatorMetrics;

    fn est(label: &str, rows: f64, children: Vec<PlanEstimate>) -> PlanEstimate {
        PlanEstimate {
            label: label.into(),
            rows,
            children,
        }
    }

    fn prof(label: &str, op: &str, rows: usize, children: Vec<ProfileNode>) -> ProfileNode {
        ProfileNode::new(label, op, rows, children).with_metrics(OperatorMetrics {
            rows_out: rows as u64,
            ..OperatorMetrics::default()
        })
    }

    #[test]
    fn zip_walks_both_trees_in_lockstep() {
        let e = est(
            "Agg",
            10.0,
            vec![est("Join", 100.0, vec![est("Scan E", 1000.0, vec![])])],
        );
        let p = prof(
            "Agg",
            "HashAggregate",
            4,
            vec![prof(
                "Join",
                "HashJoin",
                120,
                vec![prof("Scan E", "Scan", 1000, vec![])],
            )],
        );
        let audits = audit_nodes(&e, &p);
        assert_eq!(audits.len(), 3);
        assert_eq!(audits[0].q_error, 2.5, "est 10 vs actual 4");
        assert!((audits[1].q_error - 1.2).abs() < 1e-9);
        assert_eq!(audits[2].q_error, 1.0, "scans are exact");
        assert_eq!(audits[2].depth, 2);
        assert_eq!(max_q(&audits), 2.5);
        assert_eq!(median_q(&audits), 1.2);
    }

    #[test]
    fn tree_rendering_is_deterministic_and_indented() {
        let e = est("Agg", 10.0, vec![est("Scan", 100.0, vec![])]);
        let p = prof(
            "Agg",
            "HashAggregate",
            10,
            vec![prof("Scan", "Scan", 100, vec![])],
        );
        let text = annotated_tree(&audit_nodes(&e, &p));
        assert_eq!(
            text,
            "Agg [HashAggregate] est=10 actual=10 q=1.00\n  Scan [Scan] est=100 actual=100 q=1.00\n"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let e = est("a\"b", 2.0, vec![]);
        let p = prof("a\"b", "Scan", 2, vec![]);
        let json = audits_to_json(&audit_nodes(&e, &p));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"label\":\"a\\\"b\""), "{json}");
        assert!(json.contains("\"estimated\":2.0"), "{json}");
        assert!(json.contains("\"q_error\":1.000"), "{json}");
    }

    #[test]
    fn empty_audit_summaries_are_neutral() {
        assert_eq!(max_q(&[]), 1.0);
        assert_eq!(median_q(&[]), 1.0);
        assert_eq!(audits_to_json(&[]), "[]");
    }
}
