//! Figure 1 reproduction at the paper's scale: 10000 employees, 100
//! departments. Prints both access plans with their measured operator
//! cardinalities (the numbers annotated on the paper's Figure 1) and
//! wall-clock timings.
//!
//! Run with: `cargo run --release --example emp_dept_figure1`

use std::time::Instant;

use gbj::datagen::EmpDeptConfig;
use gbj::engine::PushdownPolicy;

fn main() -> gbj::Result<()> {
    let cfg = EmpDeptConfig::paper();
    println!(
        "building Example 1 instance: {} employees, {} departments …",
        cfg.employees, cfg.departments
    );
    let mut db = cfg.build()?;
    let sql = cfg.query();

    for (policy, label) in [
        (PushdownPolicy::Never, "Plan 1 (lazy: join, then group-by)"),
        (
            PushdownPolicy::Always,
            "Plan 2 (eager: group-by, then join)",
        ),
    ] {
        db.options_mut().policy = policy;
        let start = Instant::now();
        let (rows, profile, _) = db.query_report(sql)?;
        let elapsed = start.elapsed();
        println!("\n=== {label} ===");
        println!("{}", profile.display_tree());
        println!("rows: {}, time: {elapsed:?}", rows.len());
    }

    // And the engine's own choice with the reasoning.
    db.options_mut().policy = PushdownPolicy::CostBased;
    let report = db.plan_query(sql)?;
    println!(
        "\n=== engine decision ===\nchoice: {:?}\n{}",
        report.choice, report.reason
    );
    Ok(())
}
