#!/usr/bin/env bash
# Compare a freshly generated vectorized_sweep JSON against the
# committed BENCH_vectorized.json baseline.
#
# Usage: scripts/bench_check.sh <generated.json> [baseline.json]
#
# Policy (CI bench-smoke job):
#   - parse failure / missing workload  -> hard fail (exit 1): the
#     bench output format regressed, which is a real bug;
#   - per-workload speedup deviating more than ±30% from the baseline
#     -> advisory warning, exit 0: absolute timings on shared CI boxes
#     are too noisy to gate merges on, but the drift is surfaced in
#     the job log for a human to look at.
#
# Only POSIX-ish tools (grep/sed/awk) — no jq dependency.
set -uo pipefail
cd "$(dirname "$0")/.."

generated="${1:-}"
baseline="${2:-BENCH_vectorized.json}"

if [[ -z "$generated" || ! -f "$generated" ]]; then
  echo "bench_check: generated JSON '$generated' not found" >&2
  exit 1
fi
if [[ ! -f "$baseline" ]]; then
  echo "bench_check: baseline '$baseline' not found" >&2
  exit 1
fi

# Extract `speedup` for a workload from one of our JSON files (one
# object per line, hand-rolled format — see vectorized_sweep.rs).
speedup_of() { # file workload
  grep -o "\"workload\":\"$2\"[^}]*" "$1" |
    sed -n 's/.*"speedup":\([0-9.]*\).*/\1/p' | head -1
}

status=0
for workload in filter_kernel end_to_end; do
  base=$(speedup_of "$baseline" "$workload")
  new=$(speedup_of "$generated" "$workload")
  if [[ -z "$base" || -z "$new" ]]; then
    echo "bench_check: FAIL — could not parse speedup for '$workload'" \
      "(baseline='$base' generated='$new')" >&2
    status=1
    continue
  fi
  awk -v b="$base" -v n="$new" -v w="$workload" 'BEGIN {
    dev = (n - b) / b * 100
    printf "bench_check: %-14s baseline=%.3fx generated=%.3fx (%+.1f%%)\n", w, b, n, dev
    if (dev > 30 || dev < -30) {
      printf "bench_check: WARNING — %s speedup drifted more than +/-30%% from the committed baseline\n", w
    }
  }'
done

if [[ $status -ne 0 ]]; then
  exit 1
fi
echo "bench_check: OK (deviations are advisory; only parse errors fail)"
