//! Property-based validation of the Main Theorem (experiment X12):
//! on randomly generated instances and a family of grouped join
//! queries, whenever the engine's `TestFD` proves the transformation
//! valid, the lazy (`E1`) and eager (`E2`) plans must return identical
//! multisets — including instances with NULLs, duplicates, empty
//! tables, and dangling join keys.
//!
//! Offline build note: proptest is unavailable, so instances are drawn
//! from the local deterministic `rand` shim in a seeded loop; failure
//! messages carry the case number so any instance replays exactly.

use std::collections::BTreeSet;

use gbj::engine::{PlanChoice, PushdownPolicy};
use gbj::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

/// A randomly generated Fact/Dim instance.
#[derive(Debug, Clone)]
struct Instance {
    dims: Vec<(i64, String)>,
    facts: Vec<(Option<i64>, Option<i64>)>, // (join key, value)
}

fn random_instance(rng: &mut StdRng) -> Instance {
    let n_dims = rng.gen_range(0usize..8);
    let mut keys = BTreeSet::new();
    for _ in 0..n_dims {
        keys.insert(rng.gen_range(0i64..12));
    }
    let cats = ["a", "b", "c"];
    let dims = keys
        .into_iter()
        .map(|k| (k, cats[rng.gen_range(0usize..cats.len())].to_string()))
        .collect();
    let n_facts = rng.gen_range(0usize..40);
    let facts = (0..n_facts)
        .map(|_| {
            let k = rng.gen_bool(0.85).then(|| rng.gen_range(0i64..15));
            let v = rng.gen_bool(0.85).then(|| rng.gen_range(-5i64..20));
            (k, v)
        })
        .collect();
    Instance { dims, facts }
}

fn build_db(inst: &Instance) -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Dim (DimId INTEGER PRIMARY KEY, Cat VARCHAR(5) NOT NULL); \
         CREATE TABLE Fact (FId INTEGER PRIMARY KEY, K INTEGER, V INTEGER);",
    )
    .unwrap();
    db.insert_rows(
        "Dim",
        inst.dims
            .iter()
            .map(|(k, c)| vec![Value::Int(*k), Value::Str(c.clone())]),
    )
    .unwrap();
    db.insert_rows(
        "Fact",
        inst.facts.iter().enumerate().map(|(i, (k, v))| {
            vec![
                Value::Int(i as i64),
                k.map_or(Value::Null, Value::Int),
                v.map_or(Value::Null, Value::Int),
            ]
        }),
    )
    .unwrap();
    db
}

/// The query family exercised (all in the paper's class).
const QUERIES: &[&str] = &[
    "SELECT D.DimId, COUNT(F.FId) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId",
    "SELECT D.DimId, D.Cat, SUM(F.V), MIN(F.V), MAX(F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    "SELECT D.DimId, COUNT(*) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId",
    "SELECT D.DimId, AVG(F.V), COUNT(DISTINCT F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId",
    // Local predicates on both sides.
    "SELECT D.DimId, SUM(F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId AND F.V > 0 AND D.Cat = 'a' GROUP BY D.DimId",
    // DISTINCT projection (Theorem 2).
    "SELECT DISTINCT D.Cat, COUNT(F.FId) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    // Subset projection (Theorem 2).
    "SELECT D.Cat, SUM(F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    // Constant pinning the group (degenerate-ish but valid).
    "SELECT D.DimId, COUNT(F.FId) FROM Fact F, Dim D \
     WHERE F.K = D.DimId AND D.DimId = 3 GROUP BY D.DimId",
];

/// Whenever TestFD answers YES, E1 ≡ E2 on the generated instance.
#[test]
fn main_theorem_equivalence() {
    let mut rng = StdRng::seed_from_u64(0xe9_5eed);
    for case in 0..64 {
        let inst = random_instance(&mut rng);
        let mut db = build_db(&inst);
        for sql in QUERIES {
            db.options_mut().policy = PushdownPolicy::Always;
            let report = db.plan_query(sql).unwrap();
            let eager_valid = report.choice == PlanChoice::Eager;
            let eager = db.query(sql).unwrap();

            db.options_mut().policy = PushdownPolicy::Never;
            let lazy = db.query(sql).unwrap();

            if eager_valid {
                assert!(
                    lazy.multiset_eq(&eager),
                    "case {case}: E1 != E2 for {sql}\nlazy:\n{lazy}\neager:\n{eager}\ninstance: {inst:?}"
                );
            } else {
                // Both policies must still agree (both ran lazily).
                assert!(lazy.multiset_eq(&eager), "case {case}: {sql}");
            }
        }
    }
}

/// All three join algorithms and both aggregation algorithms agree.
#[test]
fn physical_algorithms_agree() {
    use gbj::exec::{AggAlgo, JoinAlgo};
    let mut rng = StdRng::seed_from_u64(0xa190_5eed);
    for case in 0..64 {
        let inst = random_instance(&mut rng);
        let mut db = build_db(&inst);
        let sql = QUERIES[1];
        let mut results = Vec::new();
        for join in [JoinAlgo::Hash, JoinAlgo::NestedLoop, JoinAlgo::SortMerge] {
            for agg in [AggAlgo::Hash, AggAlgo::Sort] {
                db.options_mut().exec.join = join;
                db.options_mut().exec.agg = agg;
                results.push(db.query(sql).unwrap());
            }
        }
        for r in &results[1..] {
            assert!(results[0].multiset_eq(r), "case {case}: {inst:?}");
        }
    }
}

/// NULL-heavy group keys under `=ⁿ`: an all-NULL grouping column and an
/// alternating NULL/value column (worst case for validity bitmaps) must
/// group identically on the row and the vectorized path, for both
/// pushdown policies — NULLs form one `=ⁿ` group, and a NULL join key
/// never matches.
#[test]
fn null_heavy_group_keys_agree_between_row_and_vectorized() {
    // Fact.K patterns: all NULL, and alternating NULL / value.
    let patterns: [&dyn Fn(i64) -> Option<i64>; 2] =
        [&|_| None, &|i| (i % 2 == 0).then_some(i % 5)];
    for (which, key_of) in patterns.iter().enumerate() {
        let inst = Instance {
            dims: (0..5).map(|k| (k, "a".to_string())).collect(),
            facts: (0..40).map(|i| (key_of(i), Some(i % 7 - 3))).collect(),
        };
        let mut db = build_db(&inst);
        for sql in QUERIES {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                db.options_mut().policy = policy;
                db.set_vectorized(false);
                let row_engine = db.query(sql).unwrap();
                db.set_vectorized(true);
                let vectorized = db.query(sql).unwrap();
                db.set_vectorized(false);
                assert_eq!(
                    common::canon(&vectorized),
                    common::canon(&row_engine),
                    "pattern {which} policy {policy:?}: {sql}"
                );
            }
        }
        // Grouping the NULL-heavy column directly: all-NULL collapses
        // to the single `=ⁿ` NULL group.
        let sql = "SELECT F.K, COUNT(F.FId) FROM Fact F GROUP BY F.K";
        db.set_vectorized(true);
        let grouped = db.query(sql).unwrap();
        db.set_vectorized(false);
        assert_eq!(
            common::canon(&grouped),
            common::canon(&db.query(sql).unwrap())
        );
        if which == 0 {
            assert_eq!(grouped.len(), 1, "all NULLs form exactly one group");
            assert_eq!(grouped.rows[0], vec![Value::Null, Value::Int(40)]);
        }
    }
}

/// The eager plan's join input never exceeds the lazy plan's
/// (paper §7, first bullet) — measured, not estimated.
#[test]
fn eager_never_increases_join_input() {
    let mut rng = StdRng::seed_from_u64(0x301d_5eed);
    for case in 0..64 {
        let inst = random_instance(&mut rng);
        let mut db = build_db(&inst);
        let sql = QUERIES[0];
        db.options_mut().policy = PushdownPolicy::Always;
        let report = db.plan_query(sql).unwrap();
        if report.choice != PlanChoice::Eager {
            continue;
        }
        let (_, eager_profile, _) = db.query_report(sql).unwrap();
        db.options_mut().policy = PushdownPolicy::Never;
        let (_, lazy_profile, _) = db.query_report(sql).unwrap();
        let join_in =
            |p: &gbj::exec::ProfileNode| common::find_join(p).map(gbj::exec::ProfileNode::rows_in);
        if let (Some(e), Some(l)) = (join_in(&eager_profile), join_in(&lazy_profile)) {
            assert!(e <= l, "case {case}: eager join input {e} > lazy {l}");
        }
    }
}
