//! Vectorized expression kernels over [`ColumnarBatch`]es.
//!
//! The kernels evaluate a [`BoundExpr`] column-at-a-time instead of
//! row-at-a-time, producing either a truth vector (for filters) or a
//! result column (for projections and grouping keys). The row engine
//! remains the semantic oracle: every kernel is required to produce
//! *bit-identical* results to [`BoundExpr::eval_truth`] /
//! [`BoundExpr::eval`], which the differential suites assert at every
//! thread count.
//!
//! **The error-free vectorization rule.** Only expressions that can
//! never raise an execution error are vectorized: column references,
//! literals, comparisons, `AND`/`OR`/`NOT`, and `IS [NOT] NULL`
//! ([`vectorizable`] is the gate). Arithmetic (`+ - * /`, unary `-`)
//! can overflow or divide by zero, and the row engine's error — the
//! first one in row-major, depth-first, short-circuit order — is
//! impossible to reproduce when evaluation is reordered column-major.
//! Rather than approximate it, an operator whose expression isn't
//! vectorizable falls back to the row engine wholesale, so error
//! behavior is always exactly the oracle's.
//!
//! Within the error-free domain, `AND`/`OR` are evaluated *without*
//! short-circuiting (both sides fully, combined element-wise through
//! [`Truth::and`]/[`Truth::or`]); since neither side can error, the
//! result is identical to the short-circuiting interpreter, and the
//! data-parallel loop stays branch-free. See DESIGN.md §11.

use std::borrow::Cow;

use gbj_expr::{compare_values, ordering_truth, value_to_truth, BinaryOp, BoundExpr};
use gbj_types::{internal_err, GroupKey, Result, Truth, Value};

use crate::batch::{Bitmap, ColumnVector, ColumnarBatch};
use crate::metrics::MetricsSink;
use crate::parallel::morsel_rows;

/// Whether `expr` is in the error-free vectorizable domain: columns,
/// literals, comparisons, logical connectives and `IS [NOT] NULL`.
/// Arithmetic is excluded — it can error, and error order must stay
/// the row engine's (see the module docs).
#[must_use]
pub fn vectorizable(expr: &BoundExpr) -> bool {
    match expr {
        BoundExpr::Column(_) | BoundExpr::Literal(_) => true,
        BoundExpr::Binary { left, op, right } => {
            !op.is_arithmetic() && vectorizable(left) && vectorizable(right)
        }
        BoundExpr::Not(e) => vectorizable(e),
        BoundExpr::Neg(_) => false,
        BoundExpr::IsNull { expr, .. } => vectorizable(expr),
    }
}

/// Evaluate `expr` as a search condition over every row of `batch`,
/// producing one [`Truth`] per row. Requires [`vectorizable`]`(expr)`;
/// a non-vectorizable node is an internal error (the executor checks
/// the gate before dispatching here).
pub fn eval_truth_vec(expr: &BoundExpr, batch: &ColumnarBatch) -> Result<Vec<Truth>> {
    match expr {
        BoundExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let l = eval_truth_vec(left, batch)?;
            let r = eval_truth_vec(right, batch)?;
            Ok(l.into_iter().zip(r).map(|(a, b)| a.and(b)).collect())
        }
        BoundExpr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let l = eval_truth_vec(left, batch)?;
            let r = eval_truth_vec(right, batch)?;
            Ok(l.into_iter().zip(r).map(|(a, b)| a.or(b)).collect())
        }
        BoundExpr::Binary { left, op, right } if op.is_comparison() => {
            compare_vec(left, *op, right, batch)
        }
        BoundExpr::Not(e) => {
            let v = eval_truth_vec(e, batch)?;
            Ok(v.into_iter().map(Truth::not).collect())
        }
        other => {
            let col = eval_value_vec(other, batch)?;
            Ok((0..batch.len())
                .map(|i| value_to_truth(&col.value(i)))
                .collect())
        }
    }
}

/// Evaluate `expr` as a value over every row of `batch`, producing a
/// result column. Borrows the input column when `expr` is a bare
/// column reference. Requires [`vectorizable`]`(expr)`.
pub fn eval_value_vec<'a>(
    expr: &BoundExpr,
    batch: &'a ColumnarBatch,
) -> Result<Cow<'a, ColumnVector>> {
    match expr {
        BoundExpr::Column(i) => Ok(Cow::Borrowed(batch.column(*i)?)),
        BoundExpr::Literal(v) => Ok(Cow::Owned(ColumnVector::Mixed {
            values: vec![v.clone(); batch.len()],
        })),
        BoundExpr::Binary { op, .. } if op.is_logical() => Ok(Cow::Owned(truths_to_bool_column(
            eval_truth_vec(expr, batch)?,
        ))),
        BoundExpr::Binary { left, op, right } if op.is_comparison() => Ok(Cow::Owned(
            truths_to_bool_column(compare_vec(left, *op, right, batch)?),
        )),
        BoundExpr::Not(_) => Ok(Cow::Owned(truths_to_bool_column(eval_truth_vec(
            expr, batch,
        )?))),
        BoundExpr::IsNull { expr, negated } => {
            let col = eval_value_vec(expr, batch)?;
            let n = batch.len();
            let values = (0..n).map(|i| col.is_valid(i) == *negated).collect();
            Ok(Cow::Owned(ColumnVector::Bool {
                values,
                validity: Bitmap::new_all(n, true),
            }))
        }
        BoundExpr::Binary { .. } | BoundExpr::Neg(_) => Err(internal_err!(
            "vectorized evaluation of a non-vectorizable expression"
        )),
    }
}

/// Reify a truth vector as a `Bool` column: `unknown` → invalid (NULL),
/// mirroring `truth_to_value`.
fn truths_to_bool_column(truths: Vec<Truth>) -> ColumnVector {
    let n = truths.len();
    let mut validity = Bitmap::new_all(n, true);
    let values = truths
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Truth::True => true,
            Truth::False => false,
            Truth::Unknown => {
                validity.set(i, false);
                false
            }
        })
        .collect();
    ColumnVector::Bool { values, validity }
}

/// One comparison operand: a column (borrowed or computed) or a scalar
/// literal (never materialized to a full column).
enum Operand<'a> {
    Col(Cow<'a, ColumnVector>),
    Lit(&'a Value),
}

fn operand<'a>(expr: &'a BoundExpr, batch: &'a ColumnarBatch) -> Result<Operand<'a>> {
    match expr {
        BoundExpr::Literal(v) => Ok(Operand::Lit(v)),
        other => Ok(Operand::Col(eval_value_vec(other, batch)?)),
    }
}

/// Element-wise three-valued comparison, bit-identical to the row
/// engine's `compare` (i.e. [`Value::sql_cmp`] lifted by
/// [`ordering_truth`]). Typed column/literal and column/column pairs
/// take allocation-free fast paths; everything else reconstructs
/// [`Value`]s per element and defers to [`compare_values`].
fn compare_vec(
    left: &BoundExpr,
    op: BinaryOp,
    right: &BoundExpr,
    batch: &ColumnarBatch,
) -> Result<Vec<Truth>> {
    let l = operand(left, batch)?;
    let r = operand(right, batch)?;
    let n = batch.len();
    Ok(match (&l, &r) {
        (Operand::Lit(a), Operand::Lit(b)) => vec![compare_values(a, op, b); n],
        (Operand::Col(c), Operand::Lit(v)) => col_lit(c, op, v, false, n),
        (Operand::Lit(v), Operand::Col(c)) => col_lit(c, op, v, true, n),
        (Operand::Col(a), Operand::Col(b)) => col_col(a, op, b, n),
    })
}

/// `op`'s truth result for each [`Ordering`], precomputed once per
/// kernel call so the per-element loop is a branch-predictable
/// three-way select instead of a nested match on the operator.
#[derive(Clone, Copy)]
struct CmpTable {
    lt: Truth,
    eq: Truth,
    gt: Truth,
}

impl CmpTable {
    fn new(op: BinaryOp) -> CmpTable {
        CmpTable {
            lt: ordering_truth(op, Some(std::cmp::Ordering::Less)),
            eq: ordering_truth(op, Some(std::cmp::Ordering::Equal)),
            gt: ordering_truth(op, Some(std::cmp::Ordering::Greater)),
        }
    }

    #[inline]
    fn pick(self, ord: std::cmp::Ordering) -> Truth {
        match ord {
            std::cmp::Ordering::Less => self.lt,
            std::cmp::Ordering::Equal => self.eq,
            std::cmp::Ordering::Greater => self.gt,
        }
    }

    #[inline]
    fn pick_opt(self, ord: Option<std::cmp::Ordering>) -> Truth {
        ord.map_or(Truth::Unknown, |o| self.pick(o))
    }
}

/// Mirror a comparison so `lit op col` becomes `col mirror(op) lit`:
/// the ordering flips, equality ops are symmetric.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// `Int`-column vs `Int`-scalar loop, monomorphized per comparison
/// operator so the body is a branch-free `i64` predicate that LLVM can
/// autovectorize — the hottest loop in the filter kernel.
fn int_lit_cmp<F: Fn(i64) -> bool>(values: &[i64], validity: &Bitmap, f: F) -> Vec<Truth> {
    if validity.all_valid() {
        values.iter().map(|v| Truth::from_bool(f(*v))).collect()
    } else {
        values
            .iter()
            .zip(validity.iter())
            .map(|(v, ok)| {
                if ok {
                    Truth::from_bool(f(*v))
                } else {
                    Truth::Unknown
                }
            })
            .collect()
    }
}

/// Compare a column against a scalar. `flipped` means the literal is
/// the *left* operand (`lit op col`).
fn col_lit(col: &ColumnVector, op: BinaryOp, lit: &Value, flipped: bool, n: usize) -> Vec<Truth> {
    if lit.is_null() {
        return vec![Truth::Unknown; n];
    }
    let t = CmpTable::new(op);
    match (col, lit) {
        (ColumnVector::Int { values, validity }, Value::Int(k)) => {
            // Normalize `lit op col` to `col op' lit` by mirroring the
            // operator, then dispatch to a per-op monomorphized loop.
            let (op, k) = (if flipped { mirror(op) } else { op }, *k);
            match op {
                BinaryOp::Eq => int_lit_cmp(values, validity, |v| v == k),
                BinaryOp::NotEq => int_lit_cmp(values, validity, |v| v != k),
                BinaryOp::Lt => int_lit_cmp(values, validity, |v| v < k),
                BinaryOp::LtEq => int_lit_cmp(values, validity, |v| v <= k),
                BinaryOp::Gt => int_lit_cmp(values, validity, |v| v > k),
                BinaryOp::GtEq => int_lit_cmp(values, validity, |v| v >= k),
                // Unreachable: compare_vec only dispatches comparison
                // ops here; keep the exact three-valued loop anyway.
                _ => {
                    let cmp = |v: &i64| t.pick(v.cmp(&k));
                    if validity.all_valid() {
                        values.iter().map(cmp).collect()
                    } else {
                        values
                            .iter()
                            .zip(validity.iter())
                            .map(|(v, ok)| if ok { cmp(v) } else { Truth::Unknown })
                            .collect()
                    }
                }
            }
        }
        (ColumnVector::Int { values, validity }, Value::Float(k)) => {
            let cmp = |v: &i64| {
                let x = *v as f64;
                t.pick_opt(if flipped {
                    k.partial_cmp(&x)
                } else {
                    x.partial_cmp(k)
                })
            };
            if validity.all_valid() {
                values.iter().map(cmp).collect()
            } else {
                values
                    .iter()
                    .zip(validity.iter())
                    .map(|(v, ok)| if ok { cmp(v) } else { Truth::Unknown })
                    .collect()
            }
        }
        (ColumnVector::Float { values, validity }, Value::Float(k)) => {
            let cmp = |v: &f64| {
                t.pick_opt(if flipped {
                    k.partial_cmp(v)
                } else {
                    v.partial_cmp(k)
                })
            };
            if validity.all_valid() {
                values.iter().map(cmp).collect()
            } else {
                values
                    .iter()
                    .zip(validity.iter())
                    .map(|(v, ok)| if ok { cmp(v) } else { Truth::Unknown })
                    .collect()
            }
        }
        (ColumnVector::Float { values, validity }, Value::Int(k)) => {
            let x = *k as f64;
            let cmp = move |v: &f64| {
                t.pick_opt(if flipped {
                    x.partial_cmp(v)
                } else {
                    v.partial_cmp(&x)
                })
            };
            if validity.all_valid() {
                values.iter().map(cmp).collect()
            } else {
                values
                    .iter()
                    .zip(validity.iter())
                    .map(|(v, ok)| if ok { cmp(v) } else { Truth::Unknown })
                    .collect()
            }
        }
        (ColumnVector::Str { values, validity }, Value::Str(k)) => {
            let cmp = |v: &String| {
                t.pick(if flipped {
                    k.as_str().cmp(v.as_str())
                } else {
                    v.as_str().cmp(k.as_str())
                })
            };
            if validity.all_valid() {
                values.iter().map(cmp).collect()
            } else {
                values
                    .iter()
                    .zip(validity.iter())
                    .map(|(v, ok)| if ok { cmp(v) } else { Truth::Unknown })
                    .collect()
            }
        }
        (ColumnVector::Dict { codes, dict }, Value::Str(k)) => match op {
            // (In)equality against a dictionary-encoded column never
            // touches the strings: resolve the literal to a code once
            // (absent → can't equal any valid row) and compare `u32`s.
            // `flipped` is irrelevant — equality is symmetric.
            BinaryOp::Eq | BinaryOp::NotEq => {
                let want_eq = op == BinaryOp::Eq;
                let lit_code = dict.code_of(k);
                codes
                    .iter()
                    .map(|&c| {
                        if (c as usize) < dict.len() {
                            Truth::from_bool((Some(c) == lit_code) == want_eq)
                        } else {
                            Truth::Unknown
                        }
                    })
                    .collect()
            }
            // Ordering comparisons decode per element (codes are
            // insertion-ordered, not sort-ordered).
            _ => codes
                .iter()
                .map(|&c| {
                    dict.get(c).map_or(Truth::Unknown, |v| {
                        t.pick(if flipped {
                            k.as_str().cmp(v)
                        } else {
                            v.cmp(k.as_str())
                        })
                    })
                })
                .collect(),
        },
        _ => (0..n)
            .map(|i| {
                let v = col.value(i);
                if flipped {
                    compare_values(lit, op, &v)
                } else {
                    compare_values(&v, op, lit)
                }
            })
            .collect(),
    }
}

/// Compare two columns element-wise.
fn col_col(a: &ColumnVector, op: BinaryOp, b: &ColumnVector, n: usize) -> Vec<Truth> {
    let t = CmpTable::new(op);
    match (a, b) {
        (
            ColumnVector::Int {
                values: av,
                validity: am,
            },
            ColumnVector::Int {
                values: bv,
                validity: bm,
            },
        ) => {
            if am.all_valid() && bm.all_valid() {
                av.iter().zip(bv).map(|(x, y)| t.pick(x.cmp(y))).collect()
            } else {
                av.iter()
                    .zip(bv)
                    .zip(am.iter().zip(bm.iter()))
                    .map(|((x, y), (va, vb))| {
                        if va && vb {
                            t.pick(x.cmp(y))
                        } else {
                            Truth::Unknown
                        }
                    })
                    .collect()
            }
        }
        (
            ColumnVector::Float {
                values: av,
                validity: am,
            },
            ColumnVector::Float {
                values: bv,
                validity: bm,
            },
        ) => {
            if am.all_valid() && bm.all_valid() {
                av.iter()
                    .zip(bv)
                    .map(|(x, y)| t.pick_opt(x.partial_cmp(y)))
                    .collect()
            } else {
                av.iter()
                    .zip(bv)
                    .zip(am.iter().zip(bm.iter()))
                    .map(|((x, y), (va, vb))| {
                        if va && vb {
                            t.pick_opt(x.partial_cmp(y))
                        } else {
                            Truth::Unknown
                        }
                    })
                    .collect()
            }
        }
        (
            ColumnVector::Str {
                values: av,
                validity: am,
            },
            ColumnVector::Str {
                values: bv,
                validity: bm,
            },
        ) => av
            .iter()
            .zip(bv)
            .zip(am.iter().zip(bm.iter()))
            .map(|((x, y), (va, vb))| {
                if va && vb {
                    t.pick(x.cmp(y))
                } else {
                    Truth::Unknown
                }
            })
            .collect(),
        (
            ColumnVector::Dict {
                codes: ac,
                dict: ad,
            },
            ColumnVector::Dict {
                codes: bc,
                dict: bd,
            },
        ) => {
            // Same dictionary (the common case: two references into one
            // scan) makes (in)equality a pure code comparison; anything
            // else decodes per element.
            if std::sync::Arc::ptr_eq(ad, bd) && matches!(op, BinaryOp::Eq | BinaryOp::NotEq) {
                let want_eq = op == BinaryOp::Eq;
                ac.iter()
                    .zip(bc)
                    .map(|(&x, &y)| {
                        if (x as usize) < ad.len() && (y as usize) < bd.len() {
                            Truth::from_bool((x == y) == want_eq)
                        } else {
                            Truth::Unknown
                        }
                    })
                    .collect()
            } else {
                ac.iter()
                    .zip(bc)
                    .map(|(&x, &y)| match (ad.get(x), bd.get(y)) {
                        (Some(a), Some(b)) => t.pick(a.cmp(b)),
                        _ => Truth::Unknown,
                    })
                    .collect()
            }
        }
        _ => (0..n)
            .map(|i| compare_values(&a.value(i), op, &b.value(i)))
            .collect(),
    }
}

/// Evaluate `expr` as a filter over `batch` and return the selection
/// vector: the indices of rows where the predicate is `true` (3VL —
/// `false` and `unknown` rows are dropped, exactly like the row
/// engine's filter). This is the late-materialization primitive the
/// batch-native pipeline carries between operators instead of copying
/// rows.
pub fn filter_selection(expr: &BoundExpr, batch: &ColumnarBatch) -> Result<Vec<u32>> {
    Ok(eval_truth_vec(expr, batch)?
        .iter()
        .enumerate()
        .filter(|&(_, t)| *t == Truth::True)
        .map(|(i, _)| i as u32)
        .collect())
}

/// Batched `=ⁿ` grouping-key computation: evaluate the (vectorizable)
/// grouping expressions column-at-a-time over morsel-sized chunks and
/// assemble one [`GroupKey`] per row. Bit-identical to evaluating the
/// expressions row-at-a-time, so the hash aggregate's group order and
/// NULL-group behavior are unchanged.
pub fn compute_group_keys(
    rows: &[Vec<Value>],
    arity: usize,
    exprs: &[BoundExpr],
    sink: &MetricsSink,
) -> Result<Vec<GroupKey>> {
    let mut keys = Vec::with_capacity(rows.len());
    for chunk in rows.chunks(morsel_rows(rows.len()).max(1)) {
        let batch = ColumnarBatch::from_rows(chunk, arity)?;
        sink.add_vectors(1);
        let cols = exprs
            .iter()
            .map(|e| eval_value_vec(e, &batch))
            .collect::<Result<Vec<_>>>()?;
        for i in 0..batch.len() {
            keys.push(GroupKey(cols.iter().map(|c| c.value(i)).collect()));
        }
    }
    Ok(keys)
}

/// Batched hash-join key extraction for one side: gather the key
/// columns per morsel-sized chunk; `None` marks a row whose key
/// contains NULL (such rows never join — `NULL = NULL` is `unknown`).
pub fn compute_join_keys(
    rows: &[Vec<Value>],
    arity: usize,
    ordinals: &[usize],
    sink: &MetricsSink,
) -> Result<Vec<Option<GroupKey>>> {
    let mut keys = Vec::with_capacity(rows.len());
    for chunk in rows.chunks(morsel_rows(rows.len()).max(1)) {
        let batch = ColumnarBatch::from_rows(chunk, arity)?;
        sink.add_vectors(1);
        let cols = ordinals
            .iter()
            .map(|&o| batch.column(o))
            .collect::<Result<Vec<_>>>()?;
        for i in 0..batch.len() {
            if cols.iter().any(|c| !c.is_valid(i)) {
                keys.push(None);
            } else {
                keys.push(Some(GroupKey(cols.iter().map(|c| c.value(i)).collect())));
            }
        }
    }
    Ok(keys)
}

/// `GBJ_TEST_VECTORIZED` environment override for
/// [`ExecOptions::vectorized`](crate::ExecOptions::vectorized): `1` /
/// `true` turns the vectorized kernels on, `0` / `false` forces them
/// off, anything else (or unset) means "no override". The hook
/// `scripts/verify.sh` and CI use to push the whole test suite through
/// the columnar path.
#[must_use]
pub fn vectorized_from_env() -> Option<bool> {
    match std::env::var("GBJ_TEST_VECTORIZED").ok()?.trim() {
        "1" | "true" => Some(true),
        "0" | "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_expr::Expr;
    use gbj_types::{DataType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
            Field::new("s", DataType::Utf8, true),
            Field::new("f", DataType::Float64, true),
        ])
    }

    fn bind(e: Expr) -> BoundExpr {
        e.bind(&schema()).unwrap()
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![
                Value::Int(1),
                Value::Int(10),
                Value::str("x"),
                Value::Float(0.5),
            ],
            vec![
                Value::Null,
                Value::Int(2),
                Value::str("y"),
                Value::Float(f64::NAN),
            ],
            vec![Value::Int(3), Value::Null, Value::Null, Value::Float(-0.0)],
            vec![Value::Int(-4), Value::Int(-4), Value::str(""), Value::Null],
        ]
    }

    fn batch() -> ColumnarBatch {
        ColumnarBatch::from_rows(&rows(), 4).unwrap()
    }

    /// The oracle check: the kernel must agree with the row engine on
    /// every row.
    fn assert_matches_row_engine(e: &BoundExpr) {
        let b = batch();
        let vec_truths = eval_truth_vec(e, &b).unwrap();
        for (i, row) in rows().iter().enumerate() {
            assert_eq!(
                vec_truths.get(i).copied().unwrap(),
                e.eval_truth(row).unwrap(),
                "row {i} disagrees for {e:?}"
            );
        }
        let vec_vals = eval_value_vec(e, &b).unwrap();
        for (i, row) in rows().iter().enumerate() {
            assert_eq!(vec_vals.value(i), e.eval(row).unwrap(), "row {i} value");
        }
    }

    #[test]
    fn vectorizable_gate() {
        assert!(vectorizable(&bind(
            Expr::bare("a").eq(Expr::lit(Value::Int(1)))
        )));
        assert!(vectorizable(&bind(
            Expr::bare("a")
                .eq(Expr::bare("b"))
                .and(Expr::bare("s").eq(Expr::lit(Value::str("x")))),
        )));
        assert!(vectorizable(&bind(Expr::IsNull {
            expr: Box::new(Expr::bare("a")),
            negated: true,
        })));
        // Arithmetic can error: excluded.
        assert!(!vectorizable(&bind(
            Expr::bare("a")
                .binary(BinaryOp::Add, Expr::bare("b"))
                .eq(Expr::lit(Value::Int(3))),
        )));
        assert!(!vectorizable(&bind(Expr::Neg(Box::new(Expr::bare("a"))))));
    }

    #[test]
    fn comparisons_match_row_engine() {
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            // col vs literal, literal vs col, col vs col; Int, Str,
            // Float (with NaN), and cross-numeric Int/Float.
            assert_matches_row_engine(&bind(Expr::bare("a").binary(op, Expr::lit(Value::Int(1)))));
            assert_matches_row_engine(&bind(Expr::lit(Value::Int(1)).binary(op, Expr::bare("a"))));
            assert_matches_row_engine(&bind(Expr::bare("a").binary(op, Expr::bare("b"))));
            assert_matches_row_engine(&bind(
                Expr::bare("s").binary(op, Expr::lit(Value::str("x"))),
            ));
            assert_matches_row_engine(&bind(
                Expr::bare("f").binary(op, Expr::lit(Value::Float(0.5))),
            ));
            assert_matches_row_engine(&bind(Expr::bare("a").binary(op, Expr::bare("f"))));
            assert_matches_row_engine(&bind(Expr::bare("f").binary(op, Expr::lit(Value::Int(0)))));
            assert_matches_row_engine(&bind(Expr::bare("a").binary(op, Expr::lit(Value::Null))));
        }
    }

    #[test]
    fn logical_connectives_match_row_engine() {
        let lt = Expr::bare("a").binary(BinaryOp::Lt, Expr::lit(Value::Int(2)));
        let gt = Expr::bare("b").binary(BinaryOp::Gt, Expr::lit(Value::Int(0)));
        assert_matches_row_engine(&bind(lt.clone().and(gt.clone())));
        assert_matches_row_engine(&bind(lt.clone().or(gt.clone())));
        assert_matches_row_engine(&bind(Expr::Not(Box::new(lt.and(gt)))));
    }

    #[test]
    fn is_null_matches_row_engine() {
        for negated in [false, true] {
            assert_matches_row_engine(&bind(Expr::IsNull {
                expr: Box::new(Expr::bare("a")),
                negated,
            }));
        }
    }

    #[test]
    fn bare_columns_and_literals_match_row_engine() {
        assert_matches_row_engine(&bind(Expr::bare("a")));
        assert_matches_row_engine(&bind(Expr::lit(Value::Bool(true))));
        assert_matches_row_engine(&bind(Expr::lit(Value::Null)));
    }

    #[test]
    fn group_keys_match_row_evaluation() {
        let exprs = vec![bind(Expr::bare("a")), bind(Expr::bare("s"))];
        let sink = MetricsSink::new();
        let keys = compute_group_keys(&rows(), 4, &exprs, &sink).unwrap();
        for (i, row) in rows().iter().enumerate() {
            let expect = GroupKey(exprs.iter().map(|e| e.eval(row).unwrap()).collect());
            assert_eq!(keys.get(i).unwrap(), &expect, "row {i}");
        }
        assert!(sink.finish(0, 0).vectors > 0);
    }

    #[test]
    fn join_keys_mark_null_rows() {
        let sink = MetricsSink::new();
        let keys = compute_join_keys(&rows(), 4, &[0, 1], &sink).unwrap();
        assert_eq!(keys.len(), 4);
        assert!(keys.first().unwrap().is_some());
        assert!(keys.get(1).unwrap().is_none(), "NULL a");
        assert!(keys.get(2).unwrap().is_none(), "NULL b");
        assert_eq!(
            keys.get(3).unwrap(),
            &Some(GroupKey(vec![Value::Int(-4), Value::Int(-4)]))
        );
    }

    #[test]
    fn dict_kernels_match_decoded_strings() {
        use crate::batch::{StringDictBuilder, NULL_CODE};
        use std::sync::Arc;

        let dict = {
            let mut b = StringDictBuilder::new();
            b.intern("x").unwrap();
            b.intern("y").unwrap();
            b.intern("").unwrap();
            Arc::new(b.finish())
        };
        let a = ColumnVector::Dict {
            codes: vec![0, 1, NULL_CODE, 2],
            dict: Arc::clone(&dict),
        };
        let b = ColumnVector::Dict {
            codes: vec![1, 1, 0, NULL_CODE],
            dict: Arc::clone(&dict),
        };
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            for lit in [Value::str("x"), Value::str("zz"), Value::Null] {
                for flipped in [false, true] {
                    let got = col_lit(&a, op, &lit, flipped, 4);
                    let want: Vec<Truth> = (0..4)
                        .map(|i| {
                            let v = a.value(i);
                            if flipped {
                                compare_values(&lit, op, &v)
                            } else {
                                compare_values(&v, op, &lit)
                            }
                        })
                        .collect();
                    assert_eq!(got, want, "{op:?} lit={lit:?} flipped={flipped}");
                }
            }
            let got = col_col(&a, op, &b, 4);
            let want: Vec<Truth> = (0..4)
                .map(|i| compare_values(&a.value(i), op, &b.value(i)))
                .collect();
            assert_eq!(got, want, "{op:?} col-col");
        }
    }

    #[test]
    fn filter_selection_keeps_only_true_rows() {
        // a < 2: row 0 true, row 1 NULL (unknown), row 2 false, row 3 true.
        let e = bind(Expr::bare("a").binary(BinaryOp::Lt, Expr::lit(Value::Int(2))));
        let sel = filter_selection(&e, &batch()).unwrap();
        assert_eq!(sel, vec![0, 3]);
    }

    #[test]
    fn env_vectorized_parsing() {
        // Only the unset path is asserted (env mutation in tests races).
        if std::env::var("GBJ_TEST_VECTORIZED").is_err() {
            assert!(vectorized_from_env().is_none());
        }
    }
}
