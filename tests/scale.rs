//! Larger-scale end-to-end checks, plus a machine-independent test of
//! the cost model's *decision quality*: across the Section 7 sweep
//! grid, the engine's cost-based choice must match the plan that
//! demonstrably does less work — measured as total rows produced by all
//! operators (deterministic, unlike wall-clock time).

use gbj::datagen::{EmpDeptConfig, SweepConfig};
use gbj::engine::{PlanChoice, PushdownPolicy};
use gbj::exec::ProfileNode;
use gbj::Value;

fn total_rows_produced(p: &ProfileNode) -> usize {
    p.rows_out + p.children.iter().map(total_rows_produced).sum::<usize>()
}

#[test]
fn emp_dept_at_20k_scale() {
    let cfg = EmpDeptConfig {
        employees: 20_000,
        departments: 200,
        null_dept_fraction: 0.01,
        seed: 99,
    };
    let mut db = cfg.build().unwrap();
    db.options_mut().policy = PushdownPolicy::Always;
    let (eager, eager_profile, _) = db.query_report(cfg.query()).unwrap();
    db.options_mut().policy = PushdownPolicy::Never;
    let (lazy, lazy_profile, _) = db.query_report(cfg.query()).unwrap();

    assert_eq!(lazy.len(), 200);
    assert!(lazy.multiset_eq(&eager));
    // Sanity on the totals: ~99% of employees are counted.
    let total: i64 = lazy
        .rows
        .iter()
        .map(|r| match r[2] {
            Value::Int(n) => n,
            _ => 0,
        })
        .sum();
    assert!(total > 19_000 && total <= 20_000, "total = {total}");
    // The eager plan does meaningfully less work here (both plans pay
    // the 20k-row scan; the lazy plan additionally pushes 20k rows
    // through the join).
    let we = total_rows_produced(&eager_profile);
    let wl = total_rows_produced(&lazy_profile);
    assert!(
        (we as f64) < 0.8 * wl as f64,
        "eager work {we} should be at least 20% under lazy work {wl}"
    );
}

/// Decision quality across the sweep grid: wherever the two plans'
/// work differs by ≥ 30%, the engine's cost-based choice picks the
/// lighter one.
#[test]
fn cost_based_choice_tracks_actual_work() {
    let grid = [
        // (groups, match_fraction) spanning both regimes.
        (10usize, 1.0f64),
        (100, 1.0),
        (2_000, 1.0),
        (4_000, 0.5),
        (4_000, 0.05),
        (4_000, 0.01),
    ];
    for (groups, frac) in grid {
        let cfg = SweepConfig {
            fact_rows: 5_000,
            dim_rows: 100.max(groups.min(1_000)),
            groups,
            match_fraction: frac,
            ..SweepConfig::default()
        };
        let mut db = cfg.build().unwrap();

        db.options_mut().policy = PushdownPolicy::Always;
        let (_, ep, _) = db.query_report(cfg.query()).unwrap();
        db.options_mut().policy = PushdownPolicy::Never;
        let (_, lp, _) = db.query_report(cfg.query()).unwrap();
        let (we, wl) = (total_rows_produced(&ep), total_rows_produced(&lp));

        db.options_mut().policy = PushdownPolicy::CostBased;
        let choice = db.plan_query(cfg.query()).unwrap().choice;

        let clear_cut = we.max(wl) as f64 / we.min(wl).max(1) as f64 >= 1.3;
        if clear_cut {
            let should_be_eager = we < wl;
            let picked_eager = choice == PlanChoice::Eager;
            assert_eq!(
                picked_eager, should_be_eager,
                "groups={groups} frac={frac}: work eager={we} lazy={wl}, choice={choice:?}"
            );
        }
    }
}

/// The §7 invariant at scale, measured: eager join input ≤ lazy join
/// input at every grid point.
#[test]
fn join_input_invariant_at_scale() {
    for (groups, frac) in [(50usize, 1.0f64), (4_500, 0.02), (5_000, 1.0)] {
        let cfg = SweepConfig {
            fact_rows: 5_000,
            dim_rows: 100,
            groups,
            match_fraction: frac,
            ..SweepConfig::default()
        };
        let mut db = cfg.build().unwrap();
        let join_in = |p: &ProfileNode| {
            ["HashJoin", "NestedLoopJoin", "SortMergeJoin", "CrossJoin"]
                .iter()
                .find_map(|op| p.find_operator(op))
                .map(ProfileNode::rows_in)
                .unwrap_or(0)
        };
        db.options_mut().policy = PushdownPolicy::Always;
        let (_, ep, _) = db.query_report(cfg.query()).unwrap();
        db.options_mut().policy = PushdownPolicy::Never;
        let (_, lp, _) = db.query_report(cfg.query()).unwrap();
        assert!(
            join_in(&ep) <= join_in(&lp),
            "groups={groups} frac={frac}: {} > {}",
            join_in(&ep),
            join_in(&lp)
        );
    }
}
