#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]
#![warn(missing_docs)]

//! # gbj-fd
//!
//! Functional dependencies under SQL2 semantics (paper Section 4.3) and
//! the closure computation that powers `TestFD` (Section 6.3).
//!
//! A functional dependency `A → B` holds in a table instance when any
//! two rows that agree on `A` under the null-tolerant equality `=ⁿ`
//! also agree on `B` under `=ⁿ` (Definition 2). Three sources of
//! dependencies matter to the paper:
//!
//! * **key dependencies** — a declared PRIMARY KEY / UNIQUE key
//!   functionally determines every column of its table (and the
//!   implicit RowID);
//! * **constant columns** — a Type-1 atom `c = 25` in the WHERE clause
//!   makes `c` constant in the result, so *every* column set determines
//!   `c` (illustrated by the paper's Figure 7);
//! * **column equalities** — a Type-2 atom `a = b` makes `a` and `b`
//!   determine one another.
//!
//! [`FdSet`] stores these and computes attribute-set closures with an
//! optional step-by-step [`ClosureTrace`] used to reproduce Figure 7 and
//! the TestFD trace of Example 3. [`mod@derive`] builds an [`FdSet`] from a
//! catalog context plus predicate atoms, and [`check`] verifies a
//! dependency against concrete data (used by the property tests that
//! validate the Main Theorem).

pub mod check;
pub mod derive;
pub mod fd;

pub use check::fd_holds_in;
pub use derive::{row_id_col, FdContext};
pub use fd::{ClosureStep, ClosureTrace, Fd, FdSet};
