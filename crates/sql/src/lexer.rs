//! The SQL lexer.

use gbj_types::{Error, Result};

/// A lexical token with its byte offset in the source (offsets let the
/// parser capture raw text spans, used to store view definitions).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Ident(String),
    /// String literal (single quotes, `''` escapes a quote).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Whether the token is the given keyword (case-insensitive).
    #[must_use]
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenise `input`, appending a final [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        let c = byte as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while bytes.get(i).is_some_and(|&b| b != b'\n') {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    start,
                    end: i + 1,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    start,
                    end: i + 2,
                });
                i += 2;
            }
            '<' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::LtEq, 2),
                    Some(b'>') => (TokenKind::NotEq, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token {
                    kind,
                    start,
                    end: i + len,
                });
                i += len;
            }
            '>' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::GtEq, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token {
                    kind,
                    start,
                    end: i + len,
                });
                i += len;
            }
            '\'' => {
                // String literal with '' escape.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::Parse(format!(
                                "unterminated string literal at byte {start}"
                            )))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    start,
                    end: i,
                });
            }
            '"' => {
                // Delimited identifier.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::Parse(format!(
                                "unterminated delimited identifier at byte {start}"
                            )))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    start,
                    end: i,
                });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while bytes.get(end).is_some_and(u8::is_ascii_digit) {
                    end += 1;
                }
                if bytes.get(end) == Some(&b'.')
                    && bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    end += 1;
                    while bytes.get(end).is_some_and(u8::is_ascii_digit) {
                        end += 1;
                    }
                }
                if matches!(bytes.get(end), Some(b'e' | b'E')) {
                    let mut j = end + 1;
                    if matches!(bytes.get(j), Some(b'+' | b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        end = j;
                        while bytes.get(end).is_some_and(u8::is_ascii_digit) {
                            end += 1;
                        }
                    }
                }
                let text = &input[i..end];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|e| Error::Parse(format!("bad float literal {text}: {e}")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse().map_err(|e| {
                            Error::Parse(format!("bad integer literal {text}: {e}"))
                        })?,
                    )
                };
                tokens.push(Token { kind, start, end });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '#' => {
                let mut end = i + 1;
                while bytes
                    .get(end)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b'#')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..end].to_string()),
                    start,
                    end,
                });
                i = end;
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        start: input.len(),
        end: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let ks = kinds("SELECT a.b, COUNT(*) FROM t WHERE x = 'y';");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Ident("a".into()));
        assert_eq!(ks[2], TokenKind::Dot);
        assert!(ks.contains(&TokenKind::Star));
        assert!(ks.contains(&TokenKind::Str("y".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2E-2")[..4],
            [
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.02)
            ]
        );
        // A dot not followed by a digit is a Dot token (qualified name).
        let ks = kinds("t.1");
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= + - * /")[..11],
            [
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn delimited_identifiers() {
        assert_eq!(
            kinds("\"Weird Name\"")[0],
            TokenKind::Ident("Weird Name".into())
        );
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT -- the select list\n 1");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Int(1));
    }

    #[test]
    fn offsets_support_text_slicing() {
        let sql = "CREATE VIEW v AS SELECT 1";
        let toks = tokenize(sql).unwrap();
        let as_tok = toks.iter().find(|t| t.kind.is_keyword("AS")).unwrap();
        assert_eq!(&sql[as_tok.end..].trim_start(), &"SELECT 1");
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let ks = kinds("select");
        assert!(ks[0].is_keyword("SELECT"));
        assert!(ks[0].is_keyword("select"));
        assert!(!ks[0].is_keyword("FROM"));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(tokenize("SELECT @x").is_err());
    }
}
