//! Deterministic client-side retry with seeded jittered backoff.
//!
//! When the server sheds with [`Error::Overloaded`] the polite client
//! response is *full-jitter exponential backoff* (sleep a uniformly
//! random duration in `[0, base·2^attempt]`, capped): the exponential
//! keeps aggregate retry pressure bounded, the jitter de-synchronises
//! clients so they do not stampede the admission queue in lock-step.
//!
//! The jitter comes from the workspace's seeded [`rand`] shim, so a
//! given `(seed, attempt)` always produces the same delay — chaos
//! tests replay identically and the delay schedule itself is testable
//! without sleeping.

use std::time::Duration;

use gbj_types::{Error, Result};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Backoff configuration for [`with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff base: the cap grows as `base · 2^attempt`.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The deterministic delay before retry number `attempt` (0-based:
    /// the delay after the first failure is `delay(0)`), given the
    /// error that triggered it. An [`Error::Overloaded`] retry hint
    /// acts as a floor under the jittered delay.
    #[must_use]
    pub fn delay(&self, attempt: u32, cause: &Error) -> Duration {
        // One independent, reproducible stream per (seed, attempt):
        // re-deriving from the seed keeps the schedule a pure function
        // of the policy, not of how many errors came before.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (0x9E37 + u64::from(attempt)));
        let cap = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let jittered = Duration::from_nanos(if cap.is_zero() {
            0
        } else {
            rng.gen_range(0..=cap.as_nanos().min(u128::from(u64::MAX)) as u64)
        });
        let floor = match cause {
            Error::Overloaded {
                retry_after_hint_ms,
            } => Duration::from_millis(*retry_after_hint_ms),
            _ => Duration::ZERO,
        };
        jittered.max(floor).min(self.max_delay)
    }

    /// The whole delay schedule for a persistent `cause` — what a
    /// client would sleep if every attempt failed the same way.
    #[must_use]
    pub fn schedule(&self, cause: &Error) -> Vec<Duration> {
        (0..self.max_attempts.saturating_sub(1))
            .map(|a| self.delay(a, cause))
            .collect()
    }
}

/// Run `op` until it succeeds, fails non-retryably, or exhausts the
/// policy's attempts. Only load-management errors (see
/// [`Error::is_retryable`]) are retried; a parse error will never pass
/// by trying harder. The attempt number is passed to `op` so callers
/// can tag work or vary behaviour.
pub fn with_retry<T>(policy: &RetryPolicy, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                std::thread::sleep(policy.delay(attempt, &e));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overloaded(ms: u64) -> Error {
        Error::Overloaded {
            retry_after_hint_ms: ms,
        }
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let p = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        assert_eq!(p.schedule(&overloaded(0)), p.schedule(&overloaded(0)));
        let q = RetryPolicy {
            seed: 43,
            ..RetryPolicy::default()
        };
        assert_ne!(
            p.schedule(&overloaded(0)),
            q.schedule(&overloaded(0)),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn delays_are_capped_and_floored() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(20),
            seed: 7,
        };
        for (a, d) in p.schedule(&overloaded(3)).into_iter().enumerate() {
            assert!(d <= p.max_delay, "attempt {a}: {d:?} over cap");
            assert!(
                d >= Duration::from_millis(3),
                "attempt {a}: {d:?} under the server hint"
            );
        }
        // The hint floor itself respects the cap.
        let d = p.delay(0, &overloaded(10_000));
        assert_eq!(d, p.max_delay);
    }

    #[test]
    fn retries_overloaded_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            seed: 1,
        };
        let mut calls = 0;
        let out = with_retry(&p, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err(overloaded(0))
            } else {
                Ok(attempt)
            }
        })
        .unwrap();
        assert_eq!(out, 3);
        assert_eq!(calls, 4);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let err = with_retry(&p, |_| -> Result<()> {
            calls += 1;
            Err(Error::Parse("nope".into()))
        })
        .unwrap_err();
        assert_eq!(err.kind(), "parse");
        assert_eq!(calls, 1, "parse errors are not retried");
    }

    #[test]
    fn attempts_are_exhausted_with_the_last_error() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(1),
            max_delay: Duration::from_micros(5),
            seed: 9,
        };
        let mut calls = 0;
        let err = with_retry(&p, |_| -> Result<()> {
            calls += 1;
            Err(overloaded(0))
        })
        .unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }));
        assert_eq!(calls, 3);
    }
}
