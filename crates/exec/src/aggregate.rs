//! Grouping and aggregation: hash and sort implementations.
//!
//! Grouping uses SQL2's duplicate semantics — rows with NULL grouping
//! values form a group of their own ("NULL equals NULL", Section 4.2 of
//! the paper) — via [`GroupKey`]. With an empty grouping list this is a
//! scalar aggregate producing exactly one row (standard SQL); the
//! optimizer refuses the degenerate transformations where this
//! distinction would matter (see DESIGN.md).

use std::collections::HashMap;

use gbj_expr::{Accumulator, AggregateCall, BoundExpr};
use gbj_types::{Error, GroupKey, Result, Value};

use crate::guard::{row_bytes, ResourceGuard};
use crate::metrics::MetricsSink;

/// Estimated bytes of one aggregation-table entry beyond its key
/// (accumulator enum + table bookkeeping).
pub(crate) const ACC_ENTRY_BYTES: u64 = 48;

/// A compiled aggregate: the call (for accumulator construction) plus
/// its bound argument.
pub struct CompiledAggregate {
    /// The logical call.
    pub call: AggregateCall,
    /// The bound argument; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
}

impl CompiledAggregate {
    pub(crate) fn update(&self, acc: &mut Accumulator, row: &[Value]) -> Result<()> {
        match &self.arg {
            Some(expr) => acc.update(&expr.eval(row)?),
            // COUNT(*): feed a non-NULL dummy once per row.
            None => acc.update(&Value::Int(1)),
        }
    }
}

/// Hash aggregation: one pass, grouping by the bound key expressions.
///
/// Output rows are `group key values ++ aggregate results`, in
/// first-seen group order (deterministic for a given input order).
pub fn hash_aggregate(
    input: &[Vec<Value>],
    group_exprs: &[BoundExpr],
    aggregates: &[CompiledAggregate],
    guard: &ResourceGuard,
    sink: &MetricsSink,
) -> Result<Vec<Vec<Value>>> {
    hash_aggregate_with_keys(input, group_exprs, aggregates, None, guard, sink)
}

/// [`hash_aggregate`] with optionally precomputed grouping keys (one
/// per input row, e.g. from the vectorized batch kernels). The keys
/// must equal row-at-a-time evaluation of `group_exprs`; the executor
/// only precomputes for error-free (vectorizable) key expressions, so
/// the output — including error behavior — is identical either way.
pub fn hash_aggregate_with_keys(
    input: &[Vec<Value>],
    group_exprs: &[BoundExpr],
    aggregates: &[CompiledAggregate],
    precomputed: Option<&[GroupKey]>,
    guard: &ResourceGuard,
    sink: &MetricsSink,
) -> Result<Vec<Vec<Value>>> {
    let mut order: Vec<GroupKey> = Vec::new();
    let mut groups: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();

    if group_exprs.is_empty() {
        // Scalar aggregate: exactly one group, even over empty input.
        let scalar_timer = sink.start_timer();
        let mut accs: Vec<Accumulator> = aggregates.iter().map(|a| a.call.accumulator()).collect();
        for row in input {
            guard.tick()?;
            for (agg, acc) in aggregates.iter().zip(&mut accs) {
                agg.update(acc, row)?;
            }
        }
        sink.record_build(scalar_timer);
        return Ok(vec![accs.iter().map(Accumulator::finish).collect()]);
    }

    let build_timer = sink.start_timer();
    let mut table_bytes = 0u64;
    let filled = (|| -> Result<()> {
        for (i, row) in input.iter().enumerate() {
            guard.tick()?;
            let key = match precomputed {
                Some(keys) => keys
                    .get(i)
                    .cloned()
                    .ok_or_else(|| Error::Internal(format!("missing precomputed key {i}")))?,
                None => GroupKey(
                    group_exprs
                        .iter()
                        .map(|e| e.eval(row))
                        .collect::<Result<_>>()?,
                ),
            };
            if !groups.contains_key(&key) {
                let entry_bytes =
                    row_bytes(&key.0) + ACC_ENTRY_BYTES * aggregates.len().max(1) as u64;
                table_bytes += entry_bytes;
                guard.charge_memory(entry_bytes)?;
            }
            let accs = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                aggregates.iter().map(|a| a.call.accumulator()).collect()
            });
            for (agg, acc) in aggregates.iter().zip(accs.iter_mut()) {
                agg.update(acc, row)?;
            }
        }
        Ok(())
    })();
    sink.record_build(build_timer);
    sink.add_hash_entries(order.len() as u64);
    sink.add_state_bytes(table_bytes);
    let probe_timer = sink.start_timer();
    let out = filled.and_then(|()| {
        let mut out = Vec::with_capacity(order.len());
        for key in order.drain(..) {
            let accs = groups
                .remove(&key)
                .ok_or_else(|| Error::Internal("group vanished".into()))?;
            let mut row = key.0;
            row.extend(accs.iter().map(Accumulator::finish));
            out.push(row);
        }
        Ok(out)
    });
    sink.record_probe(probe_timer);
    guard.release_memory(table_bytes);
    out
}

/// Sort-based aggregation: sort rows by the grouping key (under the
/// total order, NULLs last and equal) and stream group boundaries.
///
/// This is the classic implementation the paper's Section 2 alludes to
/// ("grouping … is usually implemented by sorting"); it also leaves the
/// output sorted on the grouping columns, the property Section 7's last
/// bullet says later joins can exploit.
pub fn sort_aggregate(
    input: &[Vec<Value>],
    group_exprs: &[BoundExpr],
    aggregates: &[CompiledAggregate],
    guard: &ResourceGuard,
    sink: &MetricsSink,
) -> Result<Vec<Vec<Value>>> {
    if group_exprs.is_empty() {
        return hash_aggregate(input, group_exprs, aggregates, guard, sink);
    }
    let build_timer = sink.start_timer();
    let mut sort_bytes = 0u64;
    let keyed: Result<Vec<(Vec<Value>, &Vec<Value>)>> = input
        .iter()
        .map(|row| {
            guard.tick()?;
            let key: Vec<Value> = group_exprs
                .iter()
                .map(|e| e.eval(row))
                .collect::<Result<_>>()?;
            let entry_bytes = row_bytes(&key) + std::mem::size_of::<&Vec<Value>>() as u64;
            sort_bytes += entry_bytes;
            guard.charge_memory(entry_bytes)?;
            Ok((key, row))
        })
        .collect();
    let mut keyed = match keyed {
        Ok(k) => k,
        Err(e) => {
            guard.release_memory(sort_bytes);
            return Err(e);
        }
    };
    keyed.sort_by(|(a, _), (b, _)| {
        for (x, y) in a.iter().zip(b) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    sink.record_build(build_timer);
    sink.add_state_bytes(sort_bytes);

    let probe_timer = sink.start_timer();
    let streamed = (|| -> Result<Vec<Vec<Value>>> {
        let mut out = Vec::new();
        let mut current: Option<(Vec<Value>, Vec<Accumulator>)> = None;
        for (key, row) in keyed {
            guard.tick()?;
            let same = current
                .as_ref()
                .is_some_and(|(k, _)| k.iter().zip(&key).all(|(a, b)| a.null_eq(b)));
            if !same {
                if let Some((k, accs)) = current.take() {
                    let mut r = k;
                    r.extend(accs.iter().map(Accumulator::finish));
                    out.push(r);
                }
                current = Some((
                    key,
                    aggregates.iter().map(|a| a.call.accumulator()).collect(),
                ));
            }
            if let Some((_, accs)) = &mut current {
                for (agg, acc) in aggregates.iter().zip(accs.iter_mut()) {
                    agg.update(acc, row)?;
                }
            }
        }
        if let Some((k, accs)) = current {
            let mut r = k;
            r.extend(accs.iter().map(Accumulator::finish));
            out.push(r);
        }
        Ok(out)
    })();
    sink.record_probe(probe_timer);
    guard.release_memory(sort_bytes);
    streamed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_expr::{AggregateFunction, Expr};
    use gbj_types::{DataType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int64, true),
            Field::new("v", DataType::Int64, true),
        ])
    }

    fn compile(call: AggregateCall) -> CompiledAggregate {
        let arg = call.arg.as_ref().map(|e| e.bind(&schema()).unwrap());
        CompiledAggregate { call, arg }
    }

    fn group_exprs() -> Vec<BoundExpr> {
        vec![Expr::bare("g").bind(&schema()).unwrap()]
    }

    fn g() -> ResourceGuard {
        ResourceGuard::unlimited()
    }

    fn sk() -> MetricsSink {
        MetricsSink::new()
    }

    fn rows(data: &[(Option<i64>, Option<i64>)]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|(g, v)| {
                vec![
                    g.map_or(Value::Null, Value::Int),
                    v.map_or(Value::Null, Value::Int),
                ]
            })
            .collect()
    }

    fn sum_call() -> CompiledAggregate {
        compile(AggregateCall::new(AggregateFunction::Sum, Expr::bare("v")))
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn hash_and_sort_agree() {
        let input = rows(&[
            (Some(1), Some(10)),
            (Some(2), Some(20)),
            (Some(1), Some(5)),
            (None, Some(7)),
            (None, Some(3)),
        ]);
        let h = hash_aggregate(&input, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap();
        let s = sort_aggregate(&input, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap();
        assert_eq!(sorted(h.clone()), sorted(s));
        assert_eq!(h.len(), 3, "1, 2, and the NULL group");
        let by_key = sorted(h);
        assert_eq!(by_key[0], vec![Value::Int(1), Value::Int(15)]);
        assert_eq!(by_key[1], vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(by_key[2], vec![Value::Null, Value::Int(10)]);
    }

    #[test]
    fn null_group_values_form_one_group() {
        let input = rows(&[(None, Some(1)), (None, Some(2))]);
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&input, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], vec![Value::Null, Value::Int(3)]);
        }
    }

    #[test]
    fn scalar_aggregate_always_one_row() {
        let empty: Vec<Vec<Value>> = vec![];
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&empty, &[], &[sum_call()], &g(), &sk()).unwrap();
            assert_eq!(out, vec![vec![Value::Null]], "SUM over empty is NULL");
        }
        let input = rows(&[(Some(1), Some(4)), (Some(2), Some(6))]);
        let out = hash_aggregate(&input, &[], &[sum_call()], &g(), &sk()).unwrap();
        assert_eq!(out, vec![vec![Value::Int(10)]]);
    }

    #[test]
    fn count_star_counts_all_rows_per_group() {
        let star = compile(AggregateCall::count_star());
        let input = rows(&[(Some(1), None), (Some(1), Some(2)), (Some(2), None)]);
        let out = hash_aggregate(&input, &group_exprs(), &[star], &g(), &sk()).unwrap();
        let by_key = sorted(out);
        assert_eq!(by_key[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(by_key[1], vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let calls = vec![
            compile(AggregateCall::new(AggregateFunction::Min, Expr::bare("v"))),
            compile(AggregateCall::new(AggregateFunction::Max, Expr::bare("v"))),
            compile(AggregateCall::count_star()),
        ];
        let input = rows(&[(Some(1), Some(5)), (Some(1), Some(9)), (Some(1), None)]);
        let out = sort_aggregate(&input, &group_exprs(), &calls, &g(), &sk()).unwrap();
        assert_eq!(
            out,
            vec![vec![
                Value::Int(1),
                Value::Int(5),
                Value::Int(9),
                Value::Int(3)
            ]]
        );
    }

    #[test]
    fn empty_grouped_input_yields_no_groups() {
        let empty: Vec<Vec<Value>> = vec![];
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&empty, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap();
            assert!(out.is_empty(), "no rows → no groups when GROUP BY present");
        }
    }

    #[test]
    fn sort_aggregate_output_is_sorted_on_keys() {
        let input = rows(&[
            (Some(3), Some(1)),
            (Some(1), Some(1)),
            (None, Some(1)),
            (Some(2), Some(1)),
        ]);
        let out = sort_aggregate(&input, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap();
        let keys: Vec<&Value> = out.iter().map(|r| &r[0]).collect();
        assert_eq!(
            keys,
            vec![&Value::Int(1), &Value::Int(2), &Value::Int(3), &Value::Null]
        );
    }

    #[test]
    fn sum_overflow_is_an_execution_error_not_a_panic() {
        // Two values near i64::MAX in one group: the running SUM
        // overflows and must surface as Error::Execution.
        let input = rows(&[(Some(1), Some(i64::MAX - 1)), (Some(1), Some(i64::MAX - 1))]);
        for f in [hash_aggregate, sort_aggregate] {
            let err = f(&input, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap_err();
            assert_eq!(err.kind(), "execution", "got {err}");
            assert!(err.message().contains("overflow"), "got {err}");
        }
        // A single near-MAX value is fine.
        let input = rows(&[(Some(1), Some(i64::MAX - 1))]);
        let out = hash_aggregate(&input, &group_exprs(), &[sum_call()], &g(), &sk()).unwrap();
        assert_eq!(out[0][1], Value::Int(i64::MAX - 1));
    }

    #[test]
    fn avg_over_empty_and_all_null_groups_is_null() {
        let avg = || compile(AggregateCall::new(AggregateFunction::Avg, Expr::bare("v")));
        // Scalar AVG over an empty input: one row, NULL (no division by
        // the zero count).
        let empty: Vec<Vec<Value>> = vec![];
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&empty, &[], &[avg()], &g(), &sk()).unwrap();
            assert_eq!(out, vec![vec![Value::Null]], "AVG over empty is NULL");
        }
        // A group whose every argument is NULL also averages to NULL.
        let input = rows(&[(Some(1), None), (Some(1), None)]);
        for f in [hash_aggregate, sort_aggregate] {
            let out = f(&input, &group_exprs(), &[avg()], &g(), &sk()).unwrap();
            assert_eq!(out, vec![vec![Value::Int(1), Value::Null]]);
        }
    }

    #[test]
    fn precomputed_keys_are_byte_identical_to_inline_evaluation() {
        let input = rows(&[
            (Some(1), Some(10)),
            (None, Some(7)),
            (Some(1), Some(5)),
            (Some(2), None),
            (None, Some(3)),
        ]);
        let exprs = group_exprs();
        let keys: Vec<GroupKey> = input
            .iter()
            .map(|r| GroupKey(exprs.iter().map(|e| e.eval(r).unwrap()).collect()))
            .collect();
        let inline = hash_aggregate(&input, &exprs, &[sum_call()], &g(), &sk()).unwrap();
        let pre = hash_aggregate_with_keys(&input, &exprs, &[sum_call()], Some(&keys), &g(), &sk())
            .unwrap();
        assert_eq!(pre, inline, "rows and first-seen group order must match");
        // A missing key is an internal error, not a panic.
        let err = hash_aggregate_with_keys(
            &input,
            &exprs,
            &[sum_call()],
            Some(keys.get(..2).unwrap()),
            &g(),
            &sk(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "internal");
    }

    #[test]
    fn aggregate_memory_budget_aborts_table_growth() {
        use crate::guard::{ResourceGuard, ResourceLimits};
        // 1000 distinct groups against a tiny memory budget.
        let input: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::Int(i), Value::Int(1)])
            .collect();
        let tight = ResourceGuard::new(ResourceLimits {
            max_memory_bytes: Some(512),
            ..ResourceLimits::default()
        });
        let err = hash_aggregate(&input, &group_exprs(), &[sum_call()], &tight, &sk()).unwrap_err();
        assert_eq!(err.kind(), "resource");
        assert_eq!(err.message(), "memory budget exceeded");
        // The failed run released what it had charged.
        assert_eq!(tight.memory_used(), 0, "memory released after abort");
        let relieved = ResourceGuard::new(ResourceLimits::default());
        hash_aggregate(&input, &group_exprs(), &[sum_call()], &relieved, &sk()).unwrap();
        assert_eq!(relieved.memory_used(), 0, "memory released after success");
    }
}
