//! Plan-choice differential harness for the cost-based eager/lazy
//! decision (PR 8's tentpole).
//!
//! Three layers of proof, from safety to quality to learning:
//!
//! 1. **Correctness is unconditional.** Whatever the cost model picks,
//!    eager and lazy must stay byte-identical — same canonical rows
//!    across shapes, and within each shape the engine-invariant counter
//!    fingerprint must not move across thread counts or the
//!    row/vectorized boundary. The sweep spans the four axes that bend
//!    the decision: join fan-in, join selectivity, key skew, and NULL
//!    group keys.
//! 2. **The choice is empirically right at the extremes.** On an
//!    X-series instance built to crush one shape, the cost-based plan
//!    must both (a) be the shape the model predicts and (b) not lose a
//!    best-of-N wall-clock race against the rejected shape by more than
//!    a generous tolerance.
//! 3. **The adaptive loop is monotone.** With feedback absorption on,
//!    repeated runs of a query whose initial estimates are wrong must
//!    converge to the empirically faster shape within a few rounds and
//!    never flip back.

use std::time::{Duration, Instant};

use gbj::datagen::{EmpDeptConfig, SweepConfig};
use gbj::engine::{PlanChoice, PushdownPolicy};
use gbj::Database;

mod common;

/// Thread counts to sweep: serial and parallel, plus any
/// `GBJ_TEST_THREADS` override from the CI matrix.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 4];
    if let Some(n) = common::test_threads() {
        if !counts.contains(&n.get()) {
            counts.push(n.get());
        }
    }
    counts
}

/// Canonical rows, counter fingerprint and plan choice of one run.
type Observation = (Vec<Vec<gbj::Value>>, Vec<(String, [u64; 4])>, PlanChoice);

fn observe(
    db: &mut Database,
    policy: PushdownPolicy,
    vectorized: bool,
    threads: usize,
    sql: &str,
) -> Observation {
    db.options_mut().policy = policy;
    db.set_vectorized(vectorized);
    db.set_threads(std::num::NonZeroUsize::new(threads).expect("nonzero"));
    let rows = db.query(sql).expect("query runs");
    let metrics = db.last_query_metrics().expect("metrics recorded");
    (
        common::canon(&rows),
        metrics.profile.counter_fingerprint(),
        metrics.choice,
    )
}

/// One sweep point: every policy agrees on rows with the lazy serial
/// row-engine oracle, and each policy's counter fingerprint is
/// invariant across threads × row/vectorized.
fn assert_point(db: &mut Database, sql: &str, ctx: &str) {
    let (oracle_rows, _, _) = observe(db, PushdownPolicy::Never, false, 1, sql);
    for policy in [
        PushdownPolicy::Never,
        PushdownPolicy::Always,
        PushdownPolicy::CostBased,
    ] {
        let (_, base_fp, base_choice) = observe(db, policy, false, 1, sql);
        for vectorized in [false, true] {
            for &threads in &thread_counts() {
                let (rows, fp, choice) = observe(db, policy, vectorized, threads, sql);
                assert_eq!(
                    rows, oracle_rows,
                    "{ctx}: {policy:?} rows diverged at vectorized={vectorized} \
                     threads={threads}"
                );
                assert_eq!(
                    choice, base_choice,
                    "{ctx}: {policy:?} plan choice must not depend on the engine"
                );
                assert_eq!(
                    fp, base_fp,
                    "{ctx}: {policy:?} counter fingerprint diverged at \
                     vectorized={vectorized} threads={threads}"
                );
            }
        }
    }
}

/// Fan-in × selectivity × skew sweep: the cost decision may land either
/// way, but results never move.
#[test]
fn sweep_eager_lazy_byte_identity() {
    for &groups in &[10usize, 2000] {
        for &match_fraction in &[0.05f64, 1.0] {
            for &skew in &[0.0f64, 1.5] {
                let cfg = SweepConfig {
                    fact_rows: 4000,
                    dim_rows: 200,
                    groups,
                    match_fraction,
                    skew,
                };
                let mut db = cfg.build().expect("build");
                let ctx = format!("groups={groups} match={match_fraction} skew={skew}");
                assert_point(&mut db, cfg.query(), &ctx);
            }
        }
    }
}

/// NULL group-key axis (Example 1 shape): NULL forms its own group
/// below the join but never survives it — both shapes must agree at
/// every NULL fraction.
#[test]
fn sweep_null_fraction_byte_identity() {
    for &null_fraction in &[0.0f64, 0.3, 0.9] {
        let cfg = EmpDeptConfig {
            employees: 3000,
            departments: 40,
            null_dept_fraction: null_fraction,
            seed: 7,
        };
        let mut db = cfg.build().expect("build");
        let ctx = format!("null_fraction={null_fraction}");
        assert_point(&mut db, cfg.query(), &ctx);
    }
}

/// Median wall time of `runs` executions under `policy`.
fn timed(db: &mut Database, policy: PushdownPolicy, sql: &str, runs: usize) -> Duration {
    db.options_mut().policy = policy;
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            db.query(sql).expect("query runs");
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[runs / 2]
}

/// The shape the cost model picked must not lose the wall-clock race
/// against the rejected shape by more than `tolerance`×. Timing noise
/// on shared CI is real, so the bound is deliberately loose — the
/// assertion only rules out picking a *categorically* slower plan.
fn assert_not_slower(db: &mut Database, sql: &str, tolerance: f64, ctx: &str) {
    let report = {
        db.options_mut().policy = PushdownPolicy::CostBased;
        db.plan_query(sql).expect("plan")
    };
    let (chosen, other) = match report.choice {
        PlanChoice::Eager => (PushdownPolicy::Always, PushdownPolicy::Never),
        _ => (PushdownPolicy::Never, PushdownPolicy::Always),
    };
    let t_chosen = timed(db, chosen, sql, 3);
    let t_other = timed(db, other, sql, 3);
    assert!(
        t_chosen.as_secs_f64() <= t_other.as_secs_f64() * tolerance,
        "{ctx}: chose {:?} at {t_chosen:?} but the rejected shape ran {t_other:?}",
        report.choice
    );
}

/// Extreme A — huge fan-in, fully matching keys: the eager aggregate
/// collapses 160 rows into every group before a tiny join. The §7 model
/// must pick eager, and the pick must hold up on the clock.
#[test]
fn extreme_fan_in_picks_eager_and_wins() {
    let cfg = SweepConfig {
        fact_rows: 8000,
        dim_rows: 50,
        groups: 50,
        match_fraction: 1.0,
        skew: 0.0,
    };
    let mut db = cfg.build().expect("build");
    db.options_mut().policy = PushdownPolicy::CostBased;
    let report = db.plan_query(cfg.query()).expect("plan");
    assert_eq!(
        report.choice,
        PlanChoice::Eager,
        "reason: {}",
        report.reason
    );
    assert!(report.reason.contains("cost-based"), "{}", report.reason);
    assert_not_slower(&mut db, cfg.query(), 3.0, "extreme A (fan-in)");
}

/// Extreme B — near-key grouping and a very selective join: eager
/// would aggregate 8000 rows into ~6000 groups only for the join to
/// discard almost all of them. The model must stay lazy.
#[test]
fn extreme_selective_near_key_grouping_stays_lazy() {
    let cfg = SweepConfig {
        fact_rows: 8000,
        dim_rows: 4000,
        groups: 6000,
        match_fraction: 0.02,
        skew: 0.0,
    };
    let mut db = cfg.build().expect("build");
    db.options_mut().policy = PushdownPolicy::CostBased;
    let report = db.plan_query(cfg.query()).expect("plan");
    assert_eq!(report.choice, PlanChoice::Lazy, "reason: {}", report.reason);
    assert_not_slower(&mut db, cfg.query(), 3.0, "extreme B (selective near-key)");
}

/// The adaptive loop is monotone: on a workload whose first-run
/// estimates overshoot the join output by 50× (the `1/max(ndv)`
/// containment assumption at `match_fraction = 0.02`), feedback rounds
/// must converge to the lazy shape within three runs and never flip
/// back to the slower shape afterwards.
#[test]
fn adaptive_feedback_converges_and_never_flips_back() {
    let cfg = SweepConfig {
        fact_rows: 10_000,
        dim_rows: 5000,
        groups: 5000,
        match_fraction: 0.02,
        skew: 0.0,
    };
    let mut db = cfg.build().expect("build");
    db.options_mut().policy = PushdownPolicy::CostBased;
    db.options_mut().adaptive = true;

    let rounds = 5usize;
    let mut choices = Vec::with_capacity(rounds);
    let mut baseline: Option<Vec<Vec<gbj::Value>>> = None;
    for _ in 0..rounds {
        let rows = db.query(cfg.query()).expect("query runs");
        let canon = common::canon(&rows);
        match &baseline {
            None => baseline = Some(canon),
            Some(b) => assert_eq!(&canon, b, "feedback must never change results"),
        }
        choices.push(db.last_query_metrics().expect("metrics").choice);
    }

    // Eager on this instance aggregates 10k rows into ~5k groups that
    // the join then throws away: lazy is the empirically faster shape.
    let first_correct = choices
        .iter()
        .position(|c| *c == PlanChoice::Lazy)
        .unwrap_or_else(|| panic!("never converged to lazy: {choices:?}"));
    assert!(
        first_correct < 3,
        "took more than 3 feedback rounds to converge: {choices:?}"
    );
    assert!(
        choices[first_correct..]
            .iter()
            .all(|c| *c == PlanChoice::Lazy),
        "choice flipped back to the slower shape: {choices:?}"
    );

    // The stats epoch moved at least once (something was learned) and
    // absorbing the final round's facts again is a no-op: converged.
    assert!(db.stats_epoch() > 0, "feedback rounds must learn facts");
    let last = db.last_query_metrics().expect("metrics").feedback;
    assert!(
        !db.absorb_feedback(&last),
        "converged loop must be a fixed point"
    );
}
