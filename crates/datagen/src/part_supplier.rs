//! The Part / Supplier schema of Example 2 (derived dependencies).

use gbj_engine::Database;
use gbj_types::{Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Part / Supplier workload.
#[derive(Debug, Clone, Copy)]
pub struct PartSupplierConfig {
    /// Number of parts.
    pub parts: usize,
    /// Number of part classes (`ClassCode` values).
    pub classes: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Fraction of parts with a NULL supplier.
    pub null_supplier_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartSupplierConfig {
    fn default() -> PartSupplierConfig {
        PartSupplierConfig {
            parts: 5_000,
            classes: 40,
            suppliers: 200,
            null_supplier_fraction: 0.05,
            seed: 42,
        }
    }
}

impl PartSupplierConfig {
    /// Build and populate the database.
    pub fn build(&self) -> Result<Database> {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE Supplier ( \
                 SupplierNo INTEGER PRIMARY KEY, \
                 Name VARCHAR(30) NOT NULL, \
                 Address VARCHAR(60)); \
             CREATE TABLE Part ( \
                 ClassCode INTEGER, \
                 PartNo INTEGER, \
                 PartName VARCHAR(30) NOT NULL, \
                 SupplierNo INTEGER REFERENCES Supplier, \
                 PRIMARY KEY (ClassCode, PartNo));",
        )?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        db.insert_rows(
            "Supplier",
            (0..self.suppliers).map(|s| {
                vec![
                    Value::Int(s as i64),
                    Value::str(format!("Supplier{s}")),
                    Value::str(format!("{s} Industrial Way")),
                ]
            }),
        )?;
        db.insert_rows(
            "Part",
            (0..self.parts).map(|p| {
                let class = (p % self.classes) as i64;
                let part_no = (p / self.classes) as i64;
                let supplier = if rng.gen_bool(self.null_supplier_fraction.clamp(0.0, 1.0)) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..self.suppliers as i64))
                };
                vec![
                    Value::Int(class),
                    Value::Int(part_no),
                    Value::str(format!("Part-{class}-{part_no}")),
                    supplier,
                ]
            }),
        )?;
        Ok(db)
    }

    /// Example 2's derived-table query (`ClassCode = 25` fixed).
    #[must_use]
    pub fn derived_table_query(&self) -> &'static str {
        "SELECT P.PartNo, P.PartName, S.SupplierNo, S.Name \
         FROM Part P, Supplier S \
         WHERE P.ClassCode = 25 AND P.SupplierNo = S.SupplierNo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_fd::fd_holds_in;

    fn small() -> PartSupplierConfig {
        PartSupplierConfig {
            parts: 400,
            classes: 30, // class 25 exists
            suppliers: 20,
            null_supplier_fraction: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn builds() {
        let db = small().build().unwrap();
        assert_eq!(db.storage().table_data("Part").unwrap().len(), 400);
        assert_eq!(db.storage().table_data("Supplier").unwrap().len(), 20);
    }

    /// Example 2's claims, checked on live data: in the derived table,
    /// PartNo is a key, and Name is functionally dependent on
    /// SupplierNo.
    #[test]
    fn example2_derived_dependencies_hold_on_data() {
        let cfg = small();
        let db = cfg.build().unwrap();
        let rows = db.query(cfg.derived_table_query()).unwrap();
        assert!(!rows.is_empty());
        let data: Vec<&[gbj_types::Value]> = rows.rows.iter().map(Vec::as_slice).collect();
        // Columns: PartNo, PartName, SupplierNo, Name.
        assert!(
            fd_holds_in(data.iter().copied(), &[0], &[1, 2, 3]),
            "PartNo is a key of the derived table"
        );
        assert!(
            fd_holds_in(data.iter().copied(), &[2], &[3]),
            "SupplierNo -> Name survives derivation"
        );
    }
}
