//! Figure 8 / Example 4: the counter-example where pushing the group-by
//! down is valid but *slower*. The cost model must decline it.
//!
//! Run with: `cargo run --release --example adversarial_figure8`

use std::time::Instant;

use gbj::datagen::AdversarialConfig;
use gbj::engine::{PlanChoice, PushdownPolicy};

fn main() -> gbj::Result<()> {
    let cfg = AdversarialConfig::paper();
    println!(
        "building Figure 8 instance: |A|={}, |B|={}, join={}, groups(A)≈{} …",
        cfg.a_rows, cfg.b_rows, cfg.join_rows, cfg.a_groups
    );
    let mut db = cfg.build()?;
    let sql = cfg.query();

    for (policy, label) in [
        (PushdownPolicy::Never, "Plan 1 (lazy)"),
        (PushdownPolicy::Always, "Plan 2 (eager)"),
    ] {
        db.options_mut().policy = policy;
        let start = Instant::now();
        let (rows, profile, _) = db.query_report(sql)?;
        let elapsed = start.elapsed();
        println!("\n=== {label} ===");
        println!("{}", profile.display_tree());
        println!("rows: {}, time: {elapsed:?}", rows.len());
    }

    db.options_mut().policy = PushdownPolicy::CostBased;
    let report = db.plan_query(sql)?;
    println!(
        "\n=== engine decision ===\nchoice: {:?}\nreason: {}",
        report.choice, report.reason
    );
    assert_eq!(
        report.choice,
        PlanChoice::Lazy,
        "the cost model must decline the unprofitable rewrite"
    );
    println!("cost model correctly keeps the lazy plan ✓");
    Ok(())
}
