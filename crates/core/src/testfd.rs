//! The `TestFD` algorithm (paper Section 6.3).
//!
//! A fast, sufficient test for the Main Theorem's conditions. It
//! exploits only primary/candidate keys and the equality atoms of the
//! WHERE clause plus column/domain constraints:
//!
//! 1. Convert `C1 ∧ C0 ∧ C2 ∧ T1 ∧ T2` into CNF `D1 ∧ … ∧ Dm`.
//! 2. Delete every `Di` containing an atom that is not Type 1
//!    (`column = constant`) or Type 2 (`column = column`).
//! 3. If nothing remains, answer NO; otherwise convert to DNF
//!    `E1 ∨ … ∨ En`.
//! 4. For each disjunct `Ei`: seed a set `S` with `GA1 ∪ GA2` and the
//!    Type-1 constant columns, close it transitively over the Type-2
//!    equalities and the key dependencies, then require
//!    (d) a candidate key of every `R2` relation in `S`  — proves FD2 —
//!    (h) `GA1+ ⊆ S`                                     — proves FD1.
//! 5. If every disjunct passes, answer YES.
//!
//! YES is sound (Theorem 4: the FDs then hold in the join result); NO
//! is *not* a proof of invalidity — the transformation might still be
//! valid, TestFD just cannot see it.

use std::collections::BTreeSet;
use std::fmt;

use gbj_expr::{conjuncts, from_cnf, to_cnf, to_dnf, AtomClass, Expr};
use gbj_fd::{ClosureTrace, FdContext};
use gbj_types::ColumnRef;

use crate::partition::Partition;

/// The per-disjunct record of TestFD's Step 4, rich enough to print the
/// paper's Example 3 walk-through verbatim.
#[derive(Debug, Clone)]
pub struct DisjunctTrace {
    /// The atoms of this disjunct `Ei`.
    pub atoms: Vec<Expr>,
    /// Step (a)/(e): the seed `GA1 ∪ GA2`.
    pub seed: BTreeSet<ColumnRef>,
    /// Step (b)/(f): the seed plus Type-1 constant columns.
    pub after_constants: BTreeSet<ColumnRef>,
    /// Step (c)/(g): the transitive closure, with provenance.
    pub closure: ClosureTrace,
    /// Step (d): for each `R2` relation, whether one of its candidate
    /// keys is contained in the closure.
    pub key_checks: Vec<(String, bool)>,
    /// Step (h): whether `GA1+` is contained in the closure.
    pub ga1_plus_contained: bool,
}

impl DisjunctTrace {
    /// Whether this disjunct passes both checks.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.ga1_plus_contained && self.key_checks.iter().all(|(_, ok)| *ok)
    }
}

/// The full trace of one TestFD run.
#[derive(Debug, Clone, Default)]
pub struct TestFdTrace {
    /// CNF clauses dropped in Step 2 (contained non-equality atoms).
    pub dropped_clauses: Vec<String>,
    /// CNF clauses kept after Step 2.
    pub kept_clauses: Vec<String>,
    /// Step-4 traces, one per DNF disjunct.
    pub disjuncts: Vec<DisjunctTrace>,
    /// Why the answer is NO, when it is.
    pub failure: Option<String>,
}

impl fmt::Display for TestFdTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.dropped_clauses.is_empty() {
            writeln!(f, "dropped clauses: {}", self.dropped_clauses.join("; "))?;
        }
        writeln!(f, "kept clauses: {}", self.kept_clauses.join("; "))?;
        for (i, d) in self.disjuncts.iter().enumerate() {
            writeln!(f, "disjunct E{}:", i + 1)?;
            writeln!(f, "{}", d.closure)?;
            for (rel, ok) in &d.key_checks {
                writeln!(f, "  key of {rel} in S: {}", if *ok { "yes" } else { "NO" })?;
            }
            writeln!(
                f,
                "  GA1+ in S: {}",
                if d.ga1_plus_contained { "yes" } else { "NO" }
            )?;
        }
        if let Some(reason) = &self.failure {
            writeln!(f, "answer: NO ({reason})")?;
        } else {
            writeln!(f, "answer: YES")?;
        }
        Ok(())
    }
}

/// The result of running TestFD.
#[derive(Debug, Clone)]
pub struct TestFdOutcome {
    /// YES — FD1 and FD2 are guaranteed to hold in the join result.
    pub valid: bool,
    /// Full trace for diagnostics / the experiment reports.
    pub trace: TestFdTrace,
}

/// Run TestFD for a partitioned query.
///
/// `constraint_conjuncts` carries the paper's `T1 ∧ T2` — Boolean
/// renderings of the column/domain/assertion constraints, qualified
/// like the query's columns (see [`crate::theorem3`]). Pass an empty
/// slice to use only the WHERE clause.
#[must_use]
pub fn test_fd(
    partition: &Partition,
    fd_ctx: &FdContext,
    constraint_conjuncts: &[Expr],
) -> TestFdOutcome {
    let mut trace = TestFdTrace::default();

    // Step 1: CNF of C1 ∧ C0 ∧ C2 ∧ T1 ∧ T2. Each stored conjunct may
    // itself contain ORs, so normalise individually and concatenate.
    let mut clauses: Vec<Vec<Expr>> = Vec::new();
    let all_conjuncts = partition
        .parts
        .c1
        .iter()
        .chain(&partition.parts.c0)
        .chain(&partition.parts.c2)
        .chain(constraint_conjuncts);
    for conjunct in all_conjuncts {
        match to_cnf(conjunct) {
            Ok(cs) => clauses.extend(cs),
            Err(_) => {
                // Too irregular to normalise: conservatively treat the
                // whole conjunct as a non-equality clause and drop it.
                trace.dropped_clauses.push(conjunct.to_string());
            }
        }
    }

    // Step 2: drop clauses containing a non-Type-1/2 atom.
    let mut kept: Vec<Vec<Expr>> = Vec::new();
    for clause in clauses {
        let usable = clause.iter().all(|atom| AtomClass::of(atom).is_usable());
        let rendered = clause
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" OR ");
        if usable {
            trace.kept_clauses.push(rendered);
            kept.push(clause);
        } else {
            trace.dropped_clauses.push(rendered);
        }
    }

    // Step 3: empty ⇒ NO; otherwise DNF.
    if kept.is_empty() {
        trace.failure = Some("no usable equality clauses remain (Step 3)".into());
        return TestFdOutcome {
            valid: false,
            trace,
        };
    }
    let Some(kept_expr) = from_cnf(&kept) else {
        trace.failure = Some("internal: empty CNF reconstruction".into());
        return TestFdOutcome {
            valid: false,
            trace,
        };
    };
    let dnf = match to_dnf(&kept_expr) {
        Ok(d) => d,
        Err(_) => {
            trace.failure = Some("DNF conversion exceeded the clause budget".into());
            return TestFdOutcome {
                valid: false,
                trace,
            };
        }
    };

    // Step 4: per-disjunct closure and checks.
    let seed = partition.grouping_columns();
    let mut valid = true;
    for atoms in dnf {
        let fds = fd_ctx.fd_set(&atoms);
        let closure = fds.closure_traced(&seed);

        let mut after_constants = seed.clone();
        for atom in &atoms {
            if let AtomClass::ColumnEqConstant(c, _) = AtomClass::of(atom) {
                after_constants.insert(c);
            }
        }

        // Step (d): a candidate key of each R2 relation must be in S.
        let mut key_checks = Vec::new();
        for rel in &partition.r2 {
            let keys = fd_ctx.keys_of(rel);
            let ok = !keys.is_empty()
                && keys
                    .iter()
                    .any(|key| key.iter().all(|c| closure.result.contains(c)));
            key_checks.push((rel.clone(), ok));
        }

        // Step (h): GA1+ ⊆ S.
        let ga1_plus_contained = partition
            .ga1_plus
            .iter()
            .all(|c| closure.result.contains(c));

        let disjunct = DisjunctTrace {
            atoms,
            seed: seed.clone(),
            after_constants,
            closure,
            key_checks,
            ga1_plus_contained,
        };
        if !disjunct.passes() {
            valid = false;
            let why = if disjunct.ga1_plus_contained {
                "a candidate key of R2 is not derivable (Step 4d)"
            } else {
                "GA1+ is not derivable from (GA1, GA2) (Step 4h)"
            };
            trace.failure = Some(why.into());
        }
        trace.disjuncts.push(disjunct);
        if !valid {
            break; // the paper stops at the first failing disjunct
        }
    }

    TestFdOutcome { valid, trace }
}

/// Convenience: the atoms of a conjunction, for building contexts.
#[must_use]
pub fn conjunct_atoms(expr: &Expr) -> Vec<Expr> {
    conjuncts(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_catalog::{ColumnDef, Constraint, TableDef};
    use gbj_expr::{AggregateCall, AggregateFunction};
    use gbj_plan::{BlockRelation, QueryBlock, SelectItem};
    use gbj_types::{DataType, Field, Schema};

    fn base(table: &str, qualifier: &str, cols: &[(&str, DataType)]) -> BlockRelation {
        BlockRelation::Base {
            table: table.into(),
            qualifier: qualifier.into(),
            schema: Schema::new(
                cols.iter()
                    .map(|(n, t)| Field::new(*n, *t, true).with_qualifier(qualifier))
                    .collect(),
            ),
        }
    }

    fn user_account_def() -> TableDef {
        TableDef::new(
            "UserAccount",
            vec![
                ColumnDef::new("UserId", DataType::Int64),
                ColumnDef::new("Machine", DataType::Utf8),
                ColumnDef::new("UserName", DataType::Utf8),
            ],
        )
        .with_constraint(Constraint::PrimaryKey(vec![
            "UserId".into(),
            "Machine".into(),
        ]))
        .validate()
        .unwrap()
    }

    fn printer_auth_def() -> TableDef {
        TableDef::new(
            "PrinterAuth",
            vec![
                ColumnDef::new("UserId", DataType::Int64),
                ColumnDef::new("Machine", DataType::Utf8),
                ColumnDef::new("PNo", DataType::Int64),
                ColumnDef::new("Usage", DataType::Int64),
            ],
        )
        .with_constraint(Constraint::PrimaryKey(vec![
            "UserId".into(),
            "Machine".into(),
            "PNo".into(),
        ]))
        .validate()
        .unwrap()
    }

    fn printer_def() -> TableDef {
        TableDef::new(
            "Printer",
            vec![
                ColumnDef::new("PNo", DataType::Int64),
                ColumnDef::new("Speed", DataType::Int64),
                ColumnDef::new("Make", DataType::Utf8),
            ],
        )
        .with_constraint(Constraint::PrimaryKey(vec!["PNo".into()]))
        .validate()
        .unwrap()
    }

    fn example3_block() -> QueryBlock {
        let mut b = QueryBlock::new(vec![
            base(
                "UserAccount",
                "U",
                &[
                    ("UserId", DataType::Int64),
                    ("Machine", DataType::Utf8),
                    ("UserName", DataType::Utf8),
                ],
            ),
            base(
                "PrinterAuth",
                "A",
                &[
                    ("UserId", DataType::Int64),
                    ("Machine", DataType::Utf8),
                    ("PNo", DataType::Int64),
                    ("Usage", DataType::Int64),
                ],
            ),
            base(
                "Printer",
                "P",
                &[
                    ("PNo", DataType::Int64),
                    ("Speed", DataType::Int64),
                    ("Make", DataType::Utf8),
                ],
            ),
        ]);
        b.predicate = vec![
            Expr::col("U", "UserId").eq(Expr::col("A", "UserId")),
            Expr::col("U", "Machine").eq(Expr::col("A", "Machine")),
            Expr::col("A", "PNo").eq(Expr::col("P", "PNo")),
            Expr::col("U", "Machine").eq(Expr::lit("dragon")),
        ];
        b.group_by = vec![
            ColumnRef::qualified("U", "UserId"),
            ColumnRef::qualified("U", "UserName"),
        ];
        b.aggregates = vec![
            (
                AggregateCall::new(AggregateFunction::Sum, Expr::col("A", "Usage")),
                "TotUsage".into(),
            ),
            (
                AggregateCall::new(AggregateFunction::Max, Expr::col("P", "Speed")),
                "MaxSpeed".into(),
            ),
        ];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("U", "UserId"),
                alias: "UserId".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("U", "UserName"),
                alias: "UserName".into(),
            },
            SelectItem::Aggregate { index: 0 },
            SelectItem::Aggregate { index: 1 },
        ];
        b
    }

    fn example3_ctx() -> FdContext {
        let mut ctx = FdContext::new();
        ctx.add_table("U", user_account_def());
        ctx.add_table("A", printer_auth_def());
        ctx.add_table("P", printer_def());
        ctx
    }

    /// The paper's Example 3 runs TestFD and answers YES, with
    /// S = {A.UserId, A.Machine, U.UserName, U.Machine, U.UserId}
    /// after the transitive closure of Step (c) (plus P's columns once
    /// the key of PrinterAuth fires — the paper elides those).
    #[test]
    fn example3_testfd_says_yes() {
        let b = example3_block();
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &example3_ctx(), &[]);
        assert!(out.valid, "trace:\n{}", out.trace);
        assert_eq!(out.trace.disjuncts.len(), 1);
        let d = &out.trace.disjuncts[0];

        // Step a/e: seed = GA1 ∪ GA2 = {U.UserId, U.UserName}.
        assert_eq!(
            d.seed,
            [
                ColumnRef::qualified("U", "UserId"),
                ColumnRef::qualified("U", "UserName")
            ]
            .into_iter()
            .collect()
        );
        // Step b/f: + U.Machine via U.Machine = 'dragon'.
        assert!(d
            .after_constants
            .contains(&ColumnRef::qualified("U", "Machine")));
        assert_eq!(d.after_constants.len(), 3);
        // Step c/g: closure contains the paper's S.
        for (t, c) in [
            ("A", "UserId"),
            ("A", "Machine"),
            ("U", "UserName"),
            ("U", "Machine"),
            ("U", "UserId"),
        ] {
            assert!(
                d.closure.result.contains(&ColumnRef::qualified(t, c)),
                "{t}.{c} missing from closure"
            );
        }
        // Step d: the key of U is in S.
        assert_eq!(d.key_checks, vec![("U".to_string(), true)]);
        // Step h: GA1+ = (A.UserId, A.Machine) ⊆ S.
        assert!(d.ga1_plus_contained);
        // Trace renders.
        let text = out.trace.to_string();
        assert!(text.contains("answer: YES"));
    }

    /// Without the constant `U.Machine = 'dragon'`, the key
    /// (UserId, Machine) of U is not derivable from (U.UserId,
    /// U.UserName): TestFD must answer NO.
    #[test]
    fn missing_constant_makes_testfd_say_no() {
        let mut b = example3_block();
        b.predicate.pop(); // drop U.Machine = 'dragon'
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &example3_ctx(), &[]);
        assert!(!out.valid);
        assert!(out.trace.failure.is_some());
        let text = out.trace.to_string();
        assert!(text.contains("answer: NO"));
    }

    /// If grouping includes U.Machine instead of relying on the
    /// constant, the key is again derivable.
    #[test]
    fn grouping_by_key_also_passes() {
        let mut b = example3_block();
        b.predicate.pop(); // no constant
        b.group_by = vec![
            ColumnRef::qualified("U", "UserId"),
            ColumnRef::qualified("U", "Machine"),
        ];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("U", "UserId"),
                alias: "UserId".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("U", "Machine"),
                alias: "Machine".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &example3_ctx(), &[]);
        assert!(out.valid, "trace:\n{}", out.trace);
    }

    /// R2 without any declared key can never satisfy FD2 via TestFD.
    #[test]
    fn keyless_r2_fails_step_d() {
        let mut ctx = FdContext::new();
        ctx.add_table(
            "U",
            TableDef::new(
                "UserAccount",
                vec![
                    ColumnDef::new("UserId", DataType::Int64),
                    ColumnDef::new("Machine", DataType::Utf8),
                    ColumnDef::new("UserName", DataType::Utf8),
                ],
            )
            .validate()
            .unwrap(),
        );
        ctx.add_table("A", printer_auth_def());
        ctx.add_table("P", printer_def());
        let b = example3_block();
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &ctx, &[]);
        assert!(!out.valid);
        assert_eq!(out.trace.disjuncts[0].key_checks, vec![("U".into(), false)]);
    }

    /// Non-equality conjuncts are dropped (Step 2) without breaking the
    /// algorithm when the equalities suffice.
    #[test]
    fn non_equality_clauses_are_dropped_but_answer_stays_yes() {
        let mut b = example3_block();
        b.predicate
            .push(Expr::col("P", "Speed").binary(gbj_expr::BinaryOp::Gt, Expr::lit(100i64)));
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &example3_ctx(), &[]);
        assert!(out.valid);
        assert_eq!(out.trace.dropped_clauses.len(), 1);
        assert!(out.trace.dropped_clauses[0].contains("P.Speed"));
    }

    /// A disjunctive constant predicate splits into DNF disjuncts and
    /// every disjunct must pass Step 4.
    #[test]
    fn disjunctive_predicate_checks_every_disjunct() {
        let mut b = example3_block();
        b.predicate.pop();
        b.predicate.push(
            Expr::col("U", "Machine")
                .eq(Expr::lit("dragon"))
                .or(Expr::col("U", "Machine").eq(Expr::lit("tiger"))),
        );
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &example3_ctx(), &[]);
        assert!(out.valid, "both disjuncts pin U.Machine to a constant");
        assert_eq!(out.trace.disjuncts.len(), 2);

        // Mixed disjunction where one branch gives no constant: the
        // whole clause is dropped in Step 2 (it still contains only
        // equality atoms, so it is kept — but the disjunct without the
        // constant fails Step d).
        let mut b2 = example3_block();
        b2.predicate.pop();
        b2.predicate.push(
            Expr::col("U", "Machine")
                .eq(Expr::lit("dragon"))
                .or(Expr::col("U", "UserName").eq(Expr::lit("root"))),
        );
        let p2 = Partition::minimal(&b2).unwrap();
        let out2 = test_fd(&p2, &example3_ctx(), &[]);
        assert!(!out2.valid, "the UserName branch cannot derive the key");
    }

    /// Constraint conjuncts (T1/T2) participate: pinning U.Machine via a
    /// CHECK-style equality makes the query without the WHERE constant
    /// pass.
    #[test]
    fn constraint_conjuncts_participate() {
        let mut b = example3_block();
        b.predicate.pop(); // remove the WHERE constant
        let p = Partition::minimal(&b).unwrap();
        let t2 = vec![Expr::col("U", "Machine").eq(Expr::lit("dragon"))];
        let out = test_fd(&p, &example3_ctx(), &t2);
        assert!(out.valid);
    }

    /// Example 1 (Employee ⋈ Department grouped by D.DeptID, D.Name):
    /// the key DeptID of Department is in GA, so TestFD says YES.
    #[test]
    fn example1_passes() {
        let mut ctx = FdContext::new();
        ctx.add_table(
            "E",
            TableDef::new(
                "Employee",
                vec![
                    ColumnDef::new("EmpID", DataType::Int64),
                    ColumnDef::new("DeptID", DataType::Int64),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["EmpID".into()]))
            .validate()
            .unwrap(),
        );
        ctx.add_table(
            "D",
            TableDef::new(
                "Department",
                vec![
                    ColumnDef::new("DeptID", DataType::Int64),
                    ColumnDef::new("Name", DataType::Utf8),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["DeptID".into()]))
            .validate()
            .unwrap(),
        );

        let mut b = QueryBlock::new(vec![
            base(
                "Employee",
                "E",
                &[("EmpID", DataType::Int64), ("DeptID", DataType::Int64)],
            ),
            base(
                "Department",
                "D",
                &[("DeptID", DataType::Int64), ("Name", DataType::Utf8)],
            ),
        ]);
        b.predicate = vec![Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID"))];
        b.group_by = vec![
            ColumnRef::qualified("D", "DeptID"),
            ColumnRef::qualified("D", "Name"),
        ];
        b.aggregates = vec![(
            AggregateCall::new(AggregateFunction::Count, Expr::col("E", "EmpID")),
            "cnt".into(),
        )];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("D", "DeptID"),
                alias: "DeptID".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("D", "Name"),
                alias: "Name".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];

        let p = Partition::minimal(&b).unwrap();
        // GA1+ = {E.DeptID}, derivable via E.DeptID = D.DeptID.
        let out = test_fd(&p, &ctx, &[]);
        assert!(out.valid, "trace:\n{}", out.trace);
    }

    /// Grouping an Employee-side query by a non-key of Department must
    /// fail: two departments can share a Name, FD2 is not derivable.
    #[test]
    fn grouping_by_non_key_of_r2_fails() {
        let mut ctx = FdContext::new();
        ctx.add_table(
            "E",
            TableDef::new(
                "Employee",
                vec![
                    ColumnDef::new("EmpID", DataType::Int64),
                    ColumnDef::new("DeptID", DataType::Int64),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["EmpID".into()]))
            .validate()
            .unwrap(),
        );
        ctx.add_table(
            "D",
            TableDef::new(
                "Department",
                vec![
                    ColumnDef::new("DeptID", DataType::Int64),
                    ColumnDef::new("Name", DataType::Utf8),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["DeptID".into()]))
            .validate()
            .unwrap(),
        );
        let mut b = QueryBlock::new(vec![
            base(
                "Employee",
                "E",
                &[("EmpID", DataType::Int64), ("DeptID", DataType::Int64)],
            ),
            base(
                "Department",
                "D",
                &[("DeptID", DataType::Int64), ("Name", DataType::Utf8)],
            ),
        ]);
        b.predicate = vec![Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID"))];
        b.group_by = vec![ColumnRef::qualified("D", "Name")];
        b.aggregates = vec![(
            AggregateCall::new(AggregateFunction::Count, Expr::col("E", "EmpID")),
            "cnt".into(),
        )];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("D", "Name"),
                alias: "Name".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];
        let p = Partition::minimal(&b).unwrap();
        let out = test_fd(&p, &ctx, &[]);
        assert!(!out.valid);
    }
}
