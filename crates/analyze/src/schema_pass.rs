//! Pass 1: schema and type soundness over logical plans.
//!
//! Walks the plan top-down with a [`PlanPath`] cursor and checks, per
//! node:
//!
//! * the output schema is derivable from the children's (GBJ102),
//! * every column reference in the node's expressions resolves against
//!   the input schema (GBJ101),
//! * Filter/Join predicates are boolean (GBJ103),
//! * every comparison's operand types are compatible under the paper's
//!   three-valued logic — i.e. [`Expr::data_type`] accepts it (GBJ104).
//!
//! A node whose children already failed is not re-reported: the deepest
//! broken node carries the diagnostic, parents stay silent (their
//! failure is a consequence, not a cause).

use gbj_expr::Expr;
use gbj_plan::LogicalPlan;
use gbj_types::{DataType, Schema};

use crate::diag::{Code, Diagnostic, PlanPath, Report};

/// Run the schema/type pass over a plan.
#[must_use]
pub fn check_plan(plan: &LogicalPlan) -> Report {
    let mut report = Report::new(String::new());
    walk(plan, &PlanPath::root(plan.label()), &mut report);
    report
}

/// Returns whether this subtree is sound (children included); pushes
/// diagnostics for the deepest failures only.
fn walk(plan: &LogicalPlan, path: &PlanPath, report: &mut Report) -> bool {
    let mut children_ok = true;
    for (i, child) in plan.children().iter().enumerate() {
        let child_path = path.child(i, child.label());
        if !walk(child, &child_path, report) {
            children_ok = false;
        }
    }
    if !children_ok {
        // Parents of broken nodes would only echo the same failure.
        return false;
    }

    // Children are sound, so their schemas compute.
    let input_schema = match input_schema_of(plan) {
        Ok(s) => s,
        Err(e) => {
            report.push(
                Diagnostic::new(Code::UnderivableSchema, format!("input schema: {e}"))
                    .at(path.clone()),
            );
            return false;
        }
    };

    let mut ok = true;
    for expr in node_exprs(plan) {
        ok &= check_expr(expr, &input_schema, path, report);
    }

    // Predicate booleanness (only meaningful when the expressions
    // themselves resolved).
    if ok {
        let predicate = match plan {
            LogicalPlan::Filter { predicate, .. } => Some(("filter predicate", predicate)),
            LogicalPlan::Join { condition, .. } => Some(("join condition", condition)),
            _ => None,
        };
        if let Some((what, pred)) = predicate {
            match pred.data_type(&input_schema) {
                Ok(DataType::Boolean) => {}
                Ok(other) => {
                    report.push(
                        Diagnostic::new(
                            Code::NonBooleanPredicate,
                            format!("{what} `{pred}` has type {other:?}, expected Boolean"),
                        )
                        .at(path.clone()),
                    );
                    ok = false;
                }
                Err(e) => {
                    report.push(
                        Diagnostic::new(Code::IncomparableTypes, format!("{what} `{pred}`: {e}"))
                            .at(path.clone()),
                    );
                    ok = false;
                }
            }
        }
    }

    // Finally the node's own output schema.
    if ok {
        if let Err(e) = plan.schema() {
            report.push(
                Diagnostic::new(Code::UnderivableSchema, format!("output schema: {e}"))
                    .at(path.clone()),
            );
            ok = false;
        }
    }
    ok
}

/// The combined input schema a node's expressions are evaluated over.
pub(crate) fn input_schema_of(plan: &LogicalPlan) -> gbj_types::Result<Schema> {
    match plan {
        LogicalPlan::Scan { schema, .. } => Ok(schema.clone()),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Sort { input, .. } => input.schema(),
        LogicalPlan::CrossJoin { left, right } | LogicalPlan::Join { left, right, .. } => {
            Ok(left.schema()?.join(&right.schema()?))
        }
    }
}

/// Every expression a node evaluates against its input schema.
fn node_exprs(plan: &LogicalPlan) -> Vec<&Expr> {
    match plan {
        LogicalPlan::Scan { .. }
        | LogicalPlan::CrossJoin { .. }
        | LogicalPlan::SubqueryAlias { .. } => vec![],
        LogicalPlan::Filter { predicate, .. } => vec![predicate],
        LogicalPlan::Join { condition, .. } => vec![condition],
        LogicalPlan::Project { exprs, .. } => exprs.iter().map(|(e, _)| e).collect(),
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            ..
        } => group_by
            .iter()
            .chain(aggregates.iter().filter_map(|(c, _)| c.arg.as_ref()))
            .collect(),
        LogicalPlan::Sort { keys, .. } => keys.iter().map(|(e, _)| e).collect(),
    }
}

/// Check one expression: column resolution first (GBJ101 per unresolved
/// column), then comparison type-compatibility (GBJ104).
fn check_expr(expr: &Expr, schema: &Schema, path: &PlanPath, report: &mut Report) -> bool {
    let mut ok = true;
    for col in expr.columns() {
        if schema.resolve(&col).is_err() {
            report.push(
                Diagnostic::new(
                    Code::UnresolvedColumn,
                    format!("column {col} does not resolve in the input schema"),
                )
                .at(path.clone())
                .note(format!("in expression `{expr}`")),
            );
            ok = false;
        }
    }
    if !ok {
        return false;
    }
    check_comparisons(expr, schema, path, report) && ok
}

/// Recursively find the comparison (or arithmetic) subexpression whose
/// operand types clash; report it with both operand types spelled out.
fn check_comparisons(expr: &Expr, schema: &Schema, path: &PlanPath, report: &mut Report) -> bool {
    match expr {
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Not(e) | Expr::Neg(e) => check_comparisons(e, schema, path, report),
        Expr::IsNull { expr, .. } => check_comparisons(expr, schema, path, report),
        Expr::Binary { left, op, right } => {
            let mut ok = check_comparisons(left, schema, path, report);
            ok &= check_comparisons(right, schema, path, report);
            if !ok {
                return false; // the deepest clash is already reported
            }
            // Both operands are individually well-typed; check this
            // combination.
            if expr.data_type(schema).is_err() {
                let lt = left.data_type(schema);
                let rt = right.data_type(schema);
                let describe = |t: gbj_types::Result<DataType>| match t {
                    Ok(d) => format!("{d:?}"),
                    Err(_) => "?".to_string(),
                };
                let kind = if op.is_comparison() {
                    "comparison"
                } else if op.is_logical() {
                    "logical connective"
                } else {
                    "arithmetic"
                };
                report.push(
                    Diagnostic::new(
                        Code::IncomparableTypes,
                        format!(
                            "{kind} `{expr}` over incompatible types {} {op} {}",
                            describe(lt),
                            describe(rt)
                        ),
                    )
                    .at(path.clone()),
                );
                return false;
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::Field;

    fn emp_scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "Employee".into(),
            qualifier: "E".into(),
            schema: Schema::new(vec![
                Field::new("EmpID", DataType::Int64, false).with_qualifier("E"),
                Field::new("Name", DataType::Utf8, true).with_qualifier("E"),
            ]),
        }
    }

    #[test]
    fn sound_plan_is_clean() {
        let plan = LogicalPlan::Filter {
            input: Box::new(emp_scan()),
            predicate: Expr::col("E", "EmpID").eq(Expr::lit(1i64)),
        };
        let r = check_plan(&plan);
        assert!(r.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn unresolved_column_is_gbj101() {
        let plan = LogicalPlan::Filter {
            input: Box::new(emp_scan()),
            predicate: Expr::col("E", "Nope").eq(Expr::lit(1i64)),
        };
        let r = check_plan(&plan);
        assert_eq!(r.codes(), vec![Code::UnresolvedColumn]);
        assert!(r.render_text().contains("E.Nope"));
    }

    #[test]
    fn non_boolean_predicate_is_gbj103() {
        let plan = LogicalPlan::Filter {
            input: Box::new(emp_scan()),
            predicate: Expr::col("E", "EmpID"),
        };
        let r = check_plan(&plan);
        assert_eq!(r.codes(), vec![Code::NonBooleanPredicate]);
    }

    #[test]
    fn incompatible_comparison_is_gbj104() {
        let plan = LogicalPlan::Filter {
            input: Box::new(emp_scan()),
            predicate: Expr::col("E", "Name").eq(Expr::lit(1i64)),
        };
        let r = check_plan(&plan);
        assert_eq!(r.codes(), vec![Code::IncomparableTypes]);
        assert!(r.render_text().contains("Utf8"), "{}", r.render_text());
    }

    #[test]
    fn deepest_failure_wins() {
        // Broken scan predicate below a sound aggregate: only the
        // Filter reports; the Aggregate above stays silent.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(emp_scan()),
                predicate: Expr::col("E", "Missing").eq(Expr::lit(1i64)),
            }),
            group_by: vec![Expr::col("E", "Name")],
            aggregates: vec![],
        };
        let r = check_plan(&plan);
        assert_eq!(r.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, Code::UnresolvedColumn);
        assert_eq!(d.path.as_ref().map(|p| p.span()), Some("$.0".into()));
    }

    #[test]
    fn join_condition_is_checked_over_both_sides() {
        let right = LogicalPlan::Scan {
            table: "Department".into(),
            qualifier: "D".into(),
            schema: Schema::new(vec![
                Field::new("DeptID", DataType::Int64, false).with_qualifier("D")
            ]),
        };
        let plan = LogicalPlan::Join {
            left: Box::new(emp_scan()),
            right: Box::new(right),
            condition: Expr::col("E", "EmpID").eq(Expr::col("D", "DeptID")),
        };
        assert!(check_plan(&plan).is_empty());
    }

    #[test]
    fn sort_keys_are_checked() {
        let plan = LogicalPlan::Sort {
            input: Box::new(emp_scan()),
            keys: vec![(Expr::col("E", "Ghost"), true)],
        };
        let r = check_plan(&plan);
        assert_eq!(r.codes(), vec![Code::UnresolvedColumn]);
    }
}
