//! Sharded-execution communication sweep — the data behind
//! EXPERIMENTS.md's X17 and the committed `BENCH_sharding.json`
//! baseline CI's sharding job compares against.
//!
//! One fan-in workload (the shape of X10), no declared partition keys,
//! run at 1/2/4/8 shards. At each shard count both plan shapes run:
//! the lazy plan ships every surviving fact row to the join's exchange;
//! the certified eager plan runs its pre-aggregation as a *combiner
//! below the exchange* and ships per-group partials instead. The
//! headline number is `shipped_ratio` — lazy wire bytes over eager wire
//! bytes — the paper's §7 distributed claim as a measurement. Wall
//! clocks ride along (noisy; the bench_check policy treats drift as
//! advisory, but the shipped counters are deterministic).
//!
//! Sizes honour `GBJ_BENCH_SMALL=1` (CI smoke) like every other sweep.
//!
//! ```text
//! cargo run --release -p gbj-bench --bin sharding_sweep
//! ```

use std::num::NonZeroUsize;
use std::time::Instant;

use gbj_datagen::SweepConfig;
use gbj_engine::{Database, PushdownPolicy};
use gbj_types::{Error, Result};

fn small() -> bool {
    std::env::var("GBJ_BENCH_SMALL").is_ok_and(|v| v.trim() == "1")
}

/// Median wall-clock milliseconds of three runs plus the (run-invariant)
/// shipped-byte counter under `policy` at `shards`.
fn timed(
    db: &mut Database,
    policy: PushdownPolicy,
    shards: usize,
    sql: &str,
) -> Result<(f64, u64)> {
    db.options_mut().policy = policy;
    db.set_shards(
        NonZeroUsize::new(shards)
            .ok_or_else(|| Error::Internal("shard count must be non-zero".into()))?,
    );
    let mut samples: Vec<f64> = Vec::with_capacity(3);
    for _ in 0..3 {
        let start = Instant::now();
        db.query(sql)?;
        samples.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    samples.sort_by(f64::total_cmp);
    let shipped = db
        .last_query_metrics()
        .ok_or_else(|| Error::Internal("no metrics recorded".into()))?
        .shipped_bytes;
    Ok((samples[1], shipped))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sharding_sweep: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let scale = if small() { 8 } else { 1 };
    let cfg = SweepConfig {
        fact_rows: 10_000 / scale,
        dim_rows: 100,
        groups: 100,
        match_fraction: 1.0,
        skew: 0.0,
    };
    for shards in [1usize, 2, 4, 8] {
        let mut db = cfg.build()?;
        let (lazy_ms, lazy_bytes) = timed(&mut db, PushdownPolicy::Never, shards, cfg.query())?;
        let (eager_ms, eager_bytes) = timed(&mut db, PushdownPolicy::Always, shards, cfg.query())?;
        // Both shapes ship nothing at one shard; report ratio 1.
        let shipped_ratio = if eager_bytes == 0 {
            1.0
        } else {
            lazy_bytes as f64 / eager_bytes as f64
        };
        println!(
            "{{\"experiment\":\"sharding\",\"workload\":\"shards={}\",\"params\":\"fact={} dim={} groups={} match={}\",\
             \"lazy_shipped_bytes\":{},\"eager_shipped_bytes\":{},\"shipped_ratio\":{:.3},\
             \"lazy_ms\":{:.3},\"eager_ms\":{:.3},\"speedup\":{:.3}}}",
            shards,
            cfg.fact_rows,
            cfg.dim_rows,
            cfg.groups,
            cfg.match_fraction,
            lazy_bytes,
            eager_bytes,
            shipped_ratio,
            lazy_ms,
            eager_ms,
            lazy_ms / eager_ms.max(f64::MIN_POSITIVE),
        );
    }
    Ok(())
}
