//! Column substitution (paper Section 9, concluding remarks).
//!
//! > "Column substitution can be used to improve the chance of a query
//! > being tested transformable. First, column substitution can be
//! > employed to obtain a set of equivalent queries. Based on this set,
//! > all possible partitions of the tables can be performed and the
//! > resulting queries can all be tested."
//!
//! A top-level WHERE conjunct `a = b` guarantees that on every
//! surviving row the two columns are equal **and non-NULL** (equality
//! with a NULL is `unknown`, and `WHERE` keeps only `true`). Any
//! aggregate argument may therefore reference either column without
//! changing `F(AA)` — but the choice changes which tables carry
//! *aggregation columns*, and with it the R1/R2 partition. The classic
//! beneficiary: `COUNT(D.DeptID)` over an `E.DeptID = D.DeptID` join
//! can be rewritten to `COUNT(E.DeptID)`, freeing `D` to be the `R2`
//! side.

use std::collections::BTreeMap;

use gbj_expr::{AtomClass, Expr};
use gbj_plan::QueryBlock;
use gbj_types::ColumnRef;

/// Cap on the number of substituted variants generated per query, to
/// bound the (testable) search space.
const MAX_VARIANTS: usize = 8;

/// The equivalence classes induced by the top-level Type-2 equality
/// conjuncts of a block's WHERE clause.
#[must_use]
pub fn equality_classes(block: &QueryBlock) -> Vec<Vec<ColumnRef>> {
    // Union-find over columns, small-scale.
    let mut parent: BTreeMap<ColumnRef, ColumnRef> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<ColumnRef, ColumnRef>, c: &ColumnRef) -> ColumnRef {
        let p = parent.entry(c.clone()).or_insert_with(|| c.clone()).clone();
        if &p == c {
            return p;
        }
        let root = find(parent, &p);
        parent.insert(c.clone(), root.clone());
        root
    }
    for conjunct in &block.predicate {
        if let AtomClass::ColumnEqColumn(a, b) = AtomClass::of(conjunct) {
            let ra = find(&mut parent, &a);
            let rb = find(&mut parent, &b);
            if ra != rb {
                parent.insert(ra, rb);
            }
        }
    }
    let mut classes: BTreeMap<ColumnRef, Vec<ColumnRef>> = BTreeMap::new();
    let keys: Vec<ColumnRef> = parent.keys().cloned().collect();
    for c in keys {
        let root = find(&mut parent, &c);
        classes.entry(root).or_default().push(c);
    }
    classes.into_values().filter(|v| v.len() > 1).collect()
}

/// Generate equivalent blocks by substituting aggregate-argument
/// columns along the equality classes. The original block is *not*
/// included. Variants differ from the original in at least one
/// aggregation column; at most eight variants are generated.
#[must_use]
pub fn substitution_candidates(block: &QueryBlock) -> Vec<QueryBlock> {
    let classes = equality_classes(block);
    if classes.is_empty() {
        return vec![];
    }
    let class_of =
        |c: &ColumnRef| -> Option<&Vec<ColumnRef>> { classes.iter().find(|cls| cls.contains(c)) };

    // For each aggregation column that has alternatives, list the
    // substitutions (original first).
    let agg_cols: Vec<ColumnRef> = block.aggregation_columns().into_iter().collect();
    let mut choices: Vec<(ColumnRef, Vec<ColumnRef>)> = Vec::new();
    for col in agg_cols {
        if let Some(cls) = class_of(&col) {
            let alts: Vec<ColumnRef> = cls.iter().filter(|c| **c != col).cloned().collect();
            if !alts.is_empty() {
                choices.push((col, alts));
            }
        }
    }
    if choices.is_empty() {
        return vec![];
    }

    // Enumerate assignments (original or an alternative per column),
    // skipping the all-original assignment.
    let mut variants = Vec::new();
    let total: usize = choices.iter().map(|(_, alts)| alts.len() + 1).product();
    for idx in 1..total {
        if variants.len() >= MAX_VARIANTS {
            break;
        }
        let mut rest = idx;
        let mut mapping: BTreeMap<ColumnRef, ColumnRef> = BTreeMap::new();
        for (col, alts) in &choices {
            let n = alts.len() + 1;
            let pick = rest % n;
            rest /= n;
            if let Some(alt) = pick.checked_sub(1).and_then(|i| alts.get(i)) {
                mapping.insert(col.clone(), alt.clone());
            }
        }
        if mapping.is_empty() {
            continue;
        }
        let mut variant = block.clone();
        for (call, _) in &mut variant.aggregates {
            if let Some(arg) = &call.arg {
                let substituted =
                    arg.map_columns(&|c| mapping.get(c).cloned().unwrap_or_else(|| c.clone()));
                call.arg = Some(substituted);
            }
        }
        if variant.validate().is_ok() {
            variants.push(variant);
        }
    }
    variants
}

/// Convenience used by `eager_aggregate`: does the expression reference
/// any column in `cols`?
#[must_use]
pub fn references_any(expr: &Expr, cols: &[ColumnRef]) -> bool {
    expr.columns().iter().any(|c| cols.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_expr::{AggregateCall, AggregateFunction};
    use gbj_plan::{BlockRelation, SelectItem};
    use gbj_types::{DataType, Field, Schema};

    fn base(table: &str, q: &str, cols: &[&str]) -> BlockRelation {
        BlockRelation::Base {
            table: table.into(),
            qualifier: q.into(),
            schema: Schema::new(
                cols.iter()
                    .map(|n| Field::new(*n, DataType::Int64, true).with_qualifier(q))
                    .collect(),
            ),
        }
    }

    fn block_with_r2_aggregate() -> QueryBlock {
        let mut b = QueryBlock::new(vec![
            base("Employee", "E", &["EmpID", "DeptID"]),
            base("Department", "D", &["DeptID", "Budget"]),
        ]);
        b.predicate = vec![Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID"))];
        b.group_by = vec![ColumnRef::qualified("D", "DeptID")];
        b.aggregates = vec![(
            AggregateCall::new(AggregateFunction::Count, Expr::col("D", "DeptID")),
            "n".into(),
        )];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("D", "DeptID"),
                alias: "DeptID".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];
        b
    }

    #[test]
    fn equality_classes_from_conjuncts() {
        let b = block_with_r2_aggregate();
        let classes = equality_classes(&b);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 2);
        assert!(classes[0].contains(&ColumnRef::qualified("E", "DeptID")));
        assert!(classes[0].contains(&ColumnRef::qualified("D", "DeptID")));
    }

    #[test]
    fn transitive_equalities_merge_classes() {
        let mut b = block_with_r2_aggregate();
        b.relations.push(base("Third", "T", &["DeptID"]));
        b.predicate
            .push(Expr::col("D", "DeptID").eq(Expr::col("T", "DeptID")));
        let classes = equality_classes(&b);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 3);
    }

    #[test]
    fn substitution_rewrites_the_aggregate_argument() {
        let b = block_with_r2_aggregate();
        let variants = substitution_candidates(&b);
        assert_eq!(variants.len(), 1);
        let call = &variants[0].aggregates[0].0;
        assert_eq!(
            call.arg.as_ref().unwrap(),
            &Expr::col("E", "DeptID"),
            "COUNT(D.DeptID) becomes COUNT(E.DeptID)"
        );
        // Everything else is untouched.
        assert_eq!(variants[0].group_by, b.group_by);
        assert_eq!(variants[0].select, b.select);
    }

    #[test]
    fn no_equalities_no_variants() {
        let mut b = block_with_r2_aggregate();
        b.predicate =
            vec![Expr::col("E", "DeptID").binary(gbj_expr::BinaryOp::Lt, Expr::col("D", "DeptID"))];
        assert!(substitution_candidates(&b).is_empty());
        assert!(equality_classes(&b).is_empty());
    }

    #[test]
    fn aggregates_without_class_members_yield_nothing() {
        let mut b = block_with_r2_aggregate();
        // Aggregate over Budget, which is in no equality class.
        b.aggregates = vec![(
            AggregateCall::new(AggregateFunction::Sum, Expr::col("D", "Budget")),
            "s".into(),
        )];
        assert!(substitution_candidates(&b).is_empty());
    }

    #[test]
    fn variant_cap_is_respected() {
        // Five aggregation columns each with one alternative → 2^5 - 1
        // assignments, capped at MAX_VARIANTS.
        let mut b = QueryBlock::new(vec![
            base("L", "L", &["a", "b", "c", "d", "e", "k"]),
            base("R", "R", &["a", "b", "c", "d", "e", "k"]),
        ]);
        b.predicate = vec![
            Expr::col("L", "a").eq(Expr::col("R", "a")),
            Expr::col("L", "b").eq(Expr::col("R", "b")),
            Expr::col("L", "c").eq(Expr::col("R", "c")),
            Expr::col("L", "d").eq(Expr::col("R", "d")),
            Expr::col("L", "e").eq(Expr::col("R", "e")),
            Expr::col("L", "k").eq(Expr::col("R", "k")),
        ];
        b.group_by = vec![ColumnRef::qualified("R", "k")];
        b.aggregates = ["a", "b", "c", "d", "e"]
            .iter()
            .enumerate()
            .map(|(i, col)| {
                (
                    AggregateCall::new(AggregateFunction::Sum, Expr::col("L", *col)),
                    format!("s{i}"),
                )
            })
            .collect();
        b.select = vec![SelectItem::Column {
            col: ColumnRef::qualified("R", "k"),
            alias: "k".into(),
        }];
        b.select
            .extend((0..5).map(|index| SelectItem::Aggregate { index }));
        let variants = substitution_candidates(&b);
        assert_eq!(variants.len(), MAX_VARIANTS);
    }

    #[test]
    fn references_any_helper() {
        let e = Expr::col("A", "x").eq(Expr::col("B", "y"));
        assert!(references_any(&e, &[ColumnRef::qualified("A", "x")]));
        assert!(!references_any(&e, &[ColumnRef::qualified("C", "z")]));
    }
}
