//! Larger-scale end-to-end checks, plus a machine-independent test of
//! the cost model's *decision quality*: across the Section 7 sweep
//! grid, the engine's cost-based choice must match the plan that
//! demonstrably does less work — measured as total rows produced by all
//! operators (deterministic, unlike wall-clock time).

use gbj::datagen::{EmpDeptConfig, SweepConfig};
use gbj::engine::{PlanChoice, PushdownPolicy};
use gbj::exec::ProfileNode;
use gbj::Value;

mod common;

fn total_rows_produced(p: &ProfileNode) -> usize {
    p.rows_out + p.children.iter().map(total_rows_produced).sum::<usize>()
}

#[test]
fn emp_dept_at_20k_scale() {
    let cfg = EmpDeptConfig {
        employees: 20_000,
        departments: 200,
        null_dept_fraction: 0.01,
        seed: 99,
    };
    let mut db = cfg.build().unwrap();
    db.options_mut().policy = PushdownPolicy::Always;
    let (eager, eager_profile, _) = db.query_report(cfg.query()).unwrap();
    db.options_mut().policy = PushdownPolicy::Never;
    let (lazy, lazy_profile, _) = db.query_report(cfg.query()).unwrap();

    assert_eq!(lazy.len(), 200);
    assert!(lazy.multiset_eq(&eager));
    // Sanity on the totals: ~99% of employees are counted.
    let total: i64 = lazy
        .rows
        .iter()
        .map(|r| match r[2] {
            Value::Int(n) => n,
            _ => 0,
        })
        .sum();
    assert!(total > 19_000 && total <= 20_000, "total = {total}");
    // The eager plan does meaningfully less work here (both plans pay
    // the 20k-row scan; the lazy plan additionally pushes 20k rows
    // through the join).
    let we = total_rows_produced(&eager_profile);
    let wl = total_rows_produced(&lazy_profile);
    assert!(
        (we as f64) < 0.8 * wl as f64,
        "eager work {we} should be at least 20% under lazy work {wl}"
    );
}

/// Decision quality across the sweep grid: wherever the two plans'
/// work differs by ≥ 30%, the engine's cost-based choice picks the
/// lighter one.
#[test]
fn cost_based_choice_tracks_actual_work() {
    let grid = [
        // (groups, match_fraction) spanning both regimes.
        (10usize, 1.0f64),
        (100, 1.0),
        (2_000, 1.0),
        (4_000, 0.5),
        (4_000, 0.05),
        (4_000, 0.01),
    ];
    for (groups, frac) in grid {
        let cfg = SweepConfig {
            fact_rows: 5_000,
            dim_rows: 100.max(groups.min(1_000)),
            groups,
            match_fraction: frac,
            ..SweepConfig::default()
        };
        let mut db = cfg.build().unwrap();

        db.options_mut().policy = PushdownPolicy::Always;
        let (_, ep, _) = db.query_report(cfg.query()).unwrap();
        db.options_mut().policy = PushdownPolicy::Never;
        let (_, lp, _) = db.query_report(cfg.query()).unwrap();
        let (we, wl) = (total_rows_produced(&ep), total_rows_produced(&lp));

        db.options_mut().policy = PushdownPolicy::CostBased;
        let choice = db.plan_query(cfg.query()).unwrap().choice;

        let clear_cut = we.max(wl) as f64 / we.min(wl).max(1) as f64 >= 1.3;
        if clear_cut {
            let should_be_eager = we < wl;
            let picked_eager = choice == PlanChoice::Eager;
            assert_eq!(
                picked_eager, should_be_eager,
                "groups={groups} frac={frac}: work eager={we} lazy={wl}, choice={choice:?}"
            );
        }
    }
}

/// Adversarial parallel-vs-serial stress at ≥100k rows: one seeded
/// Fact table mixing the three regimes that break naive partitioned
/// aggregation — Zipf-skewed groups (some morsels all one key),
/// all-NULL group keys (every morsel contributes to the `=ⁿ` NULL
/// group), and a single mega-group (maximum cross-morsel merging) —
/// plus dangling and matching join keys. The parallel results must be
/// byte-identical to serial after canonical ordering, for both plan
/// shapes. Row counts are `--release`-friendly: one build, a handful of
/// queries.
#[test]
fn parallel_stress_at_100k_rows_matches_serial() {
    use gbj::engine::Database;
    use std::num::NonZeroUsize;

    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Dim (DimId INTEGER PRIMARY KEY, Cat VARCHAR(5) NOT NULL); \
         CREATE TABLE Fact (FId INTEGER PRIMARY KEY, K INTEGER, V INTEGER);",
    )
    .unwrap();
    db.insert_rows(
        "Dim",
        (0..64i64).map(|d| vec![Value::Int(d), Value::Str(format!("c{}", d % 5))]),
    )
    .unwrap();
    // Deterministic xorshift so the instance is seeded and replayable.
    let mut state = 0x5ca1_e100u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const N: i64 = 120_000;
    db.insert_rows(
        "Fact",
        (0..N).map(|i| {
            let k = match i % 3 {
                // Regime 1: Zipf-ish skew — key 0 gets ~half the rows,
                // the tail spreads over 64 keys (some dangling: >= 64
                // never matches Dim).
                0 => {
                    let r = next();
                    if r % 2 == 0 {
                        Value::Int(0)
                    } else {
                        Value::Int((r % 80) as i64)
                    }
                }
                // Regime 2: all-NULL group keys — one `=ⁿ` group.
                1 => Value::Null,
                // Regime 3: single mega-group.
                _ => Value::Int(7),
            };
            let v = if next() % 11 == 0 {
                Value::Null
            } else {
                Value::Int((next() % 1_000) as i64 - 500)
            };
            vec![Value::Int(i), k, v]
        }),
    )
    .unwrap();

    let queries = [
        "SELECT F.K, COUNT(F.FId), SUM(F.V), MIN(F.V), MAX(F.V) FROM Fact F GROUP BY F.K",
        "SELECT D.DimId, D.Cat, COUNT(F.FId), SUM(F.V) FROM Fact F, Dim D \
         WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    ];
    for sql in queries {
        for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
            db.options_mut().policy = policy;
            db.set_threads(NonZeroUsize::new(1).unwrap());
            let serial = db.query(sql).unwrap();
            for threads in [4usize, 8] {
                db.set_threads(NonZeroUsize::new(threads).unwrap());
                let got = db.query(sql).unwrap();
                // Byte-identical rows, not just multiset equality.
                assert_eq!(
                    got.rows, serial.rows,
                    "threads={threads} policy={policy:?}: {sql}"
                );
            }
        }
    }
}

/// The §7 invariant at scale, measured: eager join input ≤ lazy join
/// input at every grid point.
#[test]
fn join_input_invariant_at_scale() {
    for (groups, frac) in [(50usize, 1.0f64), (4_500, 0.02), (5_000, 1.0)] {
        let cfg = SweepConfig {
            fact_rows: 5_000,
            dim_rows: 100,
            groups,
            match_fraction: frac,
            ..SweepConfig::default()
        };
        let mut db = cfg.build().unwrap();
        let join_in = |p: &ProfileNode| common::find_join(p).map(ProfileNode::rows_in).unwrap_or(0);
        db.options_mut().policy = PushdownPolicy::Always;
        let (_, ep, _) = db.query_report(cfg.query()).unwrap();
        db.options_mut().policy = PushdownPolicy::Never;
        let (_, lp, _) = db.query_report(cfg.query()).unwrap();
        assert!(
            join_in(&ep) <= join_in(&lp),
            "groups={groups} frac={frac}: {} > {}",
            join_in(&ep),
            join_in(&lp)
        );
    }
}
