//! Shape-level costing of fully lowered plans.
//!
//! [`gbj_core::CostModel`] encodes the Section 7 trade-off over one
//! abstract grouped-join query (five summary cardinalities). After PR 8
//! the engine costs the *actual lowered plan trees* instead: the lazy
//! and eager candidates are both optimized to their physical-ready
//! shape, a per-node cardinality estimate is attached to each
//! ([`CardTree`], shape-congruent with the plan), and [`shape_cost`]
//! folds the same per-row constants over every operator the executor
//! will really run. This keeps the §7 decision (join-input shrinkage
//! vs. group-input growth, the duplicate-factor term) while also
//! charging for whatever else the optimizer produced — extra
//! projections cost nothing, but every scan, filter, sort, join and
//! aggregation touch is itemised.
//!
//! The optimizer crate cannot see the engine's `Estimator` (the engine
//! depends on the optimizer, not vice versa), so callers supply the
//! cardinalities as a plain [`CardTree`]; the engine converts its
//! `PlanEstimate` tree into one.

use gbj_core::CostModel;
use gbj_plan::LogicalPlan;

/// Estimated output cardinality for every node of a plan, mirroring the
/// plan's tree shape exactly (same arity at every node, children in plan
/// order).
#[derive(Debug, Clone, PartialEq)]
pub struct CardTree {
    /// Estimated output rows of this node.
    pub rows: f64,
    /// Child cardinalities, in plan order.
    pub children: Vec<CardTree>,
}

impl CardTree {
    /// A leaf estimate.
    #[must_use]
    pub fn leaf(rows: f64) -> CardTree {
        CardTree {
            rows,
            children: vec![],
        }
    }

    /// Clamp every node's estimate to a proven upper bound from a
    /// shape-congruent bound tree (`INFINITY` = no bound at that node).
    /// Bounds are upper bounds on the *true* cardinality, so
    /// `min(estimate, bound)` can only move estimates toward the truth
    /// — costs folded over a clamped tree never charge an operator more
    /// input than it can possibly receive.
    pub fn clamp(&mut self, bound: &CardTree) {
        if bound.rows.is_finite() && self.rows > bound.rows {
            self.rows = bound.rows;
        }
        for (child, b) in self.children.iter_mut().zip(&bound.children) {
            child.clamp(b);
        }
    }
}

/// The itemised cost of one lowered plan shape under the model. Mirrors
/// [`gbj_core::PlanCost`] but is summed over *every* operator in the
/// tree, plus a `scan_rows` term for the base-table touches that the
/// block-level model leaves implicit (both shapes scan the same tables,
/// so the term cancels in the comparison but keeps totals honest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeCost {
    /// Rows produced by scans, filters and sorts (one touch each).
    pub scan_rows: f64,
    /// Rows entering joins (all join nodes, both sides summed).
    pub join_input: f64,
    /// Rows leaving joins.
    pub join_output: f64,
    /// Rows entering group-bys.
    pub group_input: f64,
    /// Groups produced by all aggregations.
    pub groups: f64,
    /// Rows shipped between sites (distributed mode: the larger join
    /// side — the aggregation side in §7's setting — travels; 0
    /// locally).
    pub shipped_rows: f64,
    /// Total model cost (arbitrary units, comparable across shapes of
    /// the same query over the same data).
    pub total: f64,
}

impl ShapeCost {
    fn zero() -> ShapeCost {
        ShapeCost {
            scan_rows: 0.0,
            join_input: 0.0,
            join_output: 0.0,
            group_input: 0.0,
            groups: 0.0,
            shipped_rows: 0.0,
            total: 0.0,
        }
    }
}

/// Cost a lowered plan shape given per-node cardinality estimates.
///
/// `card` must be shape-congruent with `plan` (the engine builds it from
/// the same tree). If a child estimate is missing the walk substitutes a
/// zero-row leaf rather than guessing — a defensive fallback, not an
/// expected path.
#[must_use]
pub fn shape_cost(model: &CostModel, plan: &LogicalPlan, card: &CardTree) -> ShapeCost {
    let mut acc = ShapeCost::zero();
    walk(model, plan, card, &mut acc);
    acc.total = acc.scan_rows
        + model.c_join_row * acc.join_input
        + model.c_join_out * acc.join_output
        + model.c_group_row * acc.group_input
        + model.c_group_out * acc.groups
        + model.c_net_row * acc.shipped_rows;
    acc
}

fn child(card: &CardTree, idx: usize) -> CardTree {
    card.children
        .get(idx)
        .cloned()
        .unwrap_or_else(|| CardTree::leaf(0.0))
}

fn walk(model: &CostModel, plan: &LogicalPlan, card: &CardTree, acc: &mut ShapeCost) {
    match plan {
        LogicalPlan::Scan { .. } => acc.scan_rows += card.rows.max(0.0),
        LogicalPlan::Filter { input, .. } => {
            let c = child(card, 0);
            // A filter touches every input row once.
            acc.scan_rows += c.rows.max(0.0);
            walk(model, input, &c, acc);
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::SubqueryAlias { input, .. } => {
            // Projection / re-qualification is free under the model.
            walk(model, input, &child(card, 0), acc);
        }
        LogicalPlan::Sort { input, .. } => {
            let c = child(card, 0);
            acc.scan_rows += c.rows.max(0.0);
            walk(model, input, &c, acc);
        }
        LogicalPlan::CrossJoin { left, right } | LogicalPlan::Join { left, right, .. } => {
            let l = child(card, 0);
            let r = child(card, 1);
            acc.join_input += l.rows.max(0.0) + r.rows.max(0.0);
            acc.join_output += card.rows.max(0.0);
            if model.distributed {
                // §7: the aggregation side (R1) travels to the other
                // site. At shape level that is the *larger* input — and
                // pre-aggregating below the join shrinks exactly that
                // side to one row per group, which is the distributed
                // payoff the block-level model encodes as
                // `r1_rows` vs `r1_groups` shipped.
                acc.shipped_rows += l.rows.max(0.0).max(r.rows.max(0.0));
            }
            walk(model, left, &l, acc);
            walk(model, right, &r, acc);
        }
        LogicalPlan::Aggregate { input, .. } => {
            let c = child(card, 0);
            acc.group_input += c.rows.max(0.0);
            acc.groups += card.rows.max(0.0);
            walk(model, input, &c, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_expr::Expr;
    use gbj_types::{DataType, Field, Schema};

    fn scan(table: &str, q: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            qualifier: q.into(),
            schema: Schema::new(vec![
                Field::new("id", DataType::Int64, false).with_qualifier(q)
            ]),
        }
    }

    /// Lazy shape: Aggregate(Join(Scan E, Scan D)) with Figure 1
    /// cardinalities — and the eager shape of the same query with the
    /// aggregate pushed below the join. The shape costs must order the
    /// two plans exactly as the block-level model does.
    #[test]
    fn figure1_shape_costs_agree_with_block_model() {
        let model = CostModel::default();

        let lazy_plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan("Employee", "E")),
                right: Box::new(scan("Department", "D")),
                condition: Expr::col("E", "id").eq(Expr::col("D", "id")),
            }),
            group_by: vec![Expr::col("D", "id")],
            aggregates: vec![],
        };
        let lazy_card = CardTree {
            rows: 100.0,
            children: vec![CardTree {
                rows: 10_000.0,
                children: vec![CardTree::leaf(10_000.0), CardTree::leaf(100.0)],
            }],
        };

        let eager_plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Aggregate {
                input: Box::new(scan("Employee", "E")),
                group_by: vec![Expr::col("E", "id")],
                aggregates: vec![],
            }),
            right: Box::new(scan("Department", "D")),
            condition: Expr::col("E", "id").eq(Expr::col("D", "id")),
        };
        let eager_card = CardTree {
            rows: 100.0,
            children: vec![
                CardTree {
                    rows: 100.0,
                    children: vec![CardTree::leaf(10_000.0)],
                },
                CardTree::leaf(100.0),
            ],
        };

        let lazy = shape_cost(&model, &lazy_plan, &lazy_card);
        let eager = shape_cost(&model, &eager_plan, &eager_card);
        assert_eq!(lazy.join_input, 10_100.0);
        assert_eq!(lazy.group_input, 10_000.0);
        assert_eq!(eager.join_input, 200.0);
        assert_eq!(eager.group_input, 10_000.0);
        assert!(
            eager.total < lazy.total,
            "Figure 1: eager must win ({} vs {})",
            eager.total,
            lazy.total
        );

        // Both shapes scan the same base tables, so the scan term is
        // identical and cancels in the comparison.
        assert_eq!(lazy.scan_rows, eager.scan_rows);
    }

    /// Figure 8 in tree form: a selective join (50 output rows) under a
    /// near-key grouping (9000 eager groups) — lazy must win.
    #[test]
    fn figure8_shape_costs_prefer_lazy() {
        let model = CostModel::default();
        let join = |l: f64, r: f64, out: f64| CardTree {
            rows: out,
            children: vec![CardTree::leaf(l), CardTree::leaf(r)],
        };

        let lazy_plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan("R1", "R1")),
                right: Box::new(scan("R2", "R2")),
                condition: Expr::col("R1", "id").eq(Expr::col("R2", "id")),
            }),
            group_by: vec![Expr::col("R1", "id")],
            aggregates: vec![],
        };
        let lazy_card = CardTree {
            rows: 10.0,
            children: vec![join(10_000.0, 100.0, 50.0)],
        };

        let eager_plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Aggregate {
                input: Box::new(scan("R1", "R1")),
                group_by: vec![Expr::col("R1", "id")],
                aggregates: vec![],
            }),
            right: Box::new(scan("R2", "R2")),
            condition: Expr::col("R1", "id").eq(Expr::col("R2", "id")),
        };
        let eager_card = CardTree {
            rows: 10.0,
            children: vec![
                CardTree {
                    rows: 9_000.0,
                    children: vec![CardTree::leaf(10_000.0)],
                },
                CardTree::leaf(100.0),
            ],
        };

        let lazy = shape_cost(&model, &lazy_plan, &lazy_card);
        let eager = shape_cost(&model, &eager_plan, &eager_card);
        assert!(
            lazy.total < eager.total,
            "Figure 8: lazy must win ({} vs {})",
            lazy.total,
            eager.total
        );
    }

    /// Distributed mode ships the aggregation (larger) join input, so
    /// an eager shape that pre-aggregates it ships one row per group
    /// instead of the whole table.
    #[test]
    fn distributed_ships_aggregation_side() {
        let model = CostModel::distributed();
        let plan = LogicalPlan::Join {
            left: Box::new(scan("R1", "R1")),
            right: Box::new(scan("R2", "R2")),
            condition: Expr::col("R1", "id").eq(Expr::col("R2", "id")),
        };
        let card = CardTree {
            rows: 100.0,
            children: vec![CardTree::leaf(10_000.0), CardTree::leaf(100.0)],
        };
        let cost = shape_cost(&model, &plan, &card);
        assert_eq!(cost.shipped_rows, 10_000.0);
        assert!(cost.total > model.c_net_row * 10_000.0);

        // Pre-aggregating R1 below the join shrinks the shipped side to
        // one row per group.
        let eager = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Aggregate {
                input: Box::new(scan("R1", "R1")),
                group_by: vec![Expr::col("R1", "id")],
                aggregates: vec![],
            }),
            right: Box::new(scan("R2", "R2")),
            condition: Expr::col("R1", "id").eq(Expr::col("R2", "id")),
        };
        let eager_card = CardTree {
            rows: 100.0,
            children: vec![
                CardTree {
                    rows: 150.0,
                    children: vec![CardTree::leaf(10_000.0)],
                },
                CardTree::leaf(100.0),
            ],
        };
        let eager_cost = shape_cost(&model, &eager, &eager_card);
        assert_eq!(eager_cost.shipped_rows, 150.0);
        assert!(eager_cost.total < cost.total);
    }

    /// Missing estimates degrade to zero-row leaves instead of
    /// panicking: the walk is defensive against shape drift.
    #[test]
    fn shape_mismatch_degrades_to_zero() {
        let model = CostModel::default();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("T", "T")),
            predicate: Expr::col("T", "id").eq(Expr::col("T", "id")),
        };
        let cost = shape_cost(&model, &plan, &CardTree::leaf(5.0));
        assert_eq!(cost.scan_rows, 0.0, "missing child estimate counts 0");
        assert_eq!(cost.total, 0.0);
    }

    /// Projection and aliasing are free; sorts and filters charge one
    /// touch per input row.
    #[test]
    fn free_and_per_row_operators() {
        let model = CostModel::default();
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(scan("T", "T")),
                exprs: vec![(Expr::col("T", "id"), "id".into())],
                distinct: false,
            }),
            keys: vec![(Expr::col("T", "id"), true)],
        };
        let card = CardTree {
            rows: 7.0,
            children: vec![CardTree {
                rows: 7.0,
                children: vec![CardTree::leaf(7.0)],
            }],
        };
        let cost = shape_cost(&model, &plan, &card);
        // Sort touch (7) + scan touch (7); projection adds nothing.
        assert_eq!(cost.scan_rows, 14.0);
        assert_eq!(cost.total, 14.0);
    }

    /// Clamping takes the node-wise minimum with a bound tree;
    /// `INFINITY` bounds (unknown) leave the estimate alone.
    #[test]
    fn clamp_is_nodewise_min_with_infinity_as_no_bound() {
        let mut card = CardTree {
            rows: 100.0,
            children: vec![CardTree::leaf(50.0), CardTree::leaf(8.0)],
        };
        let bound = CardTree {
            rows: 10.0,
            children: vec![CardTree::leaf(f64::INFINITY), CardTree::leaf(3.0)],
        };
        card.clamp(&bound);
        assert_eq!(card.rows, 10.0);
        assert_eq!(card.children[0].rows, 50.0, "unbounded child unchanged");
        assert_eq!(card.children[1].rows, 3.0);
    }
}
