//! Emits the Section 7 sweep series as CSV for plotting — the data
//! behind EXPERIMENTS.md's X9 tables, plus a skewed variant.
//!
//! ```text
//! cargo run --release -p gbj-bench --bin sweep_csv > sweeps.csv
//! ```

use gbj_bench::compare;
use gbj_datagen::SweepConfig;
use gbj_types::Result;

fn emit(series: &str, param: f64, cfg: &SweepConfig) -> Result<()> {
    let mut db = cfg.build()?;
    let c = compare(&mut db, cfg.query(), 3)?;
    println!(
        "{series},{param},{:.6},{:.6},{:.4},{:?}",
        c.lazy.time.as_secs_f64() * 1e3,
        c.eager.time.as_secs_f64() * 1e3,
        c.speedup(),
        c.engine_choice
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("sweep_csv: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    println!("series,param,lazy_ms,eager_ms,speedup,engine_choice");

    // Fan-in series: param is rows-per-group.
    for groups in [1usize, 10, 100, 1_000, 10_000] {
        let cfg = SweepConfig {
            fact_rows: 10_000,
            dim_rows: groups.clamp(100, 5_000),
            groups,
            match_fraction: 1.0,
            ..SweepConfig::default()
        };
        emit("fanin", cfg.fan_in(), &cfg)?;
    }

    // Selectivity series: param is the match fraction.
    for frac in [1.0, 0.5, 0.1, 0.05, 0.01, 0.005] {
        let cfg = SweepConfig {
            fact_rows: 10_000,
            dim_rows: 100,
            groups: 9_000,
            match_fraction: frac,
            ..SweepConfig::default()
        };
        emit("selectivity", frac, &cfg)?;
    }

    // Skew series: param is the Zipf exponent (uniform fan-in 100 base).
    for skew in [0.0, 0.5, 1.0, 1.5] {
        let cfg = SweepConfig {
            fact_rows: 10_000,
            dim_rows: 100,
            groups: 100,
            match_fraction: 1.0,
            skew,
        };
        emit("skew", skew, &cfg)?;
    }
    Ok(())
}
