//! SQL values, including `NULL`, with the paper's two equality notions.
//!
//! Section 4.2 of the paper distinguishes:
//!
//! * **Search-condition comparison** — `X = Y` returns `unknown` when
//!   either side is `NULL` ([`Value::sql_eq`], [`Value::sql_cmp`]). The
//!   `WHERE` clause then interprets `unknown` as `false` (`⌊·⌋`).
//! * **Duplicate detection** (`DISTINCT`, `GROUP BY`, `UNION`, …) — two
//!   values are duplicates when they are equal and both non-NULL, *or*
//!   both NULL. The paper writes this `X =ⁿ Y` ([`Value::null_eq`]).
//!
//! [`GroupKey`] packages a vector of values with `Eq`/`Hash` that follow
//! `=ⁿ`, so hash grouping and duplicate elimination implement SQL2
//! semantics by construction.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::datatype::DataType;
use crate::error::{Error, Result};
use crate::truth::Truth;

/// A single SQL value.
///
/// ```
/// use gbj_types::{Truth, Value};
///
/// // Search-condition equality: NULL = NULL is unknown …
/// assert_eq!(Value::Null.sql_eq(&Value::Null), Truth::Unknown);
/// // … while duplicate detection treats NULLs as equal (the paper's =ⁿ).
/// assert!(Value::Null.null_eq(&Value::Null));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The SQL `NULL` marker ("value unknown / missing").
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Character string.
    Str(String),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Whether the value is `NULL`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of the value; `None` for `NULL` (typeless marker).
    #[must_use]
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Boolean),
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Utf8),
        }
    }

    /// Three-valued equality for search conditions: `NULL = x` is
    /// `Unknown` for every `x` (including `NULL`).
    #[must_use]
    pub fn sql_eq(&self, other: &Value) -> Truth {
        match self.sql_cmp(other) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(ord == Ordering::Equal),
        }
    }

    /// Three-valued ordering comparison for search conditions.
    ///
    /// Returns `None` when either operand is `NULL` (the comparison is
    /// `unknown`) or the operands are incomparable types — the binder
    /// rejects ill-typed comparisons before execution, so in practice
    /// `None` means NULL-involvement.
    #[must_use]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::{Bool, Float, Int, Null, Str};
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// The duplicate-detection equality `=ⁿ` of Section 4.2: equal and
    /// both non-NULL, or both NULL ("NULL equals NULL").
    #[must_use]
    pub fn null_eq(&self, other: &Value) -> bool {
        use Value::{Float, Int, Null};
        match (self, other) {
            (Null, Null) => true,
            (Null, _) | (_, Null) => false,
            // Mixed numeric comparison participates in grouping after
            // coercion; compare numerically so Int(1) groups with
            // Float(1.0) the way a coerced comparison would.
            (Int(a), Float(b)) => (*a as f64) == *b,
            (Float(a), Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// Total ordering used by ORDER BY and sort-based grouping: `NULL`
    /// sorts *last* and equal to other `NULL`s (the `=ⁿ` convention);
    /// floats use IEEE `totalOrder`, so NaN sorts consistently (after
    /// every finite value) instead of breaking sort invariants.
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => {
                // Numeric pairs: IEEE total order over f64 (handles NaN).
                let as_float = |v: &Value| match v {
                    Value::Int(i) => Some(*i as f64),
                    Value::Float(f) => Some(*f),
                    _ => None,
                };
                if let (Some(a), Some(b)) = (as_float(self), as_float(other)) {
                    return a.total_cmp(&b);
                }
                self.sql_cmp(other)
                    .unwrap_or_else(|| self.type_rank().cmp(&other.type_rank()))
            }
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 4,
            Value::Bool(_) => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }

    /// SQL addition with NULL propagation and overflow checking.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// SQL subtraction with NULL propagation and overflow checking.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// SQL multiplication with NULL propagation and overflow checking.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// SQL division. Integer division by zero is an execution error;
    /// `NULL` operands propagate.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(Error::Execution("division by zero".into())),
            _ => self.numeric_binop(other, "/", |a, b| a.checked_div(b), |a, b| a / b),
        }
    }

    /// Arithmetic negation with NULL propagation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(a) => a
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| Error::Execution("integer overflow in negation".into())),
            Value::Float(a) => Ok(Value::Float(-a)),
            other => Err(Error::Type(format!(
                "cannot negate non-numeric value {other}"
            ))),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value> {
        use Value::{Float, Int, Null};
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(a), Int(b)) => int_op(*a, *b).map(Value::Int).ok_or_else(|| {
                Error::Execution(format!("integer overflow evaluating {a} {op} {b}"))
            }),
            (Int(a), Float(b)) => Ok(Float(float_op(*a as f64, *b))),
            (Float(a), Int(b)) => Ok(Float(float_op(*a, *b as f64))),
            (Float(a), Float(b)) => Ok(Float(float_op(*a, *b))),
            (a, b) => Err(Error::Type(format!(
                "invalid operands for {op}: {a} and {b}"
            ))),
        }
    }

    /// Coerce to `f64` for aggregate arithmetic; `None` for `NULL`.
    pub fn as_f64(&self) -> Result<Option<f64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i as f64)),
            Value::Float(f) => Ok(Some(*f)),
            other => Err(Error::Type(format!("expected numeric value, got {other}"))),
        }
    }

    /// Extract an `i64`, erroring on other non-NULL types.
    pub fn as_i64(&self) -> Result<Option<i64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i)),
            other => Err(Error::Type(format!("expected integer value, got {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A grouping / duplicate-detection key: a row of values compared and
/// hashed under the `=ⁿ` semantics ("NULL equals NULL", floats by their
/// numeric value with `-0.0 = 0.0` and NaN self-equal).
#[derive(Debug, Clone)]
pub struct GroupKey(pub Vec<Value>);

impl PartialEq for GroupKey {
    fn eq(&self, other: &GroupKey) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| group_value_eq(a, b))
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            hash_group_value(v, state);
        }
    }
}

impl GroupKey {
    /// Deterministic shard assignment under `=ⁿ` semantics: keys that
    /// compare `=ⁿ`-equal (including all-NULL keys, which hash through
    /// the `Null` tag) land on the same shard for any shard count.
    /// `DefaultHasher::new()` starts from a fixed state, so the mapping
    /// is stable across processes and runs.
    #[must_use]
    pub fn shard(&self, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() % shards.max(1) as u64) as usize
    }
}

/// `=ⁿ` extended to a full equivalence relation for hashing: NaN is
/// treated as equal to NaN so that `Eq`'s reflexivity holds.
fn group_value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) if x.is_nan() && y.is_nan() => true,
        _ => a.null_eq(b),
    }
}

fn hash_group_value<H: Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::Null => state.write_u8(0),
        Value::Bool(b) => {
            state.write_u8(1);
            state.write_u8(u8::from(*b));
        }
        // Int and Float that compare `=ⁿ`-equal must hash equal: hash
        // every numeric through the f64 bit pattern of its value, with
        // -0.0 normalised to 0.0 and NaN to one canonical NaN.
        Value::Int(i) => {
            state.write_u8(2);
            state.write_u64(canonical_f64_bits(*i as f64));
        }
        Value::Float(f) => {
            state.write_u8(2);
            state.write_u64(canonical_f64_bits(*f));
        }
        Value::Str(s) => {
            state.write_u8(3);
            state.write(s.as_bytes());
            state.write_u8(0xFF);
        }
    }
}

fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0_f64.to_bits()
    } else {
        f.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Truth::True);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Truth::False);
    }

    #[test]
    fn null_eq_treats_null_as_equal_to_null() {
        assert!(Value::Null.null_eq(&Value::Null));
        assert!(!Value::Null.null_eq(&Value::Int(1)));
        assert!(!Value::Int(1).null_eq(&Value::Null));
        assert!(Value::Int(1).null_eq(&Value::Int(1)));
        assert!(!Value::Int(1).null_eq(&Value::Int(2)));
    }

    /// Figure 3 bottom table: `X =ⁿ Y` is true when both NULL, and
    /// otherwise equals `⌊X = Y⌋`.
    #[test]
    fn figure3_null_eq_definition() {
        let vals = [Value::Null, Value::Int(1), Value::Int(2), Value::str("a")];
        for x in &vals {
            for y in &vals {
                let expected = if x.is_null() && y.is_null() {
                    true
                } else {
                    x.sql_eq(y).floor()
                };
                assert_eq!(x.null_eq(y), expected, "{x} =n {y}");
            }
        }
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Truth::True);
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert!(Value::Int(3).null_eq(&Value::Float(3.0)));
    }

    #[test]
    fn string_comparison() {
        assert_eq!(Value::str("abc").sql_eq(&Value::str("abc")), Truth::True);
        assert_eq!(
            Value::str("abc").sql_cmp(&Value::str("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_none() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_puts_nulls_last_and_equal() {
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(5)), Ordering::Greater);
        assert_eq!(Value::Int(5).total_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
    }

    #[test]
    fn total_cmp_handles_nan_consistently() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Int(1);
        let fone = Value::Float(1.0);
        // NaN sorts after every finite value, consistently both ways.
        assert_eq!(nan.total_cmp(&one), Ordering::Greater);
        assert_eq!(one.total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(fone.total_cmp(&one), Ordering::Equal);
        // And still before NULL? NULL is greatest by convention.
        assert_eq!(nan.total_cmp(&Value::Null), Ordering::Less);
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
        assert_eq!(Value::Null.div(&Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(Value::Null.neg().unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)).unwrap(), Value::Int(-1));
        assert_eq!(Value::Int(4).mul(&Value::Int(5)).unwrap(), Value::Int(20));
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Int(1).add(&Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(Value::Int(3).neg().unwrap(), Value::Int(-3));
    }

    #[test]
    fn arithmetic_errors() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::str("x").add(&Value::Int(1)).is_err());
        assert!(Value::str("x").neg().is_err());
        assert!(Value::Int(i64::MIN).neg().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::Int(3).as_f64().unwrap(), Some(3.0));
        assert_eq!(Value::Null.as_f64().unwrap(), None);
        assert!(Value::str("x").as_f64().is_err());
        assert_eq!(Value::Int(3).as_i64().unwrap(), Some(3));
        assert!(Value::Float(1.0).as_i64().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::Float(1.25).to_string(), "1.25");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn group_key_null_groups_together() {
        let mut groups: HashMap<GroupKey, usize> = HashMap::new();
        for v in [Value::Null, Value::Null, Value::Int(1), Value::Int(1)] {
            *groups.entry(GroupKey(vec![v])).or_default() += 1;
        }
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&GroupKey(vec![Value::Null])], 2);
        assert_eq!(groups[&GroupKey(vec![Value::Int(1)])], 2);
    }

    #[test]
    fn group_key_mixed_numeric_hash_consistency() {
        let a = GroupKey(vec![Value::Int(1)]);
        let b = GroupKey(vec![Value::Float(1.0)]);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, ());
        assert!(m.contains_key(&b));
    }

    #[test]
    fn group_key_zero_and_nan_canonicalisation() {
        let plus = GroupKey(vec![Value::Float(0.0)]);
        let minus = GroupKey(vec![Value::Float(-0.0)]);
        assert_eq!(plus, minus);
        let mut m = HashMap::new();
        m.insert(plus, ());
        assert!(m.contains_key(&minus));

        let nan1 = GroupKey(vec![Value::Float(f64::NAN)]);
        let nan2 = GroupKey(vec![Value::Float(f64::NAN)]);
        assert_eq!(nan1, nan2, "NaN must self-group for Eq reflexivity");
    }

    #[test]
    fn group_key_length_mismatch_not_equal() {
        let a = GroupKey(vec![Value::Int(1)]);
        let b = GroupKey(vec![Value::Int(1), Value::Int(2)]);
        assert_ne!(a, b);
    }

    #[test]
    fn group_key_string_boundary_hashing() {
        // ("ab","c") must not hash-collide-and-equal ("a","bc").
        let a = GroupKey(vec![Value::str("ab"), Value::str("c")]);
        let b = GroupKey(vec![Value::str("a"), Value::str("bc")]);
        assert_ne!(a, b);
    }
}
