//! Estimate-vs-actual cardinality audit over the datagen workloads.
//!
//! Sweeps the Section 7 two-table workload across fan-in, join
//! selectivity and skew (plus the Example 1 Emp/Dept instance with and
//! without NULL group keys), runs each grouped query under both the
//! lazy and cost-based policies, and emits one JSON object per run with
//! the per-node estimate-vs-actual table ([`gbj_engine::audit_nodes`])
//! and its max/median Q-error. This is the data the estimator-accuracy
//! test suite bounds; regenerate it after touching `gbj_engine::stats`.
//!
//! ```text
//! cargo run --release -p gbj-bench --bin cardinality_audit
//! ```

use gbj_datagen::{EmpDeptConfig, SweepConfig};
use gbj_engine::{audits_to_json, max_q, median_q, Database, PushdownPolicy};
use gbj_types::{Error, Result};

/// Run `sql` on `db` under `policy` and print one JSON audit line.
fn audit_one(
    db: &mut Database,
    workload: &str,
    params: &str,
    sql: &str,
    policy: PushdownPolicy,
) -> Result<()> {
    db.options_mut().policy = policy;
    db.query(sql)?;
    let metrics = db
        .last_query_metrics()
        .ok_or_else(|| Error::Internal("no metrics recorded for the audited query".into()))?;
    let audits = metrics.audits();
    let policy_name = match policy {
        PushdownPolicy::Never => "lazy",
        PushdownPolicy::Always => "eager",
        PushdownPolicy::CostBased => "cost",
    };
    println!(
        "{{\"workload\":\"{}\",\"params\":\"{}\",\"policy\":\"{}\",\"max_q\":{:.3},\"median_q\":{:.3},\"nodes\":{}}}",
        workload,
        params,
        policy_name,
        max_q(&audits),
        median_q(&audits),
        audits_to_json(&audits)
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("cardinality_audit: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    // Fan-in sweep: how many fact rows collapse into each group.
    for groups in [10_usize, 100, 1000] {
        let cfg = SweepConfig {
            fact_rows: 10_000,
            dim_rows: 1000,
            groups,
            match_fraction: 1.0,
            skew: 0.0,
        };
        let mut db = cfg.build()?;
        let params = format!("fact_rows=10000 groups={groups} match=1.0");
        audit_one(
            &mut db,
            "sweep_fan_in",
            &params,
            cfg.query(),
            PushdownPolicy::Never,
        )?;
        audit_one(
            &mut db,
            "sweep_fan_in",
            &params,
            cfg.query(),
            PushdownPolicy::CostBased,
        )?;
    }

    // Selectivity sweep: the fraction of fact rows surviving the join.
    for match_fraction in [0.01_f64, 0.1, 0.5, 1.0] {
        let cfg = SweepConfig {
            fact_rows: 10_000,
            dim_rows: 100,
            groups: 100,
            match_fraction,
            skew: 0.0,
        };
        let mut db = cfg.build()?;
        let params = format!("fact_rows=10000 groups=100 match={match_fraction}");
        audit_one(
            &mut db,
            "sweep_selectivity",
            &params,
            cfg.query(),
            PushdownPolicy::Never,
        )?;
    }

    // Skewed key distribution: uniform-frequency assumption stressed.
    let cfg = SweepConfig {
        fact_rows: 10_000,
        dim_rows: 100,
        groups: 100,
        match_fraction: 1.0,
        skew: 1.5,
    };
    let mut db = cfg.build()?;
    audit_one(
        &mut db,
        "sweep_skew",
        "fact_rows=10000 groups=100 skew=1.5",
        cfg.query(),
        PushdownPolicy::Never,
    )?;

    // Example 1 Emp/Dept, with and without NULL group keys.
    for null_fraction in [0.0_f64, 0.3] {
        let cfg = EmpDeptConfig {
            employees: 5000,
            departments: 50,
            null_dept_fraction: null_fraction,
            seed: 42,
        };
        let mut db = cfg.build()?;
        let params = format!("employees=5000 departments=50 null_frac={null_fraction}");
        audit_one(
            &mut db,
            "emp_dept",
            &params,
            cfg.query(),
            PushdownPolicy::CostBased,
        )?;
    }
    Ok(())
}
