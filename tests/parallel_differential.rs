//! Single-thread vs multi-thread differential tests.
//!
//! The morsel-driven parallel operators promise results **byte-identical
//! to serial execution** after the engine's canonical ordering, at every
//! thread count, for both plan shapes (E1 lazy / E2 eager), and under
//! deterministic fault injection — same seed ⇒ same rows or the same
//! typed error at 1, 2, 4 and 8 threads. These tests hold the executor
//! to that promise over the same query family and randomized instances
//! the serial differential oracle uses, and additionally pin the
//! resource-governance contract: a shared memory budget exhausts at the
//! same `{limit, used}` snapshot (±one morsel) regardless of thread
//! count, and errors raised while workers are in flight always join the
//! team and surface as typed `Err`s.

use std::num::NonZeroUsize;

use gbj_engine::{Database, PushdownPolicy};
use gbj_exec::ResourceLimits;
use gbj_storage::{FaultConfig, FaultInjector};
use gbj_types::Error;
use rand::{rngs::StdRng, Rng, SeedableRng};

mod common;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The differential oracle's query family (mirrors the serial E1/E2
/// oracle in `equivalence_prop.rs` / `fault_injection.rs`).
const QUERIES: &[&str] = &[
    "SELECT D.DimId, COUNT(F.FId) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId",
    "SELECT D.DimId, D.Cat, SUM(F.V), MIN(F.V), MAX(F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    "SELECT D.DimId, COUNT(*) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId",
    "SELECT D.DimId, AVG(F.V), COUNT(DISTINCT F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId",
    "SELECT D.DimId, SUM(F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId AND F.V > 0 AND D.Cat = 'c1' GROUP BY D.DimId",
    "SELECT DISTINCT D.Cat, COUNT(F.FId) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    "SELECT D.DimId, D.Cat, COUNT(F.FId), SUM(F.V) FROM Fact F, Dim D \
     WHERE F.K = D.DimId GROUP BY D.DimId, D.Cat",
    "SELECT F.K, COUNT(F.FId), SUM(F.V) FROM Fact F GROUP BY F.K",
];

/// Randomized Example-1-shaped instance with nullable join, grouping,
/// and aggregate columns (NULL-heavy on purpose).
fn build_db(rng: &mut StdRng) -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Dim (DimId INTEGER PRIMARY KEY, Cat VARCHAR(5)); \
         CREATE TABLE Fact (FId INTEGER PRIMARY KEY, K INTEGER, V INTEGER);",
    )
    .expect("ddl");
    let dims = rng.gen_range(1i64..10);
    for d in 0..dims {
        let cat = if rng.gen_bool(0.25) {
            "NULL".to_string()
        } else {
            format!("'c{}'", rng.gen_range(0i64..3))
        };
        db.execute(&format!("INSERT INTO Dim VALUES ({d}, {cat})"))
            .expect("dim row");
    }
    let facts = rng.gen_range(0i64..60);
    for f in 0..facts {
        let k = if rng.gen_bool(0.2) {
            "NULL".to_string()
        } else {
            rng.gen_range(0i64..12).to_string()
        };
        let v = if rng.gen_bool(0.2) {
            "NULL".to_string()
        } else {
            rng.gen_range(-5i64..20).to_string()
        };
        db.execute(&format!("INSERT INTO Fact VALUES ({f}, {k}, {v})"))
            .expect("fact row");
    }
    db
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("nonzero")
}

/// One run's observable outcome: canonical rows, or the typed error's
/// kind and message.
fn run_at(
    db: &mut Database,
    threads: usize,
    policy: PushdownPolicy,
    sql: &str,
) -> Result<Vec<Vec<gbj_types::Value>>, String> {
    db.set_threads(nz(threads));
    db.options_mut().policy = policy;
    if let Some(inj) = db.fault_injector() {
        inj.reset();
    }
    match db.query(sql) {
        Ok(rows) => Ok(common::canon(&rows)),
        Err(e) => Err(format!("{}: {}", e.kind(), e.message())),
    }
}

/// Every oracle query, both plan shapes: results at 1/2/4/8 threads are
/// identical to each other and to the serial path.
#[test]
fn all_thread_counts_agree_with_serial_for_both_plans() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0001);
    for case in 0..24u64 {
        let mut db = build_db(&mut rng);
        for sql in QUERIES {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                let serial = run_at(&mut db, 1, policy, sql);
                for threads in THREAD_COUNTS {
                    let got = run_at(&mut db, threads, policy, sql);
                    assert_eq!(
                        got, serial,
                        "case {case} threads={threads} policy={policy:?}: {sql}"
                    );
                }
            }
        }
    }
}

/// Seeded fault injection: at every thread count the same seed yields
/// the same typed error or the same rows — scan-level faults (batch
/// failures, short batches, NULL flips) are thread-count independent.
#[test]
fn fault_seeds_are_thread_count_independent() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0002);
    let mut disagreements = Vec::new();
    for case in 0..24u64 {
        let mut db = build_db(&mut rng);
        let config = FaultConfig {
            seed: rng.gen_range(0u64..1 << 40),
            fail_nth_batch: rng.gen_bool(0.4).then(|| rng.gen_range(0u64..6)),
            batch_size: rng.gen_bool(0.5).then(|| rng.gen_range(1usize..5)),
            null_flip_one_in: rng.gen_bool(0.6).then(|| rng.gen_range(1u64..6)),
        };
        db.set_fault_injector(Some(FaultInjector::new(config)));
        for sql in [QUERIES[1], QUERIES[6], QUERIES[7]] {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                let serial = run_at(&mut db, 1, policy, sql);
                for threads in THREAD_COUNTS {
                    let got = run_at(&mut db, threads, policy, sql);
                    if got != serial {
                        disagreements.push(format!(
                            "case {case} threads={threads} policy={policy:?} under \
                             {config:?}:\n  serial={serial:?}\n  got={got:?}"
                        ));
                    }
                }
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "thread counts disagreed under faults:\n{}",
        disagreements.join("\n")
    );
}

/// A shared memory budget exhausts at the same `{limit, used}` snapshot
/// (±one morsel's worth of table entries) at every thread count.
///
/// Group keys are unique so serial and parallel build the same number
/// of table entries (duplicate keys spanning morsels transiently
/// double-charge in the parallel operator — see DESIGN.md §9).
#[test]
fn memory_budget_snapshot_is_stable_across_thread_counts() {
    let mut db = Database::new();
    db.run_script("CREATE TABLE Fact (FId INTEGER PRIMARY KEY, K INTEGER, V INTEGER);")
        .expect("ddl");
    db.insert_rows(
        "Fact",
        (0..2_000i64).map(|i| {
            vec![
                gbj_types::Value::Int(i),
                gbj_types::Value::Int(i), // unique group key
                gbj_types::Value::Int(i % 97),
            ]
        }),
    )
    .expect("rows");
    let sql = "SELECT F.K, SUM(F.V) FROM Fact F GROUP BY F.K";
    const LIMIT: u64 = 50_000;
    // One morsel of aggregation-table entries: 2000 rows split into
    // 250-row morsels; ~104 bytes per (Int key, one accumulator) entry.
    const ONE_MORSEL_BYTES: u64 = 250 * 104;

    let mut snapshots = Vec::new();
    for threads in THREAD_COUNTS {
        db.set_threads(nz(threads));
        db.options_mut().exec.limits = ResourceLimits {
            max_memory_bytes: Some(LIMIT),
            ..ResourceLimits::default()
        };
        let err = db.query(sql).expect_err("budget must fire");
        match err {
            Error::ResourceExhausted { limit, used, .. } => {
                assert_eq!(limit, LIMIT, "threads={threads}");
                assert!(used > limit, "threads={threads}: snapshot below limit");
                snapshots.push((threads, used));
            }
            other => panic!("threads={threads}: expected resource error, got {other}"),
        }
    }
    let (_, serial_used) = snapshots[0];
    for (threads, used) in &snapshots[1..] {
        let delta = used.abs_diff(serial_used);
        assert!(
            delta <= ONE_MORSEL_BYTES,
            "threads={threads}: used {used} is {delta} B from serial {serial_used} \
             (more than one morsel = {ONE_MORSEL_BYTES} B)"
        );
    }
    // Budgets restore cleanly at every thread count.
    db.options_mut().exec.limits = ResourceLimits::default();
    assert_eq!(db.query(sql).expect("unlimited rerun").len(), 2_000);
}

/// Errors raised while a worker team is in flight (here: the shared
/// budget tripping mid-aggregation, and injected scan failures) always
/// come back as typed `Err`s with every thread joined — the test
/// completing at all is the no-deadlock/no-leak proof, and repeated
/// runs would surface a leaked worker as a panic on a dropped scope.
#[test]
fn mid_flight_errors_join_all_workers_and_stay_typed() {
    let mut db = Database::new();
    db.run_script("CREATE TABLE Fact (FId INTEGER PRIMARY KEY, K INTEGER, V INTEGER);")
        .expect("ddl");
    db.insert_rows(
        "Fact",
        (0..4_000i64).map(|i| {
            vec![
                gbj_types::Value::Int(i),
                gbj_types::Value::Int(i),
                gbj_types::Value::Int(1),
            ]
        }),
    )
    .expect("rows");
    let sql = "SELECT F.K, SUM(F.V) FROM Fact F GROUP BY F.K";

    // Budget trips while all 8 workers are claiming morsels.
    db.set_threads(nz(8));
    for round in 0..20 {
        db.options_mut().exec.limits = ResourceLimits {
            max_memory_bytes: Some(10_000),
            ..ResourceLimits::default()
        };
        let err = db.query(sql).expect_err("budget must fire");
        assert_eq!(err.kind(), "resource", "round {round}");
        assert_eq!(err.message(), "memory budget exceeded", "round {round}");
    }

    // Injected batch failures surface identically at every thread count.
    db.options_mut().exec.limits = ResourceLimits::default();
    db.set_fault_injector(Some(FaultInjector::new(FaultConfig {
        seed: 3,
        fail_nth_batch: Some(1),
        batch_size: Some(512),
        ..FaultConfig::default()
    })));
    let mut outcomes = Vec::new();
    for threads in THREAD_COUNTS {
        outcomes.push(run_at(&mut db, threads, PushdownPolicy::Never, sql));
    }
    let serial = &outcomes[0];
    match serial {
        Err(msg) => assert!(
            msg.starts_with("execution: injected fault"),
            "typed execution error expected, got {msg}"
        ),
        Ok(_) => panic!("the injected batch failure must surface"),
    }
    for (threads, outcome) in THREAD_COUNTS.iter().zip(&outcomes) {
        assert_eq!(outcome, serial, "threads={threads}");
    }
}

/// One run's counter fingerprint: the thread-count-invariant subset of
/// every operator's metrics — `(label, [rows_in, rows_out, batches,
/// hash_entries])` in pre-order — or the typed error if the run failed.
fn fingerprint_at(
    db: &mut Database,
    threads: usize,
    policy: PushdownPolicy,
    sql: &str,
) -> Result<Vec<(String, [u64; 4])>, String> {
    db.set_threads(nz(threads));
    db.options_mut().policy = policy;
    if let Some(inj) = db.fault_injector() {
        inj.reset();
    }
    match db.query(sql) {
        Ok(_) => {
            let metrics = db.last_query_metrics().expect("metrics recorded");
            Ok(metrics.profile.counter_fingerprint())
        }
        Err(e) => Err(format!("{}: {}", e.kind(), e.message())),
    }
}

/// The metrics layer's determinism promise: every operator counter in
/// the fingerprint — rows in/out, batch counts, hash-table entries —
/// is byte-identical at 1, 2, 4 and 8 threads, for both plan shapes,
/// across the whole oracle query family. (Timings and transient state
/// bytes are deliberately outside the fingerprint; see DESIGN.md §10.)
#[test]
fn metrics_counters_are_identical_at_every_thread_count() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0003);
    for case in 0..12u64 {
        let mut db = build_db(&mut rng);
        for sql in QUERIES {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                let serial = fingerprint_at(&mut db, 1, policy, sql);
                assert!(serial.is_ok(), "case {case}: clean run must succeed");
                for threads in THREAD_COUNTS {
                    let got = fingerprint_at(&mut db, threads, policy, sql);
                    assert_eq!(
                        got, serial,
                        "case {case} threads={threads} policy={policy:?}: \
                         counters drifted for {sql}"
                    );
                }
            }
        }
    }
}

/// The vectorized columnar path promises output **byte-identical to
/// the row engine** — same rows after canonical ordering, or the same
/// typed error — at every thread count, for both plan shapes, across
/// the whole oracle query family. The row engine at one thread is the
/// oracle; the vectorized runs at 1/2/4/8 threads must all match it.
#[test]
fn vectorized_path_is_byte_identical_to_the_row_engine() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0005);
    for case in 0..12u64 {
        let mut db = build_db(&mut rng);
        for sql in QUERIES {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                db.set_vectorized(false);
                let row_engine = run_at(&mut db, 1, policy, sql);
                db.set_vectorized(true);
                for threads in THREAD_COUNTS {
                    let got = run_at(&mut db, threads, policy, sql);
                    assert_eq!(
                        got, row_engine,
                        "case {case} threads={threads} policy={policy:?} vectorized: {sql}"
                    );
                }
                db.set_vectorized(false);
            }
        }
    }
}

/// Vectorized execution under deterministic fault injection: short
/// batches, NULL flips and injected batch failures must produce the
/// same rows or the same typed error as the row engine, at every
/// thread count, for the same seed.
#[test]
fn vectorized_path_matches_row_engine_under_fault_seeds() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0006);
    let mut disagreements = Vec::new();
    for case in 0..12u64 {
        let mut db = build_db(&mut rng);
        let config = FaultConfig {
            seed: rng.gen_range(0u64..1 << 40),
            fail_nth_batch: rng.gen_bool(0.4).then(|| rng.gen_range(0u64..6)),
            batch_size: rng.gen_bool(0.5).then(|| rng.gen_range(1usize..5)),
            null_flip_one_in: rng.gen_bool(0.6).then(|| rng.gen_range(1u64..6)),
        };
        db.set_fault_injector(Some(FaultInjector::new(config)));
        for sql in [QUERIES[1], QUERIES[4], QUERIES[6], QUERIES[7]] {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                db.set_vectorized(false);
                let row_engine = run_at(&mut db, 1, policy, sql);
                db.set_vectorized(true);
                for threads in THREAD_COUNTS {
                    let got = run_at(&mut db, threads, policy, sql);
                    if got != row_engine {
                        disagreements.push(format!(
                            "case {case} threads={threads} policy={policy:?} under \
                             {config:?}:\n  row={row_engine:?}\n  vectorized={got:?}"
                        ));
                    }
                }
                db.set_vectorized(false);
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "vectorized path disagreed with the row engine under faults:\n{}",
        disagreements.join("\n")
    );
}

/// The counter fingerprint excludes the vectorized-only counters
/// (vectors built, selection totals, kernel time), so it must be
/// byte-identical between the row engine and the vectorized path at
/// every thread count — vectorization changes how operators compute,
/// never what flows through them.
#[test]
fn vectorized_fingerprints_match_the_row_engine() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0007);
    for case in 0..8u64 {
        let mut db = build_db(&mut rng);
        for sql in QUERIES {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                db.set_vectorized(false);
                let row_engine = fingerprint_at(&mut db, 1, policy, sql);
                assert!(row_engine.is_ok(), "case {case}: clean run must succeed");
                db.set_vectorized(true);
                for threads in THREAD_COUNTS {
                    let got = fingerprint_at(&mut db, threads, policy, sql);
                    assert_eq!(
                        got, row_engine,
                        "case {case} threads={threads} policy={policy:?}: \
                         vectorized counters drifted for {sql}"
                    );
                }
                db.set_vectorized(false);
            }
        }
    }
}

/// Counters stay thread-count-invariant under deterministic fault
/// injection too: short batches and NULL flips perturb what the scan
/// feeds every operator, but identically so at every thread count
/// (scans are always serial). Failing seeds must yield the same typed
/// error everywhere instead of a fingerprint.
#[test]
fn metrics_counters_are_thread_invariant_under_fault_seeds() {
    let mut rng = StdRng::seed_from_u64(0x9a11_0004);
    for case in 0..12u64 {
        let mut db = build_db(&mut rng);
        let config = FaultConfig {
            seed: rng.gen_range(0u64..1 << 40),
            fail_nth_batch: rng.gen_bool(0.3).then(|| rng.gen_range(0u64..6)),
            batch_size: rng.gen_bool(0.7).then(|| rng.gen_range(1usize..5)),
            null_flip_one_in: rng.gen_bool(0.7).then(|| rng.gen_range(1u64..6)),
        };
        db.set_fault_injector(Some(FaultInjector::new(config)));
        for sql in [QUERIES[0], QUERIES[3], QUERIES[6], QUERIES[7]] {
            for policy in [PushdownPolicy::Never, PushdownPolicy::Always] {
                let serial = fingerprint_at(&mut db, 1, policy, sql);
                for threads in THREAD_COUNTS {
                    let got = fingerprint_at(&mut db, threads, policy, sql);
                    assert_eq!(
                        got, serial,
                        "case {case} threads={threads} policy={policy:?} under \
                         {config:?}: {sql}"
                    );
                }
            }
        }
    }
}
