//! Exchange and gather: repartitioning rows between in-process shards
//! with bytes-over-the-wire metering.
//!
//! The sharded runner (see [`crate::shard`]) keeps every intermediate
//! relation as one `Vec<rows>` per shard. An *exchange* re-routes each
//! row to the shard its key hashes to ([`GroupKey::shard`], so `=ⁿ`
//! semantics apply and NULL keys land deterministically on one shard);
//! a *gather* concentrates all rows on shard 0 for inherently global
//! operators (scalar aggregates, sorts).
//!
//! Only rows whose destination differs from their origin are metered as
//! shipped: co-located rows never cross the wire, which is precisely
//! what makes a combiner below the exchange (and declared partition
//! keys) measurable wins. The byte cost is a deterministic model —
//! estimated row payload ([`crate::guard::row_bytes`]) plus fixed
//! per-row framing — not a measurement, so `shipped_bytes` is identical
//! across thread counts and runs.
//!
//! Routing iterates origins in shard order and rows in shard-local
//! order, so every destination receives rows in a deterministic
//! `(origin, position)` order at any thread count.

use gbj_types::{GroupKey, Result, Value};

use crate::metrics::MetricsSink;

/// Fixed per-row wire framing overhead (length prefix + shard header)
/// in the deterministic byte model.
pub(crate) const ROW_FRAME_BYTES: u64 = 8;

/// Modelled wire size of one shipped row.
pub(crate) fn wire_row_bytes(row: &[Value]) -> u64 {
    ROW_FRAME_BYTES + crate::guard::row_bytes(row)
}

/// Route every row to `key_of(row).shard(n)`, metering rows that leave
/// their origin shard into `sink`. Destinations receive rows in
/// `(origin shard, origin position)` order.
pub(crate) fn exchange<F>(
    parts: Vec<Vec<Vec<Value>>>,
    n: usize,
    sink: &MetricsSink,
    key_of: F,
) -> Result<Vec<Vec<Vec<Value>>>>
where
    F: Fn(&[Value]) -> Result<GroupKey>,
{
    let mut out: Vec<Vec<Vec<Value>>> = (0..n.max(1)).map(|_| Vec::new()).collect();
    let mut shipped_rows = 0u64;
    let mut shipped_bytes = 0u64;
    for (origin, rows) in parts.into_iter().enumerate() {
        for row in rows {
            let dest = key_of(&row)?.shard(n);
            if dest != origin {
                shipped_rows += 1;
                shipped_bytes += wire_row_bytes(&row);
            }
            out.get_mut(dest)
                .ok_or_else(|| gbj_types::Error::Internal("exchange routed out of range".into()))?
                .push(row);
        }
    }
    sink.add_shipped(shipped_rows, shipped_bytes);
    Ok(out)
}

/// Concentrate all rows on shard 0 (for scalar aggregates and global
/// sorts), metering everything that moves off its origin shard.
pub(crate) fn gather(parts: Vec<Vec<Vec<Value>>>, sink: &MetricsSink) -> Vec<Vec<Value>> {
    let mut shipped_rows = 0u64;
    let mut shipped_bytes = 0u64;
    let mut out = Vec::new();
    for (origin, rows) in parts.into_iter().enumerate() {
        if origin != 0 {
            shipped_rows += rows.len() as u64;
            shipped_bytes += rows.iter().map(|r| wire_row_bytes(r)).sum::<u64>();
        }
        out.extend(rows);
    }
    sink.add_shipped(shipped_rows, shipped_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(vals: &[i64]) -> Vec<Vec<Value>> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    #[test]
    fn exchange_colocates_equal_keys_and_meters_only_movers() {
        let parts = vec![int_rows(&[1, 2, 1]), int_rows(&[2, 1])];
        let sink = MetricsSink::new();
        let out = exchange(parts, 2, &sink, |row| Ok(GroupKey(row.to_vec()))).unwrap();
        // Every key value lives on exactly one destination shard.
        for v in [1i64, 2] {
            let holders = out
                .iter()
                .filter(|p| p.iter().any(|r| r == &vec![Value::Int(v)]))
                .count();
            assert_eq!(holders, 1, "key {v} split across shards");
        }
        let m = sink.finish(5, 5);
        assert!(m.shipped_rows <= 5, "no double counting");
        assert_eq!(
            m.shipped_rows == 0,
            m.shipped_bytes == 0,
            "bytes iff rows moved"
        );
    }

    #[test]
    fn single_shard_exchange_ships_nothing() {
        let parts = vec![int_rows(&[1, 2, 3])];
        let sink = MetricsSink::new();
        let out = exchange(parts, 1, &sink, |row| Ok(GroupKey(row.to_vec()))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().unwrap().len(), 3);
        let m = sink.finish(3, 3);
        assert_eq!((m.shipped_rows, m.shipped_bytes), (0, 0));
    }

    #[test]
    fn gather_meters_all_non_resident_rows() {
        let parts = vec![int_rows(&[1]), int_rows(&[2, 3]), vec![]];
        let sink = MetricsSink::new();
        let out = gather(parts, &sink);
        assert_eq!(out, int_rows(&[1, 2, 3]), "origin order preserved");
        let m = sink.finish(3, 3);
        assert_eq!(m.shipped_rows, 2, "shard 0's row stays home");
        assert!(m.shipped_bytes >= 2 * ROW_FRAME_BYTES);
    }
}
