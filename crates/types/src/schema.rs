//! Schemas and column references.
//!
//! A [`Schema`] is an ordered list of [`Field`]s. Fields carry an
//! optional *qualifier* (the table name or alias they came from) so that
//! `E.DeptID` and `D.DeptID` coexist in a join schema and unqualified
//! references can be rejected as ambiguous, as SQL requires.

use std::fmt;
use std::sync::Arc;

use crate::datatype::DataType;
use crate::error::{Error, Result};

/// A (possibly qualified) reference to a column, e.g. `E.DeptID` or
/// `DeptID`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table name or alias; `None` when the reference is unqualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A qualified reference `table.column`.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Qualifier (table name or alias), if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether the column may hold `NULL`.
    pub nullable: bool,
}

impl Field {
    /// A new nullable field without qualifier.
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Field {
        Field {
            qualifier: None,
            name: name.into(),
            data_type,
            nullable,
        }
    }

    /// The same field under a (new) qualifier.
    #[must_use]
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Field {
        self.qualifier = Some(qualifier.into());
        self
    }

    /// The qualified reference naming this field.
    #[must_use]
    pub fn column_ref(&self) -> ColumnRef {
        ColumnRef {
            table: self.qualifier.clone(),
            column: self.name.clone(),
        }
    }

    /// Whether the given reference names this field (qualifier must
    /// match when the reference carries one).
    #[must_use]
    pub fn matches(&self, r: &ColumnRef) -> bool {
        if !self.name.eq_ignore_ascii_case(&r.column) {
            return false;
        }
        match (&r.table, &self.qualifier) {
            (None, _) => true,
            (Some(rt), Some(q)) => rt.eq_ignore_ascii_case(q),
            (Some(_), None) => false,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.column_ref(), self.data_type)?;
        if !self.nullable {
            f.write_str(" NOT NULL")?;
        }
        Ok(())
    }
}

/// An ordered collection of fields describing a row shape.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Schemas are widely shared between plan nodes; an `Arc` alias keeps
/// cloning cheap.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// The empty schema.
    #[must_use]
    pub fn empty() -> Schema {
        Schema { fields: vec![] }
    }

    /// The fields, in order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at ordinal `i`.
    ///
    /// # Panics
    /// If `i` is out of range. Ordinals come from [`Schema::index_of`]
    /// or [`Schema::resolve`] against this same schema, so a bad one is
    /// a caller bug, not a data-dependent condition.
    #[must_use]
    #[allow(clippy::indexing_slicing)]
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve a column reference to its ordinal, rejecting unknown and
    /// ambiguous references.
    pub fn index_of(&self, r: &ColumnRef) -> Result<usize> {
        let mut found: Option<(usize, &Field)> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(r) {
                if let Some((_, prev)) = found {
                    return Err(Error::Bind(format!(
                        "ambiguous column reference {r}: matches both {} and {}",
                        prev.column_ref(),
                        f.column_ref()
                    )));
                }
                found = Some((i, f));
            }
        }
        found
            .map(|(i, _)| i)
            .ok_or_else(|| Error::Bind(format!("unknown column {r}")))
    }

    /// Resolve, returning the field as well.
    pub fn resolve(&self, r: &ColumnRef) -> Result<(usize, &Field)> {
        let i = self.index_of(r)?;
        let f = self
            .fields
            .get(i)
            .ok_or_else(|| Error::Internal(format!("index_of returned bad ordinal {i}")))?;
        Ok((i, f))
    }

    /// Whether the reference resolves (unambiguously) in this schema.
    #[must_use]
    pub fn contains(&self, r: &ColumnRef) -> bool {
        self.index_of(r).is_ok()
    }

    /// Concatenate two schemas (the schema of a Cartesian product /
    /// join: R1's columns then R2's).
    #[must_use]
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Re-qualify every field (used when a table gets an alias: `FROM
    /// Employee E` renames qualifiers to `E`).
    #[must_use]
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.clone().with_qualifier(qualifier))
                .collect(),
        }
    }

    /// Project onto the given ordinals.
    ///
    /// # Panics
    /// If an ordinal is out of range (caller bug — see
    /// [`Schema::field`]).
    #[must_use]
    #[allow(clippy::indexing_slicing)]
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// All fields whose qualifier equals `qualifier`.
    #[must_use]
    pub fn fields_with_qualifier(&self, qualifier: &str) -> Vec<(usize, &Field)> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.qualifier
                    .as_deref()
                    .is_some_and(|q| q.eq_ignore_ascii_case(qualifier))
            })
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Field::new("EmpID", DataType::Int64, false).with_qualifier("E"),
            Field::new("LastName", DataType::Utf8, false).with_qualifier("E"),
            Field::new("DeptID", DataType::Int64, true).with_qualifier("E"),
        ])
    }

    fn dept_schema() -> Schema {
        Schema::new(vec![
            Field::new("DeptID", DataType::Int64, false).with_qualifier("D"),
            Field::new("Name", DataType::Utf8, true).with_qualifier("D"),
        ])
    }

    #[test]
    fn qualified_resolution() {
        let s = emp_schema();
        assert_eq!(s.index_of(&ColumnRef::qualified("E", "EmpID")).unwrap(), 0);
        assert_eq!(s.index_of(&ColumnRef::bare("DeptID")).unwrap(), 2);
        assert!(s.index_of(&ColumnRef::qualified("D", "EmpID")).is_err());
        assert!(s.index_of(&ColumnRef::bare("Salary")).is_err());
    }

    #[test]
    fn case_insensitive_resolution() {
        let s = emp_schema();
        assert_eq!(s.index_of(&ColumnRef::qualified("e", "empid")).unwrap(), 0);
        assert_eq!(s.index_of(&ColumnRef::bare("DEPTID")).unwrap(), 2);
    }

    #[test]
    fn ambiguity_detected_in_join_schema() {
        let j = emp_schema().join(&dept_schema());
        assert_eq!(j.len(), 5);
        // Unqualified DeptID matches both E.DeptID and D.DeptID.
        let err = j.index_of(&ColumnRef::bare("DeptID")).unwrap_err();
        assert_eq!(err.kind(), "bind");
        // Qualified references disambiguate.
        assert_eq!(j.index_of(&ColumnRef::qualified("E", "DeptID")).unwrap(), 2);
        assert_eq!(j.index_of(&ColumnRef::qualified("D", "DeptID")).unwrap(), 3);
    }

    #[test]
    fn requalification() {
        let s = emp_schema().with_qualifier("Emp2");
        assert!(s.contains(&ColumnRef::qualified("Emp2", "EmpID")));
        assert!(!s.contains(&ColumnRef::qualified("E", "EmpID")));
    }

    #[test]
    fn projection() {
        let s = emp_schema().project(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).name, "DeptID");
        assert_eq!(s.field(1).name, "EmpID");
    }

    #[test]
    fn fields_with_qualifier_filters() {
        let j = emp_schema().join(&dept_schema());
        let d_fields = j.fields_with_qualifier("D");
        assert_eq!(d_fields.len(), 2);
        assert_eq!(d_fields[0].0, 3);
    }

    #[test]
    fn display_forms() {
        let f = Field::new("EmpID", DataType::Int64, false).with_qualifier("E");
        assert_eq!(f.to_string(), "E.EmpID: INTEGER NOT NULL");
        assert_eq!(ColumnRef::bare("x").to_string(), "x");
        assert_eq!(ColumnRef::qualified("T", "x").to_string(), "T.x");
        let s = Schema::new(vec![Field::new("a", DataType::Int64, true)]);
        assert_eq!(s.to_string(), "[a: INTEGER]");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
