//! Ablation over physical operators: the three join algorithms and the
//! two aggregation algorithms on the Figure 1 workload, for both plan
//! shapes. Shows that the *logical* transformation dominates the
//! physical choice — the eager plan wins under every algorithm pairing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbj_datagen::EmpDeptConfig;
use gbj_engine::PushdownPolicy;
use gbj_exec::{AggAlgo, JoinAlgo};

fn bench(c: &mut Criterion) {
    let cfg = EmpDeptConfig {
        employees: 5_000,
        departments: 100,
        null_dept_fraction: 0.0,
        seed: 3,
    };
    let mut db = cfg.build().expect("build");
    let sql = cfg.query();

    let mut group = c.benchmark_group("physical_algorithms");
    group.sample_size(10);
    for (policy, shape) in [
        (PushdownPolicy::Never, "lazy"),
        (PushdownPolicy::Always, "eager"),
    ] {
        for (join, jname) in [
            (JoinAlgo::Hash, "hash"),
            (JoinAlgo::SortMerge, "sortmerge"),
            (JoinAlgo::NestedLoop, "nlj"),
        ] {
            for (agg, aname) in [(AggAlgo::Hash, "hashagg"), (AggAlgo::Sort, "sortagg")] {
                db.options_mut().policy = policy;
                db.options_mut().exec.join = join;
                db.options_mut().exec.agg = agg;
                group.bench_with_input(
                    BenchmarkId::new(shape, format!("{jname}_{aname}")),
                    &(),
                    |b, ()| {
                        b.iter(|| db.query(sql).expect("query"));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
