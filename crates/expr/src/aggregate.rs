//! SQL aggregate functions with SQL2 NULL and DISTINCT semantics.
//!
//! The paper's `F(AA)` is "an array of aggregation functions and/or
//! arithmetic aggregation expressions applied on AA" — we support the
//! five SQL2 aggregates over arbitrary scalar argument expressions, plus
//! `COUNT(*)`. NULL handling follows SQL2:
//!
//! * every aggregate except `COUNT(*)` ignores NULL inputs;
//! * `COUNT` of an empty/all-NULL group is `0`;
//! * `SUM/MIN/MAX/AVG` of an empty/all-NULL group is `NULL`;
//! * `DISTINCT` dedupes inputs under the `=ⁿ` duplicate semantics.

use std::collections::HashSet;
use std::fmt;

use gbj_types::{DataType, Error, GroupKey, Result, Schema, Value};

use crate::expr::Expr;

/// The aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `COUNT(*)` — counts rows, including all-NULL ones.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl AggregateFunction {
    /// SQL name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunction::CountStar | AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Avg => "AVG",
        }
    }
}

/// One aggregate call in a SELECT list, e.g. `SUM(DISTINCT A.Usage)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateCall {
    /// Which function.
    pub func: AggregateFunction,
    /// The argument expression; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
}

impl AggregateCall {
    /// `COUNT(*)`.
    #[must_use]
    pub fn count_star() -> AggregateCall {
        AggregateCall {
            func: AggregateFunction::CountStar,
            arg: None,
            distinct: false,
        }
    }

    /// An aggregate over an argument expression.
    #[must_use]
    pub fn new(func: AggregateFunction, arg: Expr) -> AggregateCall {
        AggregateCall {
            func,
            arg: Some(arg),
            distinct: false,
        }
    }

    /// Mark the call `DISTINCT`.
    #[must_use]
    pub fn with_distinct(mut self) -> AggregateCall {
        self.distinct = true;
        self
    }

    /// The columns referenced by the argument — the paper's *aggregation
    /// columns* `AA` contributed by this call.
    #[must_use]
    pub fn columns(&self) -> std::collections::BTreeSet<gbj_types::ColumnRef> {
        self.arg.as_ref().map(Expr::columns).unwrap_or_default()
    }

    /// Result type under `schema`, validating the argument type.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self.func {
            AggregateFunction::CountStar => Ok(DataType::Int64),
            AggregateFunction::Count => {
                let arg = self.expect_arg()?;
                arg.data_type(schema)?;
                Ok(DataType::Int64)
            }
            AggregateFunction::Sum => {
                let t = self.expect_arg()?.data_type(schema)?;
                if t.is_numeric() {
                    Ok(t)
                } else {
                    Err(Error::Type(format!(
                        "SUM requires a numeric argument, got {t}"
                    )))
                }
            }
            AggregateFunction::Avg => {
                let t = self.expect_arg()?.data_type(schema)?;
                if t.is_numeric() {
                    Ok(DataType::Float64)
                } else {
                    Err(Error::Type(format!(
                        "AVG requires a numeric argument, got {t}"
                    )))
                }
            }
            AggregateFunction::Min | AggregateFunction::Max => {
                let t = self.expect_arg()?.data_type(schema)?;
                if t == DataType::Boolean {
                    Err(Error::Type(format!(
                        "{} over BOOLEAN is not supported",
                        self.func.name()
                    )))
                } else {
                    Ok(t)
                }
            }
        }
    }

    fn expect_arg(&self) -> Result<&Expr> {
        self.arg
            .as_ref()
            .ok_or_else(|| Error::Internal(format!("{} call missing argument", self.func.name())))
    }

    /// Create a fresh accumulator for one group.
    #[must_use]
    pub fn accumulator(&self) -> Accumulator {
        Accumulator::new(self.func, self.distinct)
    }
}

impl fmt::Display for AggregateCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func.name())?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        match &self.arg {
            Some(e) => write!(f, "{e}")?,
            None => f.write_str("*")?,
        }
        f.write_str(")")
    }
}

/// The running state of one aggregate over one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggregateFunction,
    seen: Option<HashSet<GroupKey>>,
    state: AggState,
}

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt { sum: i64, any: bool },
    SumFloat { sum: f64, any: bool },
    MinMax(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl Accumulator {
    fn new(func: AggregateFunction, distinct: bool) -> Accumulator {
        let state = match func {
            AggregateFunction::CountStar | AggregateFunction::Count => AggState::Count(0),
            // SUM starts as integer and promotes to float on the first
            // float input.
            AggregateFunction::Sum => AggState::SumInt { sum: 0, any: false },
            AggregateFunction::Min | AggregateFunction::Max => AggState::MinMax(None),
            AggregateFunction::Avg => AggState::Avg { sum: 0.0, count: 0 },
        };
        Accumulator {
            func,
            seen: distinct.then(HashSet::new),
            state,
        }
    }

    /// Feed one input value. For `COUNT(*)` pass the dummy
    /// `Value::Int(1)` (or anything non-NULL) once per row.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.func != AggregateFunction::CountStar {
            if v.is_null() {
                return Ok(()); // aggregates ignore NULL inputs
            }
            if let Some(seen) = &mut self.seen {
                if !seen.insert(GroupKey(vec![v.clone()])) {
                    return Ok(()); // duplicate under DISTINCT
                }
            }
        }
        match &mut self.state {
            AggState::Count(n) => *n += 1,
            AggState::SumInt { sum, any } => match v {
                Value::Int(i) => {
                    *sum = sum
                        .checked_add(*i)
                        .ok_or_else(|| Error::Execution("integer overflow in SUM".into()))?;
                    *any = true;
                }
                Value::Float(f) => {
                    let promoted = *sum as f64 + f;
                    self.state = AggState::SumFloat {
                        sum: promoted,
                        any: true,
                    };
                }
                other => return Err(Error::Type(format!("SUM over non-numeric value {other}"))),
            },
            AggState::SumFloat { sum, any } => {
                let f = v
                    .as_f64()?
                    .ok_or_else(|| Error::Internal("NULL reached SUM state".into()))?;
                *sum += f;
                *any = true;
            }
            AggState::MinMax(cur) => {
                let keep_new = match cur {
                    None => true,
                    Some(best) => {
                        let ord = v.sql_cmp(best).ok_or_else(|| {
                            Error::Type(format!(
                                "incomparable values in {}: {v} vs {best}",
                                self.func.name()
                            ))
                        })?;
                        match self.func {
                            AggregateFunction::Min => ord == std::cmp::Ordering::Less,
                            AggregateFunction::Max => ord == std::cmp::Ordering::Greater,
                            _ => unreachable!(),
                        }
                    }
                };
                if keep_new {
                    *cur = Some(v.clone());
                }
            }
            AggState::Avg { sum, count } => {
                let f = v
                    .as_f64()?
                    .ok_or_else(|| Error::Internal("NULL reached AVG state".into()))?;
                *sum += f;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Merge another accumulator of the same call into this one, as if
    /// the other's inputs had been fed to `self` after its own. This is
    /// the combine path partitioned parallel aggregation uses to fold
    /// per-morsel partial states together.
    ///
    /// Exactness caveat: for `SUM`/`AVG` over floats the merged total is
    /// `self + other` rather than a replay of the original input order,
    /// so it can differ from serial in the last ulp when inputs are not
    /// exactly representable. Integer inputs (including `AVG`'s `f64`
    /// sums of integers below 2^53) are exact and order-insensitive.
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        if self.func != other.func || self.seen.is_some() != other.seen.is_some() {
            return Err(Error::Internal(
                "cannot merge accumulators of different aggregate calls".into(),
            ));
        }
        if let Some(other_seen) = &other.seen {
            // DISTINCT: the state only ever saw deduped values, so
            // replay the other's distinct set through `update`, which
            // re-dedupes against our own `seen`. Replay in sorted order:
            // `HashSet` iteration order is unstable and must not leak
            // into results.
            let mut vals: Vec<&Value> = other_seen.iter().filter_map(|k| k.0.first()).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            for v in vals {
                self.update(v)?;
            }
            return Ok(());
        }
        match (&mut self.state, &other.state) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (AggState::SumInt { sum, any }, AggState::SumInt { sum: s, any: a }) => {
                if *a {
                    *sum = sum
                        .checked_add(*s)
                        .ok_or_else(|| Error::Execution("integer overflow in SUM".into()))?;
                    *any = true;
                }
            }
            (AggState::SumInt { sum, any }, AggState::SumFloat { sum: s, any: a }) => {
                self.state = AggState::SumFloat {
                    sum: *sum as f64 + s,
                    any: *any || *a,
                };
            }
            (AggState::SumFloat { sum, any }, AggState::SumInt { sum: s, any: a }) => {
                if *a {
                    *sum += *s as f64;
                    *any = true;
                }
            }
            (AggState::SumFloat { sum, any }, AggState::SumFloat { sum: s, any: a }) => {
                if *a {
                    *sum += s;
                    *any = true;
                }
            }
            (AggState::MinMax(cur), AggState::MinMax(theirs)) => {
                if let Some(v) = theirs {
                    let keep_new = match &*cur {
                        None => true,
                        Some(best) => {
                            let ord = v.sql_cmp(best).ok_or_else(|| {
                                Error::Type(format!(
                                    "incomparable values in {}: {v} vs {best}",
                                    self.func.name()
                                ))
                            })?;
                            match self.func {
                                AggregateFunction::Min => ord == std::cmp::Ordering::Less,
                                AggregateFunction::Max => ord == std::cmp::Ordering::Greater,
                                _ => {
                                    return Err(Error::Internal(
                                        "MinMax state on a non-MIN/MAX call".into(),
                                    ))
                                }
                            }
                        }
                    };
                    if keep_new {
                        *cur = Some(v.clone());
                    }
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s, count: c }) => {
                *sum += s;
                *count += c;
            }
            _ => {
                return Err(Error::Internal(
                    "cannot merge accumulators in mismatched states".into(),
                ))
            }
        }
        Ok(())
    }

    /// The aggregate result for the group.
    #[must_use]
    pub fn finish(&self) -> Value {
        match &self.state {
            AggState::Count(n) => Value::Int(*n),
            AggState::SumInt { sum, any } => {
                if *any {
                    Value::Int(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, any } => {
                if *any {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::MinMax(cur) => cur.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::Field;

    fn feed(call: &AggregateCall, vals: &[Value]) -> Value {
        let mut acc = call.accumulator();
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_star_counts_every_row() {
        let c = AggregateCall::count_star();
        let v = feed(&c, &[Value::Null, Value::Null, Value::Int(1)]);
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn count_ignores_nulls_and_empty_is_zero() {
        let c = AggregateCall::new(AggregateFunction::Count, Expr::bare("x"));
        assert_eq!(
            feed(&c, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
        assert_eq!(feed(&c, &[]), Value::Int(0));
        assert_eq!(feed(&c, &[Value::Null, Value::Null]), Value::Int(0));
    }

    #[test]
    fn sum_int_float_and_null_groups() {
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x"));
        assert_eq!(
            feed(&c, &[Value::Int(1), Value::Int(2), Value::Null]),
            Value::Int(3)
        );
        assert_eq!(feed(&c, &[]), Value::Null);
        assert_eq!(feed(&c, &[Value::Null]), Value::Null);
        // Promotion to float mid-stream.
        assert_eq!(
            feed(&c, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
        assert_eq!(
            feed(&c, &[Value::Float(0.5), Value::Int(1)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn sum_overflow_is_an_error() {
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x"));
        let mut acc = c.accumulator();
        acc.update(&Value::Int(i64::MAX)).unwrap();
        assert!(acc.update(&Value::Int(1)).is_err());
    }

    #[test]
    fn min_max() {
        let mn = AggregateCall::new(AggregateFunction::Min, Expr::bare("x"));
        let mx = AggregateCall::new(AggregateFunction::Max, Expr::bare("x"));
        let vals = [Value::Int(5), Value::Null, Value::Int(2), Value::Int(9)];
        assert_eq!(feed(&mn, &vals), Value::Int(2));
        assert_eq!(feed(&mx, &vals), Value::Int(9));
        assert_eq!(feed(&mn, &[]), Value::Null);
        // Strings compare lexicographically.
        let vals = [Value::str("pear"), Value::str("apple")];
        assert_eq!(feed(&mn, &vals), Value::str("apple"));
        assert_eq!(feed(&mx, &vals), Value::str("pear"));
    }

    #[test]
    fn avg_ignores_nulls() {
        let c = AggregateCall::new(AggregateFunction::Avg, Expr::bare("x"));
        assert_eq!(
            feed(&c, &[Value::Int(1), Value::Null, Value::Int(3)]),
            Value::Float(2.0)
        );
        assert_eq!(feed(&c, &[]), Value::Null);
    }

    #[test]
    fn distinct_dedupes_under_null_eq() {
        let c = AggregateCall::new(AggregateFunction::Count, Expr::bare("x")).with_distinct();
        assert_eq!(
            feed(
                &c,
                &[Value::Int(1), Value::Int(1), Value::Int(2), Value::Null]
            ),
            Value::Int(2)
        );
        let s = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x")).with_distinct();
        assert_eq!(
            feed(&s, &[Value::Int(5), Value::Int(5), Value::Int(3)]),
            Value::Int(8)
        );
    }

    #[test]
    fn type_checking() {
        let schema = Schema::new(vec![
            Field::new("n", DataType::Int64, true),
            Field::new("s", DataType::Utf8, true),
            Field::new("b", DataType::Boolean, true),
        ]);
        assert_eq!(
            AggregateCall::count_star().data_type(&schema).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggregateCall::new(AggregateFunction::Sum, Expr::bare("n"))
                .data_type(&schema)
                .unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggregateCall::new(AggregateFunction::Avg, Expr::bare("n"))
                .data_type(&schema)
                .unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggregateCall::new(AggregateFunction::Min, Expr::bare("s"))
                .data_type(&schema)
                .unwrap(),
            DataType::Utf8
        );
        assert!(AggregateCall::new(AggregateFunction::Sum, Expr::bare("s"))
            .data_type(&schema)
            .is_err());
        assert!(AggregateCall::new(AggregateFunction::Avg, Expr::bare("s"))
            .data_type(&schema)
            .is_err());
        assert!(AggregateCall::new(AggregateFunction::Max, Expr::bare("b"))
            .data_type(&schema)
            .is_err());
    }

    #[test]
    fn display() {
        assert_eq!(AggregateCall::count_star().to_string(), "COUNT(*)");
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::col("A", "Usage"));
        assert_eq!(c.to_string(), "SUM(A.Usage)");
        let c = AggregateCall::new(AggregateFunction::Count, Expr::col("A", "x")).with_distinct();
        assert_eq!(c.to_string(), "COUNT(DISTINCT A.x)");
    }

    #[test]
    fn aggregate_columns() {
        let c = AggregateCall::new(
            AggregateFunction::Sum,
            Expr::col("A", "x").binary(crate::expr::BinaryOp::Add, Expr::col("A", "y")),
        );
        let cols = c.columns();
        assert_eq!(cols.len(), 2);
        assert!(AggregateCall::count_star().columns().is_empty());
    }

    #[test]
    fn sum_rejects_non_numeric_value_at_runtime() {
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x"));
        let mut acc = c.accumulator();
        assert!(acc.update(&Value::str("oops")).is_err());
    }

    #[test]
    fn minmax_incomparable_is_type_error() {
        let c = AggregateCall::new(AggregateFunction::Min, Expr::bare("x"));
        let mut acc = c.accumulator();
        acc.update(&Value::Int(1)).unwrap();
        assert!(acc.update(&Value::str("a")).is_err());
    }

    /// `merge` must agree with feeding the concatenated input serially,
    /// for every function, split point, and NULL placement.
    #[test]
    fn merge_equals_serial_feed() {
        let calls: Vec<AggregateCall> = vec![
            AggregateCall::count_star(),
            AggregateCall::new(AggregateFunction::Count, Expr::bare("x")),
            AggregateCall::new(AggregateFunction::Sum, Expr::bare("x")),
            AggregateCall::new(AggregateFunction::Min, Expr::bare("x")),
            AggregateCall::new(AggregateFunction::Max, Expr::bare("x")),
            AggregateCall::new(AggregateFunction::Avg, Expr::bare("x")),
            AggregateCall::new(AggregateFunction::Count, Expr::bare("x")).with_distinct(),
            AggregateCall::new(AggregateFunction::Sum, Expr::bare("x")).with_distinct(),
            AggregateCall::new(AggregateFunction::Avg, Expr::bare("x")).with_distinct(),
        ];
        let vals = [
            Value::Int(3),
            Value::Null,
            Value::Int(-1),
            Value::Int(3),
            Value::Int(7),
            Value::Null,
            Value::Int(0),
        ];
        for call in &calls {
            for split in 0..=vals.len() {
                let (a, b) = vals.split_at(split);
                let serial = feed(call, &vals);
                let mut left = call.accumulator();
                for v in a {
                    left.update(v).unwrap();
                }
                let mut right = call.accumulator();
                for v in b {
                    right.update(v).unwrap();
                }
                left.merge(&right).unwrap();
                assert_eq!(
                    left.finish(),
                    serial,
                    "{call} split at {split}: merge differs from serial"
                );
            }
        }
    }

    #[test]
    fn merge_promotes_int_and_float_sums_both_ways() {
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x"));
        // int-state ⊕ float-state
        let mut a = c.accumulator();
        a.update(&Value::Int(2)).unwrap();
        let mut b = c.accumulator();
        b.update(&Value::Float(0.5)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Float(2.5));
        // float-state ⊕ int-state
        let mut a = c.accumulator();
        a.update(&Value::Float(0.5)).unwrap();
        let mut b = c.accumulator();
        b.update(&Value::Int(2)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Float(2.5));
        // empty ⊕ empty stays NULL regardless of state flavour
        let a2 = c.accumulator();
        let mut b2 = c.accumulator();
        b2.merge(&a2).unwrap();
        assert_eq!(b2.finish(), Value::Null);
    }

    #[test]
    fn merge_overflow_is_an_error() {
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x"));
        let mut a = c.accumulator();
        a.update(&Value::Int(i64::MAX)).unwrap();
        let mut b = c.accumulator();
        b.update(&Value::Int(1)).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_distinct_dedupes_across_partitions() {
        let c = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x")).with_distinct();
        let mut a = c.accumulator();
        a.update(&Value::Int(5)).unwrap();
        a.update(&Value::Int(3)).unwrap();
        let mut b = c.accumulator();
        b.update(&Value::Int(5)).unwrap();
        b.update(&Value::Int(2)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Int(10), "5 must count once across parts");
    }

    #[test]
    fn merge_mismatched_calls_is_internal_error() {
        let sum = AggregateCall::new(AggregateFunction::Sum, Expr::bare("x"));
        let cnt = AggregateCall::new(AggregateFunction::Count, Expr::bare("x"));
        let mut a = sum.accumulator();
        assert!(a.merge(&cnt.accumulator()).is_err());
        let distinct = sum.clone().with_distinct();
        assert!(a.merge(&distinct.accumulator()).is_err());
    }
}
