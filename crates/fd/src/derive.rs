//! Deriving functional dependencies from catalog constraints and query
//! predicates.
//!
//! This implements the knowledge base behind TestFD: key constraints of
//! the participating tables, plus the Type-1/Type-2 equality atoms of
//! one DNF disjunct, become an [`FdSet`] over which attribute closures
//! answer "does FD1 / FD2 hold?".
//!
//! The paper's Example 2 (derived dependencies) falls out of the same
//! machinery: a key of a source table stays a key of the derived table
//! when the closure reasoning carries it through selections and joins.

use gbj_catalog::TableDef;
use gbj_expr::{AtomClass, Expr};
use gbj_types::ColumnRef;

use crate::fd::{Fd, FdSet};

/// The pseudo-column standing for a table's implicit RowID in FD
/// reasoning (paper §4.3). The `#` prefix keeps it out of the SQL
/// identifier space so it can never collide with a user column.
#[must_use]
pub fn row_id_col(qualifier: &str) -> ColumnRef {
    ColumnRef::qualified(qualifier, "#ROWID")
}

/// A derivation context: the tables in scope (with the qualifiers they
/// are known by in the query) and their key constraints.
#[derive(Debug, Clone, Default)]
pub struct FdContext {
    tables: Vec<(String, TableDef)>,
}

impl FdContext {
    /// An empty context.
    #[must_use]
    pub fn new() -> FdContext {
        FdContext::default()
    }

    /// Add a table under the qualifier the query uses for it (its alias,
    /// or its own name).
    pub fn add_table(&mut self, qualifier: impl Into<String>, def: TableDef) {
        self.tables.push((qualifier.into(), def));
    }

    /// The qualifiers registered in this context.
    pub fn qualifiers(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(|(q, _)| q.as_str())
    }

    /// Look up a table definition by qualifier.
    #[must_use]
    pub fn table(&self, qualifier: &str) -> Option<&TableDef> {
        self.tables
            .iter()
            .find(|(q, _)| q.eq_ignore_ascii_case(qualifier))
            .map(|(_, d)| d)
    }

    /// All candidate keys of the table known by `qualifier`, with
    /// columns qualified accordingly.
    #[must_use]
    pub fn keys_of(&self, qualifier: &str) -> Vec<Vec<ColumnRef>> {
        let Some(def) = self.table(qualifier) else {
            return vec![];
        };
        def.candidate_keys()
            .into_iter()
            .map(|key| {
                key.iter()
                    .map(|c| ColumnRef::qualified(qualifier, c.clone()))
                    .collect()
            })
            .collect()
    }

    /// All columns of the table known by `qualifier` (qualified),
    /// including the RowID pseudo-column.
    #[must_use]
    pub fn columns_of(&self, qualifier: &str) -> Vec<ColumnRef> {
        let Some(def) = self.table(qualifier) else {
            return vec![];
        };
        let mut cols: Vec<ColumnRef> = def
            .columns
            .iter()
            .map(|c| ColumnRef::qualified(qualifier, c.name.clone()))
            .collect();
        cols.push(row_id_col(qualifier));
        cols
    }

    /// Build the [`FdSet`] for one conjunction of atoms (a DNF disjunct
    /// `Ei` in TestFD's Step 4):
    ///
    /// * each candidate key of each table yields a key dependency onto
    ///   all the table's columns plus its RowID;
    /// * each Type-1 atom (`col = const`) registers a constant column
    ///   (Step 4(b)/(f));
    /// * each Type-2 atom (`col = col`) registers a bidirectional
    ///   dependency;
    /// * other atoms are ignored — they can only *weaken* what we can
    ///   derive, so ignoring them is conservative (the paper drops them
    ///   in Steps 1–2).
    #[must_use]
    pub fn fd_set(&self, atoms: &[Expr]) -> FdSet {
        let mut fds = FdSet::new();
        for (q, def) in &self.tables {
            let all_cols: Vec<ColumnRef> = self.columns_of(q);
            for key in def.candidate_keys() {
                let lhs: Vec<ColumnRef> = key
                    .iter()
                    .map(|c| ColumnRef::qualified(q.clone(), c.clone()))
                    .collect();
                fds.add(Fd::new(
                    lhs.clone(),
                    all_cols.clone(),
                    format!(
                        "key ({}) of {}",
                        lhs.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", "),
                        q
                    ),
                ));
            }
        }
        for atom in atoms {
            match AtomClass::of(atom) {
                AtomClass::ColumnEqConstant(c, v) => {
                    fds.add_constant(c.clone(), format!("{c} = {v}"));
                }
                AtomClass::ColumnEqColumn(a, b) => {
                    let reason = format!("{a} = {b}");
                    fds.add_equality(a, b, reason);
                }
                AtomClass::Other => {}
            }
        }
        fds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_catalog::{ColumnDef, Constraint};
    use gbj_types::DataType;
    use std::collections::BTreeSet;

    fn part() -> TableDef {
        TableDef::new(
            "Part",
            vec![
                ColumnDef::new("ClassCode", DataType::Int64),
                ColumnDef::new("PartNo", DataType::Int64),
                ColumnDef::new("PartName", DataType::Utf8),
                ColumnDef::new("SupplierNo", DataType::Int64),
            ],
        )
        .with_constraint(Constraint::PrimaryKey(vec![
            "ClassCode".into(),
            "PartNo".into(),
        ]))
        .validate()
        .unwrap()
    }

    fn supplier() -> TableDef {
        TableDef::new(
            "Supplier",
            vec![
                ColumnDef::new("SupplierNo", DataType::Int64),
                ColumnDef::new("Name", DataType::Utf8),
                ColumnDef::new("Address", DataType::Utf8),
            ],
        )
        .with_constraint(Constraint::PrimaryKey(vec!["SupplierNo".into()]))
        .validate()
        .unwrap()
    }

    fn cols(items: &[(&str, &str)]) -> BTreeSet<ColumnRef> {
        items
            .iter()
            .map(|(t, c)| ColumnRef::qualified(*t, *c))
            .collect()
    }

    /// The paper's Example 2: in
    /// `SELECT … FROM Part P, Supplier S
    ///  WHERE P.ClassCode = 25 AND P.SupplierNo = S.SupplierNo`
    /// PartNo is a key of the derived table, and Name is functionally
    /// dependent on SupplierNo.
    #[test]
    fn example2_derived_key_dependency() {
        let mut ctx = FdContext::new();
        ctx.add_table("P", part());
        ctx.add_table("S", supplier());
        let atoms = vec![
            Expr::col("P", "ClassCode").eq(Expr::lit(25i64)),
            Expr::col("P", "SupplierNo").eq(Expr::col("S", "SupplierNo")),
        ];
        let fds = ctx.fd_set(&atoms);

        // PartNo determines every column of both tables …
        let closure = fds.closure(&cols(&[("P", "PartNo")]));
        assert!(closure.contains(&ColumnRef::qualified("P", "PartName")));
        assert!(closure.contains(&ColumnRef::qualified("S", "Name")));
        assert!(closure.contains(&ColumnRef::qualified("S", "Address")));
        // … including both RowIDs: it is a key of the derived table.
        assert!(closure.contains(&row_id_col("P")));
        assert!(closure.contains(&row_id_col("S")));

        // The non-key derived dependency: SupplierNo → Name.
        assert!(fds.implies(&cols(&[("S", "SupplierNo")]), &cols(&[("S", "Name")])));
        // But Name does not determine SupplierNo.
        assert!(!fds.implies(&cols(&[("S", "Name")]), &cols(&[("S", "SupplierNo")])));
    }

    #[test]
    fn without_the_constant_partno_is_not_a_key() {
        let mut ctx = FdContext::new();
        ctx.add_table("P", part());
        ctx.add_table("S", supplier());
        // No ClassCode = 25 atom this time.
        let atoms = vec![Expr::col("P", "SupplierNo").eq(Expr::col("S", "SupplierNo"))];
        let fds = ctx.fd_set(&atoms);
        let closure = fds.closure(&cols(&[("P", "PartNo")]));
        assert!(
            !closure.contains(&ColumnRef::qualified("P", "PartName")),
            "PartNo alone is not the key of Part"
        );
    }

    #[test]
    fn unique_constraints_also_contribute_keys() {
        let t = TableDef::new(
            "U",
            vec![
                ColumnDef::new("id", DataType::Int64),
                ColumnDef::new("sid", DataType::Int64),
                ColumnDef::new("payload", DataType::Utf8),
            ],
        )
        .with_constraint(Constraint::PrimaryKey(vec!["id".into()]))
        .with_constraint(Constraint::Unique(vec!["sid".into()]))
        .validate()
        .unwrap();
        let mut ctx = FdContext::new();
        ctx.add_table("U", t);
        let fds = ctx.fd_set(&[]);
        assert!(fds.implies(
            &cols(&[("U", "sid")]),
            &cols(&[("U", "payload"), ("U", "id")])
        ));
    }

    #[test]
    fn keys_of_and_columns_of() {
        let mut ctx = FdContext::new();
        ctx.add_table("S", supplier());
        let keys = ctx.keys_of("S");
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0], vec![ColumnRef::qualified("S", "SupplierNo")]);
        let cols = ctx.columns_of("S");
        assert_eq!(cols.len(), 4); // 3 columns + RowID
        assert_eq!(cols[3], row_id_col("S"));
        assert!(ctx.keys_of("missing").is_empty());
        assert!(ctx.columns_of("missing").is_empty());
    }

    #[test]
    fn non_equality_atoms_are_ignored() {
        let mut ctx = FdContext::new();
        ctx.add_table("S", supplier());
        let atoms = vec![Expr::col("S", "Name").binary(gbj_expr::BinaryOp::Lt, Expr::lit("z"))];
        let fds = ctx.fd_set(&atoms);
        // Only the key dependency exists; Name is not constant.
        assert!(!fds.implies(&cols(&[("S", "Address")]), &cols(&[("S", "Name")])));
    }

    #[test]
    fn table_lookup_is_case_insensitive() {
        let mut ctx = FdContext::new();
        ctx.add_table("Sup", supplier());
        assert!(ctx.table("sup").is_some());
        assert!(ctx.table("SUP").is_some());
        assert_eq!(ctx.qualifiers().collect::<Vec<_>>(), vec!["Sup"]);
    }

    #[test]
    fn row_id_col_cannot_collide_with_sql_identifiers() {
        let c = row_id_col("T");
        assert!(c.column.starts_with('#'));
    }
}
