//! DELETE / UPDATE end to end: constraint re-validation on data
//! changes (the premise of Section 6 — constraints hold in every valid
//! instance *because* the system enforces them on every change), and
//! the transformation staying correct across mutations.

use gbj::engine::{PushdownPolicy, QueryOutput};
use gbj::{Database, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Department (DeptID INTEGER PRIMARY KEY, Name VARCHAR(20), \
             Budget INTEGER CHECK (Budget >= 0)); \
         CREATE TABLE Employee (EmpID INTEGER PRIMARY KEY, \
             DeptID INTEGER REFERENCES Department, Salary INTEGER); \
         INSERT INTO Department VALUES (1, 'Eng', 100), (2, 'Ops', 50), (3, 'HR', 10); \
         INSERT INTO Employee VALUES (1,1,10),(2,1,20),(3,2,30),(4,3,40),(5,NULL,50);",
    )
    .unwrap();
    db
}

#[test]
fn delete_with_predicate() {
    let mut d = db();
    let out = d.execute("DELETE FROM Employee WHERE Salary > 25").unwrap();
    assert!(matches!(out, QueryOutput::Affected(3)));
    let rows = d.query("SELECT COUNT(*) FROM Employee").unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(2));
    // Deleting everything.
    let out = d.execute("DELETE FROM Employee").unwrap();
    assert!(matches!(out, QueryOutput::Affected(2)));
    assert!(d.storage().table_data("Employee").unwrap().is_empty());
}

#[test]
fn delete_respects_incoming_foreign_keys() {
    let mut d = db();
    // Department 1 is referenced by employees 1 and 2: RESTRICT.
    let err = d
        .execute("DELETE FROM Department WHERE DeptID = 1")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    assert!(err.message().contains("Employee"), "{}", err.message());

    // After removing its employees, the delete succeeds.
    d.execute("DELETE FROM Employee WHERE DeptID = 1").unwrap();
    let out = d
        .execute("DELETE FROM Department WHERE DeptID = 1")
        .unwrap();
    assert!(matches!(out, QueryOutput::Affected(1)));
}

#[test]
fn delete_where_unknown_keeps_rows() {
    let mut d = db();
    // DeptID = 1 is unknown for the NULL-department employee: kept.
    d.execute("DELETE FROM Employee WHERE DeptID = DeptID")
        .unwrap();
    let rows = d.query("SELECT EmpID FROM Employee").unwrap();
    assert_eq!(rows.len(), 1, "only the NULL-DeptID row survives");
    assert_eq!(rows.rows[0][0], Value::Int(5));
}

#[test]
fn update_values_and_arithmetic() {
    let mut d = db();
    let out = d
        .execute("UPDATE Employee SET Salary = Salary * 2 WHERE DeptID = 1")
        .unwrap();
    assert!(matches!(out, QueryOutput::Affected(2)));
    let rows = d
        .query("SELECT Salary FROM Employee WHERE DeptID = 1 ORDER BY Salary")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(20));
    assert_eq!(rows.rows[1][0], Value::Int(40));
    // Multi-assignment, including setting to NULL.
    d.execute("UPDATE Employee SET DeptID = NULL, Salary = 0 WHERE EmpID = 3")
        .unwrap();
    let rows = d
        .query("SELECT DeptID, Salary FROM Employee WHERE EmpID = 3")
        .unwrap();
    assert_eq!(rows.rows[0], vec![Value::Null, Value::Int(0)]);
}

#[test]
fn update_revalidates_constraints() {
    let mut d = db();
    // CHECK violation.
    let err = d
        .execute("UPDATE Department SET Budget = -1 WHERE DeptID = 1")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // Primary-key collision.
    let err = d
        .execute("UPDATE Employee SET EmpID = 2 WHERE EmpID = 1")
        .unwrap_err();
    assert!(err.message().contains("duplicate key"), "{}", err.message());
    // Outgoing FK: moving an employee to a non-existent department.
    let err = d
        .execute("UPDATE Employee SET DeptID = 99 WHERE EmpID = 1")
        .unwrap_err();
    assert!(err.message().contains("foreign key"), "{}", err.message());
    // Incoming FK: renumbering a referenced department key.
    let err = d
        .execute("UPDATE Department SET DeptID = 9 WHERE DeptID = 1")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // But renumbering an unreferenced one works.
    d.execute("DELETE FROM Employee WHERE DeptID = 3").unwrap();
    let out = d
        .execute("UPDATE Department SET DeptID = 9 WHERE DeptID = 3")
        .unwrap();
    assert!(matches!(out, QueryOutput::Affected(1)));
}

#[test]
fn update_type_checking() {
    let mut d = db();
    let err = d
        .execute("UPDATE Department SET Name = 5 WHERE DeptID = 1")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // NOT NULL via PK column.
    let err = d
        .execute("UPDATE Employee SET EmpID = NULL WHERE EmpID = 1")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
}

/// The eager/lazy equivalence is preserved across mutations (indexes
/// and NDV estimates are rebuilt correctly).
#[test]
fn transformation_stays_correct_after_mutation() {
    let mut d = db();
    d.execute("UPDATE Employee SET Salary = Salary + 5")
        .unwrap();
    d.execute("DELETE FROM Employee WHERE EmpID = 4").unwrap();
    d.execute("INSERT INTO Employee VALUES (6, 2, 60)").unwrap();

    let sql = "SELECT D.DeptID, D.Name, COUNT(E.EmpID), SUM(E.Salary) \
               FROM Employee E, Department D \
               WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name";
    d.options_mut().policy = PushdownPolicy::Always;
    let eager = d.query(sql).unwrap();
    d.options_mut().policy = PushdownPolicy::Never;
    let lazy = d.query(sql).unwrap();
    assert!(eager.multiset_eq(&lazy));
    let sorted = lazy.sorted();
    assert_eq!(
        sorted.rows[0],
        vec![
            Value::Int(1),
            Value::str("Eng"),
            Value::Int(2),
            Value::Int(40)
        ]
    );
    assert_eq!(
        sorted.rows[1],
        vec![
            Value::Int(2),
            Value::str("Ops"),
            Value::Int(2),
            Value::Int(95)
        ]
    );
}

/// UPDATE matching zero rows is a no-op, and row identity is preserved
/// for untouched rows.
#[test]
fn update_zero_rows_and_row_identity() {
    let mut d = db();
    let before: Vec<u64> = d
        .storage()
        .table_data("Employee")
        .unwrap()
        .rows()
        .map(|r| r.row_id)
        .collect();
    let out = d
        .execute("UPDATE Employee SET Salary = 0 WHERE EmpID = 999")
        .unwrap();
    assert!(matches!(out, QueryOutput::Affected(0)));
    d.execute("UPDATE Employee SET Salary = 1 WHERE EmpID = 1")
        .unwrap();
    let after: Vec<u64> = d
        .storage()
        .table_data("Employee")
        .unwrap()
        .rows()
        .map(|r| r.row_id)
        .collect();
    assert_eq!(before, after, "RowIDs survive updates");
}
