//! A small interactive shell for the `gbj` engine, running through the
//! concurrent serving layer (`gbj-server`): every SELECT is an
//! admitted snapshot read with the session's deadline attached, every
//! write runs on the serialised write path, and prepared plans come
//! from the bound-plan cache.
//!
//! ```text
//! cargo run --bin gbj-repl                  # interactive
//! cargo run --bin gbj-repl script.sql       # run a file, then drop to the prompt
//! cargo run --bin gbj-repl -- --threads 4   # parallel executor (4 workers)
//! ```
//!
//! Statements end with `;`. Meta commands:
//!
//! * `\q` — quit
//! * `\tables` — list tables and views
//! * `\policy cost|eager|lazy` — set the pushdown policy
//! * `\threads n` — set the executor worker-thread count
//! * `\timeout <ms>|off` — set (or clear) this session's query deadline
//! * `\metrics` — timings, estimate-vs-actual audit and operator
//!   counters of the most recent query
//! * `\sessions` — server counters: sessions, admitted/shed/cancelled/
//!   deadline-exceeded queries, plan-cache hits, snapshot refreshes
//! * `\lint SELECT …` — run the static analyzer over a query without
//!   executing it (same diagnostics as `EXPLAIN (LINT)`)
//! * `\help` — this text

use std::io::{BufRead, Write};
use std::time::Duration;

use gbj::engine::{PushdownPolicy, QueryMetrics, QueryOutput};
use gbj::server::{Server, ServerConfig, Session};

struct Repl {
    server: Server,
    session: Session,
    /// Metrics of the most recent session read (`\metrics`).
    last: Option<QueryMetrics>,
}

impl Repl {
    fn new() -> Repl {
        let server = Server::new(ServerConfig::default().with_plan_cache(32));
        let session = server.connect();
        Repl {
            server,
            session,
            last: None,
        }
    }
}

fn print_output(out: &QueryOutput) {
    match out {
        QueryOutput::Rows(rows) => println!("{rows}"),
        QueryOutput::Explain(text) => println!("{text}"),
        QueryOutput::Affected(n) => println!("INSERT {n}"),
        QueryOutput::Ddl(msg) => println!("{msg}"),
    }
}

/// True when the buffer is one bare SELECT (no trailing second
/// statement) that can take the session's snapshot-read path.
fn is_single_select(sql: &str) -> bool {
    let body = sql.trim().trim_end_matches(';');
    !body.contains(';')
        && body
            .trim_start()
            .get(..6)
            .is_some_and(|p| p.eq_ignore_ascii_case("select"))
}

fn run_buffer(state: &mut Repl, sql: &str) {
    if is_single_select(sql) {
        match state.session.query(sql.trim().trim_end_matches(';')) {
            Ok(resp) => {
                println!("{}", resp.rows);
                if resp.cache_hit {
                    println!("(cached plan, epoch {})", resp.epoch);
                }
                state.last = Some(resp.metrics);
            }
            Err(e) => eprintln!("{e}"),
        }
        return;
    }
    match state.session.run(sql) {
        Ok(outputs) => {
            for out in outputs {
                print_output(&out);
            }
        }
        Err(e) => eprintln!("{e}"),
    }
}

fn handle_meta(state: &mut Repl, line: &str) -> bool {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("\\q") | Some("\\quit") => return false,
        Some("\\help") => {
            println!(
                "statements end with ';'. SELECT / INSERT / UPDATE / DELETE / \
                 CREATE TABLE|DOMAIN|VIEW|ASSERTION / DROP / EXPLAIN [ANALYZE] [(LINT)].\n\
                 \\q quit | \\tables list | \\policy cost|eager|lazy | \\threads n | \
                 \\timeout ms|off session deadline | \\metrics last-query metrics | \
                 \\sessions server counters | \\lint SELECT … analyze without running"
            );
        }
        Some("\\metrics") => match &state.last {
            Some(m) => print!("{}", m.render()),
            None => println!("no session read has run yet"),
        },
        Some("\\sessions") => print!("{}", state.server.metrics().render()),
        Some("\\timeout") => match parts.next() {
            Some("off") => {
                state.session.set_timeout(None);
                println!("session timeout off");
            }
            Some(ms) => match ms.parse::<u64>() {
                Ok(ms) => {
                    state.session.set_timeout(Some(Duration::from_millis(ms)));
                    println!("session timeout = {ms} ms");
                }
                Err(_) => eprintln!("usage: \\timeout <milliseconds>|off"),
            },
            None => match state.session.timeout() {
                Some(t) => println!("session timeout = {} ms", t.as_millis()),
                None => println!("session timeout off"),
            },
        },
        Some("\\lint") => {
            let rest = line["\\lint".len()..].trim().trim_end_matches(';');
            if rest.is_empty() {
                eprintln!("usage: \\lint SELECT …");
            } else {
                match state.server.with_snapshot(|db| db.lint_select(rest)) {
                    Ok(report) => print!("{}", report.render_text()),
                    Err(e) => eprintln!("{e}"),
                }
            }
        }
        Some("\\tables") => {
            state.server.with_snapshot(|db| {
                for t in db.catalog().tables() {
                    println!("table {} ({} columns)", t.name, t.columns.len());
                }
            });
        }
        Some("\\policy") => match parts.next() {
            Some("cost") => state
                .server
                .reconfigure(|db| db.options_mut().policy = PushdownPolicy::CostBased),
            Some("eager") => state
                .server
                .reconfigure(|db| db.options_mut().policy = PushdownPolicy::Always),
            Some("lazy") => state
                .server
                .reconfigure(|db| db.options_mut().policy = PushdownPolicy::Never),
            other => eprintln!("unknown policy {other:?} (cost|eager|lazy)"),
        },
        Some("\\threads") => match parts.next().and_then(|n| n.parse().ok()) {
            Some(n) => {
                state.server.reconfigure(|db| db.set_threads(n));
                println!("executor threads = {n}");
            }
            None => eprintln!("usage: \\threads <positive integer>"),
        },
        other => eprintln!("unknown meta command {other:?} (try \\help)"),
    }
    true
}

fn main() {
    let mut state = Repl::new();
    println!("gbj — group-by before join (Yan & Larson, ICDE 1994). \\help for help.");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => {
                    state.server.reconfigure(|db| db.set_threads(n));
                    println!("executor threads = {n}");
                }
                None => eprintln!("usage: --threads <positive integer>"),
            }
            continue;
        }
        match std::fs::read_to_string(&arg) {
            Ok(sql) => {
                println!("-- running {arg}");
                run_buffer(&mut state, &sql);
            }
            Err(e) => eprintln!("cannot read {arg}: {e}"),
        }
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        let prompt = if buffer.trim().is_empty() {
            "gbj> "
        } else {
            "...> "
        };
        print!("{prompt}");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            if !handle_meta(&mut state, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            run_buffer(&mut state, &sql);
        }
    }
}
