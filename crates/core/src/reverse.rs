//! Section 8: performing join *before* group-by.
//!
//! When a query joins an **aggregated view** with other tables, the
//! straightforward evaluation materialises the view (group-by first)
//! and then joins — the `E2` shape. The reverse transformation unfolds
//! the view into a single-block query that joins first and groups last
//! (`E1`), giving the optimizer the other plan choice. The paper's
//! Example 5 unfolds the `UserInfo` view back into the three-table
//! grouped join of Example 3.
//!
//! Validity is governed by the *same* Main-Theorem conditions: the
//! merged block, partitioned with `R1` = the view's relations, must
//! pass `TestFD`, and the partition's `GA1+` must coincide with the
//! view's grouping columns (so that the eager form of the merged block
//! *is* the original query).

use std::collections::BTreeSet;

use gbj_fd::FdContext;
use gbj_plan::{BlockRelation, QueryBlock, SelectItem};
use gbj_types::{ColumnRef, Error, Result};

use crate::partition::Partition;
use crate::testfd::{test_fd, TestFdTrace};
use crate::theorem3::constraint_conjuncts;

/// The outcome of attempting the reverse transformation.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // outcomes are built once per query, never stored in bulk
pub enum ReverseOutcome {
    /// The view was unfolded; `block` is the single-block `E1` form.
    Unfolded {
        /// The merged query block (join before group-by).
        block: QueryBlock,
        /// The TestFD trace proving the equivalence.
        testfd: TestFdTrace,
    },
    /// The unfolding does not apply or could not be proved valid.
    NotApplicable {
        /// Human-readable reason.
        reason: String,
    },
}

impl ReverseOutcome {
    /// The unfolded block, if any.
    #[must_use]
    pub fn block(&self) -> Option<&QueryBlock> {
        match self {
            ReverseOutcome::Unfolded { block, .. } => Some(block),
            ReverseOutcome::NotApplicable { .. } => None,
        }
    }
}

fn not_applicable(reason: impl Into<String>) -> ReverseOutcome {
    ReverseOutcome::NotApplicable {
        reason: reason.into(),
    }
}

/// Attempt to unfold the (single) aggregated derived relation of
/// `outer` into a join-then-group block.
///
/// Requirements checked here:
/// * `outer` itself does not aggregate and has exactly one derived
///   relation, which aggregates and is itself flat (base relations,
///   no HAVING, no DISTINCT);
/// * outer predicates reference only the view's *grouping* outputs
///   (an aggregate-output predicate would become a HAVING clause);
/// * qualifiers do not collide after merging;
/// * the merged block passes TestFD with `R1` = the view's relations
///   and its `GA1+` equals the view's grouping set.
///
/// `fd_ctx` must register the view's inner relations *and* the outer
/// base relations under their qualifiers.
pub fn reverse_transform(outer: &QueryBlock, fd_ctx: &FdContext) -> Result<ReverseOutcome> {
    outer.validate()?;
    if outer.is_aggregating() {
        return Ok(not_applicable("outer query aggregates itself"));
    }
    if outer.having.is_some() {
        return Ok(not_applicable("outer query has HAVING"));
    }
    let derived: Vec<(usize, &QueryBlock, &str)> = outer
        .relations
        .iter()
        .enumerate()
        .filter_map(|(i, r)| match r {
            BlockRelation::Derived { block, qualifier } => {
                Some((i, block.as_ref(), qualifier.as_str()))
            }
            BlockRelation::Base { .. } => None,
        })
        .collect();
    let [(view_idx, view, view_alias)] = derived.as_slice() else {
        return Ok(not_applicable(format!(
            "expected exactly one derived relation, found {}",
            derived.len()
        )));
    };
    let (view_idx, view, view_alias) = (*view_idx, *view, *view_alias);
    if !view.is_aggregating() {
        return Ok(not_applicable("the derived relation does not aggregate"));
    }
    if view.having.is_some() || view.distinct {
        return Ok(not_applicable(
            "the aggregated view uses HAVING or DISTINCT",
        ));
    }
    if view.relations.iter().any(BlockRelation::is_derived) {
        return Ok(not_applicable("the aggregated view nests further views"));
    }

    // Qualifier disjointness after the merge.
    let outer_quals: BTreeSet<String> = outer
        .relations
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != view_idx)
        .map(|(_, r)| r.qualifier().to_ascii_lowercase())
        .collect();
    for r in &view.relations {
        if outer_quals.contains(&r.qualifier().to_ascii_lowercase()) {
            return Ok(not_applicable(format!(
                "qualifier {} appears both inside and outside the view",
                r.qualifier()
            )));
        }
    }

    // Map view outputs: alias → underlying column or aggregate index.
    enum ViewOutput {
        Column(ColumnRef),
        Aggregate(usize),
    }
    let lookup = |name: &str| -> Option<ViewOutput> {
        view.select.iter().find_map(|item| match item {
            SelectItem::Column { col, alias } if alias.eq_ignore_ascii_case(name) => {
                Some(ViewOutput::Column(col.clone()))
            }
            SelectItem::Aggregate { index } => {
                view.aggregates.get(*index).and_then(|(_, alias)| {
                    alias
                        .eq_ignore_ascii_case(name)
                        .then_some(ViewOutput::Aggregate(*index))
                })
            }
            SelectItem::Column { .. } => None,
        })
    };
    let is_view_col = |c: &ColumnRef| {
        c.table
            .as_deref()
            .is_some_and(|t| t.eq_ignore_ascii_case(view_alias))
    };

    // Outer predicates: rewrite view-column references to the
    // underlying columns; refuse aggregate-output references.
    let mut merged_predicate = view.predicate.clone();
    for conjunct in &outer.predicate {
        let mut aggregate_hit = false;
        let mapped = conjunct.map_columns(&|c| {
            if is_view_col(c) {
                match lookup(&c.column) {
                    Some(ViewOutput::Column(base)) => return base,
                    _ => {
                        // flag and leave unchanged; handled below
                    }
                }
            }
            c.clone()
        });
        // Detect aggregate-output references after mapping: any column
        // still qualified by the view alias is either unknown or an
        // aggregate output.
        for c in mapped.columns() {
            if is_view_col(&c) {
                aggregate_hit = true;
            }
        }
        if aggregate_hit {
            return Ok(not_applicable(format!(
                "outer predicate {conjunct} references an aggregate output of the view"
            )));
        }
        merged_predicate.push(mapped);
    }

    // Merged grouping: the view's grouping columns (so that the eager
    // form of the merged query reproduces the view exactly) plus the
    // outer query's plain select columns (SQL2 requires selected
    // columns to be grouped; Theorem 2 permits selecting a subset).
    let mut merged_group_by: Vec<ColumnRef> = view.group_by.clone();
    let mut merged_select: Vec<SelectItem> = Vec::new();
    for item in &outer.select {
        match item {
            SelectItem::Column { col, alias } if is_view_col(col) => match lookup(&col.column) {
                Some(ViewOutput::Column(base)) => {
                    if !merged_group_by.contains(&base) {
                        merged_group_by.push(base.clone());
                    }
                    merged_select.push(SelectItem::Column {
                        col: base,
                        alias: alias.clone(),
                    });
                }
                Some(ViewOutput::Aggregate(index)) => {
                    merged_select.push(SelectItem::Aggregate { index });
                }
                None => return Err(Error::Bind(format!("unknown view output {col}"))),
            },
            SelectItem::Column { col, alias } => {
                if !merged_group_by.contains(col) {
                    merged_group_by.push(col.clone());
                }
                merged_select.push(SelectItem::Column {
                    col: col.clone(),
                    alias: alias.clone(),
                });
            }
            SelectItem::Aggregate { .. } => {
                return Err(Error::Internal(
                    "non-aggregating outer block holds an aggregate item".into(),
                ))
            }
        }
    }
    if merged_group_by.is_empty() {
        return Ok(not_applicable(
            "outer query selects no plain columns to group on",
        ));
    }

    // Assemble the merged block.
    let mut relations: Vec<BlockRelation> = view.relations.clone();
    for (i, r) in outer.relations.iter().enumerate() {
        if i != view_idx {
            relations.push(r.clone());
        }
    }
    let merged = QueryBlock {
        relations,
        predicate: merged_predicate,
        group_by: merged_group_by,
        aggregates: view.aggregates.clone(),
        select: merged_select,
        distinct: outer.distinct,
        having: None,
    };
    merged.validate()?;

    // Validity: partition with R1 = the view's relations must pass
    // TestFD, and GA1+ must equal the view's grouping set (so the eager
    // form of the merged block is the original query).
    let r1: BTreeSet<String> = view
        .relations
        .iter()
        .map(|r| r.qualifier().to_string())
        .collect();
    let partition = match Partition::with_r1(&merged, r1) {
        Ok(p) => p,
        Err(e) => return Ok(not_applicable(format!("cannot partition: {e}"))),
    };
    let view_ga: BTreeSet<ColumnRef> = view.group_by.iter().cloned().collect();
    if partition.ga1_plus != view_ga {
        return Ok(not_applicable(format!(
            "GA1+ of the merged query ({:?}) differs from the view's grouping ({:?})",
            partition.ga1_plus, view_ga
        )));
    }
    let constraints = constraint_conjuncts(fd_ctx);
    let outcome = test_fd(&partition, fd_ctx, &constraints);
    if !outcome.valid {
        return Ok(not_applicable("TestFD could not prove the unfolding valid"));
    }
    Ok(ReverseOutcome::Unfolded {
        block: merged,
        testfd: outcome.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_catalog::{ColumnDef, Constraint, TableDef};
    use gbj_expr::{AggregateCall, AggregateFunction, Expr};
    use gbj_types::{DataType, Field, Schema};

    fn base(table: &str, qualifier: &str, cols: &[(&str, DataType)]) -> BlockRelation {
        BlockRelation::Base {
            table: table.into(),
            qualifier: qualifier.into(),
            schema: Schema::new(
                cols.iter()
                    .map(|(n, t)| Field::new(*n, *t, true).with_qualifier(qualifier))
                    .collect(),
            ),
        }
    }

    /// The `UserInfo` view of Example 5.
    fn user_info_view() -> QueryBlock {
        let mut v = QueryBlock::new(vec![
            base(
                "PrinterAuth",
                "A",
                &[
                    ("UserId", DataType::Int64),
                    ("Machine", DataType::Utf8),
                    ("PNo", DataType::Int64),
                    ("Usage", DataType::Int64),
                ],
            ),
            base(
                "Printer",
                "P",
                &[("PNo", DataType::Int64), ("Speed", DataType::Int64)],
            ),
        ]);
        v.predicate = vec![Expr::col("A", "PNo").eq(Expr::col("P", "PNo"))];
        v.group_by = vec![
            ColumnRef::qualified("A", "UserId"),
            ColumnRef::qualified("A", "Machine"),
        ];
        v.aggregates = vec![
            (
                AggregateCall::new(AggregateFunction::Sum, Expr::col("A", "Usage")),
                "TotUsage".into(),
            ),
            (
                AggregateCall::new(AggregateFunction::Max, Expr::col("P", "Speed")),
                "MaxSpeed".into(),
            ),
            (
                AggregateCall::new(AggregateFunction::Min, Expr::col("P", "Speed")),
                "MinSpeed".into(),
            ),
        ];
        v.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("A", "UserId"),
                alias: "UserId".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("A", "Machine"),
                alias: "Machine".into(),
            },
            SelectItem::Aggregate { index: 0 },
            SelectItem::Aggregate { index: 1 },
            SelectItem::Aggregate { index: 2 },
        ];
        v
    }

    /// Example 5's outer query: join UserInfo I with UserAccount U.
    fn example5_outer() -> QueryBlock {
        let mut b = QueryBlock::new(vec![
            BlockRelation::Derived {
                block: Box::new(user_info_view()),
                qualifier: "I".into(),
            },
            base(
                "UserAccount",
                "U",
                &[
                    ("UserId", DataType::Int64),
                    ("Machine", DataType::Utf8),
                    ("UserName", DataType::Utf8),
                ],
            ),
        ]);
        b.predicate = vec![
            Expr::col("I", "UserId").eq(Expr::col("U", "UserId")),
            Expr::col("I", "Machine").eq(Expr::col("U", "Machine")),
            Expr::col("U", "Machine").eq(Expr::lit("dragon")),
        ];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("I", "UserId"),
                alias: "UserId".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("U", "UserName"),
                alias: "UserName".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("I", "TotUsage"),
                alias: "TotUsage".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("I", "MaxSpeed"),
                alias: "MaxSpeed".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("I", "MinSpeed"),
                alias: "MinSpeed".into(),
            },
        ];
        b
    }

    fn example5_ctx() -> FdContext {
        let mut ctx = FdContext::new();
        ctx.add_table(
            "U",
            TableDef::new(
                "UserAccount",
                vec![
                    ColumnDef::new("UserId", DataType::Int64),
                    ColumnDef::new("Machine", DataType::Utf8),
                    ColumnDef::new("UserName", DataType::Utf8),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec![
                "UserId".into(),
                "Machine".into(),
            ]))
            .validate()
            .unwrap(),
        );
        ctx.add_table(
            "A",
            TableDef::new(
                "PrinterAuth",
                vec![
                    ColumnDef::new("UserId", DataType::Int64),
                    ColumnDef::new("Machine", DataType::Utf8),
                    ColumnDef::new("PNo", DataType::Int64),
                    ColumnDef::new("Usage", DataType::Int64),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec![
                "UserId".into(),
                "Machine".into(),
                "PNo".into(),
            ]))
            .validate()
            .unwrap(),
        );
        ctx.add_table(
            "P",
            TableDef::new(
                "Printer",
                vec![
                    ColumnDef::new("PNo", DataType::Int64),
                    ColumnDef::new("Speed", DataType::Int64),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["PNo".into()]))
            .validate()
            .unwrap(),
        );
        ctx
    }

    #[test]
    fn example5_unfolds_to_the_three_table_query() {
        let outer = example5_outer();
        let out = reverse_transform(&outer, &example5_ctx()).unwrap();
        let ReverseOutcome::Unfolded { block, .. } = out else {
            panic!("expected unfolding, got {out:?}");
        };
        // Merged FROM: A, P, U (view relations first).
        let quals: Vec<&str> = block.relations.iter().map(|r| r.qualifier()).collect();
        assert_eq!(quals, vec!["A", "P", "U"]);
        // Grouping: the outer's plain select columns, mapped to base
        // columns (A.UserId via the view, U.UserName directly).
        assert!(block
            .group_by
            .contains(&ColumnRef::qualified("A", "UserId")));
        assert!(block
            .group_by
            .contains(&ColumnRef::qualified("U", "UserName")));
        // All three view aggregates survive.
        assert_eq!(block.aggregates.len(), 3);
        // Join predicates are merged and re-rooted.
        let pred = block.predicate_expr().unwrap().to_string();
        assert!(pred.contains("(A.PNo = P.PNo)"));
        assert!(pred.contains("(A.UserId = U.UserId)"));
        assert!(pred.contains("(U.Machine = 'dragon')"));
        // The merged block is executable.
        block.to_plan().unwrap().validate().unwrap();
    }

    #[test]
    fn predicate_on_aggregate_output_blocks_unfolding() {
        let mut outer = example5_outer();
        outer
            .predicate
            .push(Expr::col("I", "TotUsage").binary(gbj_expr::BinaryOp::Gt, Expr::lit(10i64)));
        let out = reverse_transform(&outer, &example5_ctx()).unwrap();
        match out {
            ReverseOutcome::NotApplicable { reason } => {
                assert!(reason.contains("aggregate output"), "{reason}");
            }
            ReverseOutcome::Unfolded { .. } => panic!("must not unfold"),
        }
    }

    #[test]
    fn aggregating_outer_is_refused() {
        let mut outer = example5_outer();
        outer.group_by = vec![ColumnRef::qualified("U", "UserName")];
        outer.aggregates = vec![(AggregateCall::count_star(), "n".into())];
        outer.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("U", "UserName"),
                alias: "UserName".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];
        let out = reverse_transform(&outer, &example5_ctx()).unwrap();
        assert!(matches!(out, ReverseOutcome::NotApplicable { .. }));
    }

    #[test]
    fn partial_join_still_unfolds_when_key_is_derivable() {
        // Drop the Machine *join* but keep the constant: the view's
        // grouping columns are forced into the merged GROUP BY, and
        // U's key (UserId, Machine) is still derivable from the
        // UserId join plus the Machine constant.
        let mut outer = example5_outer();
        outer.predicate = vec![
            Expr::col("I", "UserId").eq(Expr::col("U", "UserId")),
            Expr::col("U", "Machine").eq(Expr::lit("dragon")),
        ];
        let out = reverse_transform(&outer, &example5_ctx()).unwrap();
        let ReverseOutcome::Unfolded { block, .. } = out else {
            panic!("expected unfolding, got {out:?}");
        };
        // The merged grouping includes both view grouping columns.
        assert!(block
            .group_by
            .contains(&ColumnRef::qualified("A", "UserId")));
        assert!(block
            .group_by
            .contains(&ColumnRef::qualified("A", "Machine")));
    }

    #[test]
    fn underdetermined_r2_key_is_refused() {
        // No Machine join *and* no Machine constant: the key of U is
        // not derivable, so FD2 cannot be proved and the unfolding is
        // refused (two U rows could join one view row).
        let mut outer = example5_outer();
        outer.predicate = vec![Expr::col("I", "UserId").eq(Expr::col("U", "UserId"))];
        let out = reverse_transform(&outer, &example5_ctx()).unwrap();
        match out {
            ReverseOutcome::NotApplicable { reason } => {
                assert!(reason.contains("TestFD"), "{reason}");
            }
            ReverseOutcome::Unfolded { .. } => panic!("must not unfold"),
        }
    }

    #[test]
    fn view_without_keys_fails_testfd() {
        let outer = example5_outer();
        // Context with keyless UserAccount: FD2 cannot be derived.
        let mut ctx = FdContext::new();
        ctx.add_table(
            "U",
            TableDef::new(
                "UserAccount",
                vec![
                    ColumnDef::new("UserId", DataType::Int64),
                    ColumnDef::new("Machine", DataType::Utf8),
                    ColumnDef::new("UserName", DataType::Utf8),
                ],
            )
            .validate()
            .unwrap(),
        );
        let base_ctx = example5_ctx();
        ctx.add_table("A", base_ctx.table("A").unwrap().clone());
        ctx.add_table("P", base_ctx.table("P").unwrap().clone());
        let out = reverse_transform(&outer, &ctx).unwrap();
        assert!(matches!(out, ReverseOutcome::NotApplicable { .. }));
    }

    #[test]
    fn no_derived_relation_is_refused() {
        let mut outer = example5_outer();
        outer.relations.remove(0);
        outer.predicate = vec![Expr::col("U", "Machine").eq(Expr::lit("dragon"))];
        outer.select = vec![SelectItem::Column {
            col: ColumnRef::qualified("U", "UserName"),
            alias: "UserName".into(),
        }];
        let out = reverse_transform(&outer, &example5_ctx()).unwrap();
        match out {
            ReverseOutcome::NotApplicable { reason } => {
                assert!(reason.contains("derived"), "{reason}");
            }
            ReverseOutcome::Unfolded { .. } => panic!(),
        }
    }
}
