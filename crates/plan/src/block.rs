//! The SPJG query block — the canonical form of the paper's query class.
//!
//! Section 3 of the paper fixes the query shape
//!
//! ```sql
//! SELECT [ALL|DISTINCT] SGA1, SGA2, F(AA)
//! FROM   R1, R2, …
//! WHERE  C1 AND C0 AND C2
//! GROUP BY GA1, GA2
//! ```
//!
//! A [`QueryBlock`] captures exactly this: relations (base tables or
//! nested derived blocks — the latter is how Section 8's aggregated
//! views appear), the WHERE conjuncts, grouping columns, aggregate
//! calls, the select list and the ALL/DISTINCT flag. The optimizer
//! reasons over blocks; [`QueryBlock::to_plan`] lowers a block to the
//! executable [`LogicalPlan`].

use std::collections::BTreeSet;
use std::fmt;

use gbj_expr::{AggregateCall, Expr};
use gbj_types::{ColumnRef, Error, Result, Schema};

use crate::plan::LogicalPlan;

/// A FROM-clause relation inside a block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockRelation {
    /// A base table.
    Base {
        /// Catalog table name.
        table: String,
        /// Qualifier (alias or table name).
        qualifier: String,
        /// The table's schema, qualified by `qualifier`.
        schema: Schema,
    },
    /// A derived table: a nested query block under an alias. Aggregated
    /// views (Section 8) take this form after view expansion.
    Derived {
        /// The nested block.
        block: Box<QueryBlock>,
        /// Qualifier for the derived table's columns.
        qualifier: String,
    },
}

impl BlockRelation {
    /// The qualifier this relation is known by.
    #[must_use]
    pub fn qualifier(&self) -> &str {
        match self {
            BlockRelation::Base { qualifier, .. } | BlockRelation::Derived { qualifier, .. } => {
                qualifier
            }
        }
    }

    /// The relation's output schema, qualified.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            BlockRelation::Base { schema, .. } => Ok(schema.clone()),
            BlockRelation::Derived { block, qualifier } => {
                Ok(block.output_schema()?.with_qualifier(qualifier))
            }
        }
    }

    /// Whether the relation is a derived (nested) block.
    #[must_use]
    pub fn is_derived(&self) -> bool {
        matches!(self, BlockRelation::Derived { .. })
    }
}

/// One item of a block's select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A (grouping) column, output under `alias`.
    Column {
        /// The column.
        col: ColumnRef,
        /// Output name.
        alias: String,
    },
    /// The `index`-th aggregate of the block, output under its alias.
    Aggregate {
        /// Index into [`QueryBlock::aggregates`].
        index: usize,
    },
}

/// The SPJG block.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBlock {
    /// FROM-clause relations.
    pub relations: Vec<BlockRelation>,
    /// WHERE conjuncts (empty = no WHERE clause).
    pub predicate: Vec<Expr>,
    /// GROUP BY columns (the paper's `GA1 ∪ GA2`).
    pub group_by: Vec<ColumnRef>,
    /// Aggregate calls with their output aliases (the paper's `F(AA)`).
    pub aggregates: Vec<(AggregateCall, String)>,
    /// The select list (must reference grouping columns / aggregates
    /// when the block aggregates).
    pub select: Vec<SelectItem>,
    /// DISTINCT projection (the paper's `D`-projection).
    pub distinct: bool,
    /// HAVING predicate; the paper's transformation does not apply when
    /// present (Section 3), but the block still executes.
    pub having: Option<Expr>,
}

impl QueryBlock {
    /// A block over the given relations with everything else empty.
    #[must_use]
    pub fn new(relations: Vec<BlockRelation>) -> QueryBlock {
        QueryBlock {
            relations,
            predicate: vec![],
            group_by: vec![],
            aggregates: vec![],
            select: vec![],
            distinct: false,
            having: None,
        }
    }

    /// Whether the block groups/aggregates at all.
    #[must_use]
    pub fn is_aggregating(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }

    /// The qualifiers of all relations.
    #[must_use]
    pub fn qualifiers(&self) -> BTreeSet<String> {
        self.relations
            .iter()
            .map(|r| r.qualifier().to_string())
            .collect()
    }

    /// The concatenated input schema (all relations joined).
    pub fn input_schema(&self) -> Result<Schema> {
        let mut schema = Schema::empty();
        for r in &self.relations {
            schema = schema.join(&r.schema()?);
        }
        Ok(schema)
    }

    /// The WHERE clause as one conjunction (`None` when empty).
    #[must_use]
    pub fn predicate_expr(&self) -> Option<Expr> {
        Expr::conjunction(self.predicate.iter().cloned())
    }

    /// The columns used by aggregate arguments — the paper's
    /// *aggregation columns* `AA`.
    #[must_use]
    pub fn aggregation_columns(&self) -> BTreeSet<ColumnRef> {
        let mut out = BTreeSet::new();
        for (call, _) in &self.aggregates {
            out.extend(call.columns());
        }
        out
    }

    /// Structural validation: resolvable columns, select ⊆ group-by
    /// (SQL2's rule for grouped queries), aggregate indices in range,
    /// distinct qualifiers.
    pub fn validate(&self) -> Result<()> {
        if self.relations.is_empty() {
            return Err(Error::Plan("query block has no relations".into()));
        }
        let mut seen = BTreeSet::new();
        for r in &self.relations {
            if !seen.insert(r.qualifier().to_ascii_lowercase()) {
                return Err(Error::Bind(format!(
                    "duplicate table qualifier {}",
                    r.qualifier()
                )));
            }
        }
        let schema = self.input_schema()?;
        for p in &self.predicate {
            for c in p.columns() {
                schema.resolve(&c)?;
            }
        }
        for g in &self.group_by {
            schema.resolve(g)?;
        }
        for (call, _) in &self.aggregates {
            for c in call.columns() {
                schema.resolve(&c)?;
            }
        }
        let grouped = self.is_aggregating();
        for item in &self.select {
            match item {
                SelectItem::Column { col, .. } => {
                    schema.resolve(col)?;
                    if grouped && !self.group_by.iter().any(|g| g == col) {
                        return Err(Error::Bind(format!(
                            "selection column {col} must appear in GROUP BY"
                        )));
                    }
                }
                SelectItem::Aggregate { index } => {
                    if *index >= self.aggregates.len() {
                        return Err(Error::Internal(format!(
                            "aggregate select index {index} out of range"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Lower the block to a [`LogicalPlan`].
    ///
    /// Shape: scans → cross joins → filter → aggregate → having →
    /// project (with DISTINCT). This is the paper's `E1` evaluation
    /// order — group-by *after* the joins. The transformation in
    /// `gbj-core` produces an alternative block tree whose lowering is
    /// the `E2` order.
    pub fn to_plan(&self) -> Result<LogicalPlan> {
        let mut plan: Option<LogicalPlan> = None;
        for r in &self.relations {
            let node = match r {
                BlockRelation::Base {
                    table,
                    qualifier,
                    schema,
                } => LogicalPlan::Scan {
                    table: table.clone(),
                    qualifier: qualifier.clone(),
                    schema: schema.clone(),
                },
                BlockRelation::Derived { block, qualifier } => LogicalPlan::SubqueryAlias {
                    input: Box::new(block.to_plan()?),
                    alias: qualifier.clone(),
                },
            };
            plan = Some(match plan {
                None => node,
                Some(acc) => LogicalPlan::CrossJoin {
                    left: Box::new(acc),
                    right: Box::new(node),
                },
            });
        }
        let mut plan = plan.ok_or_else(|| Error::Plan("query block has no relations".into()))?;

        if let Some(pred) = self.predicate_expr() {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: pred,
            };
        }

        if self.is_aggregating() {
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: self.group_by.iter().cloned().map(Expr::Column).collect(),
                aggregates: self.aggregates.clone(),
            };
            if let Some(h) = &self.having {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: h.clone(),
                };
            }
        }

        let exprs: Vec<(Expr, String)> = self
            .select
            .iter()
            .map(|item| match item {
                SelectItem::Column { col, alias } => Ok((Expr::Column(col.clone()), alias.clone())),
                SelectItem::Aggregate { index } => {
                    let (_, alias) = self.aggregates.get(*index).ok_or_else(|| {
                        Error::Plan(format!("select item references unknown aggregate #{index}"))
                    })?;
                    Ok((Expr::Column(ColumnRef::bare(alias.clone())), alias.clone()))
                }
            })
            .collect::<Result<_>>()?;
        if exprs.is_empty() {
            return Err(Error::Plan("query block has an empty select list".into()));
        }
        Ok(LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            distinct: self.distinct,
        })
    }

    /// The block's output schema (select-list shape).
    pub fn output_schema(&self) -> Result<Schema> {
        self.to_plan()?.schema()
    }
}

impl fmt::Display for QueryBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let items: Vec<String> = self
            .select
            .iter()
            .map(|i| match i {
                SelectItem::Column { col, alias } => {
                    if col.column.eq_ignore_ascii_case(alias) {
                        col.to_string()
                    } else {
                        format!("{col} AS {alias}")
                    }
                }
                SelectItem::Aggregate { index } => match self.aggregates.get(*index) {
                    Some((call, alias)) => format!("{call} AS {alias}"),
                    None => format!("<aggregate #{index}?>"),
                },
            })
            .collect();
        write!(f, "{}", items.join(", "))?;
        let froms: Vec<String> = self
            .relations
            .iter()
            .map(|r| match r {
                BlockRelation::Base {
                    table, qualifier, ..
                } => {
                    if table.eq_ignore_ascii_case(qualifier) {
                        table.clone()
                    } else {
                        format!("{table} {qualifier}")
                    }
                }
                BlockRelation::Derived { qualifier, .. } => format!("(<derived>) {qualifier}"),
            })
            .collect();
        write!(f, " FROM {}", froms.join(", "))?;
        if let Some(p) = self.predicate_expr() {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            let gs: Vec<String> = self.group_by.iter().map(ToString::to_string).collect();
            write!(f, " GROUP BY {}", gs.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_expr::AggregateFunction;
    use gbj_types::{DataType, Field};

    fn emp_rel() -> BlockRelation {
        BlockRelation::Base {
            table: "Employee".into(),
            qualifier: "E".into(),
            schema: Schema::new(vec![
                Field::new("EmpID", DataType::Int64, false).with_qualifier("E"),
                Field::new("DeptID", DataType::Int64, true).with_qualifier("E"),
            ]),
        }
    }

    fn dept_rel() -> BlockRelation {
        BlockRelation::Base {
            table: "Department".into(),
            qualifier: "D".into(),
            schema: Schema::new(vec![
                Field::new("DeptID", DataType::Int64, false).with_qualifier("D"),
                Field::new("Name", DataType::Utf8, true).with_qualifier("D"),
            ]),
        }
    }

    /// The paper's Example 1 as a block.
    fn example1_block() -> QueryBlock {
        let mut b = QueryBlock::new(vec![emp_rel(), dept_rel()]);
        b.predicate = vec![Expr::col("E", "DeptID").eq(Expr::col("D", "DeptID"))];
        b.group_by = vec![
            ColumnRef::qualified("D", "DeptID"),
            ColumnRef::qualified("D", "Name"),
        ];
        b.aggregates = vec![(
            AggregateCall::new(AggregateFunction::Count, Expr::col("E", "EmpID")),
            "cnt".into(),
        )];
        b.select = vec![
            SelectItem::Column {
                col: ColumnRef::qualified("D", "DeptID"),
                alias: "DeptID".into(),
            },
            SelectItem::Column {
                col: ColumnRef::qualified("D", "Name"),
                alias: "Name".into(),
            },
            SelectItem::Aggregate { index: 0 },
        ];
        b
    }

    #[test]
    fn example1_block_validates_and_lowers() {
        let b = example1_block();
        b.validate().unwrap();
        let plan = b.to_plan().unwrap();
        plan.validate().unwrap();
        let tree = plan.display_tree();
        // Lowered shape: Project over Aggregate over Filter over CrossJoin.
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("Project"));
        assert!(lines[1].trim_start().starts_with("Aggregate"));
        assert!(lines[2].trim_start().starts_with("Filter"));
        assert!(lines[3].trim_start().starts_with("CrossJoin"));
        // Output schema.
        let s = b.output_schema().unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(2).name, "cnt");
    }

    #[test]
    fn select_not_in_group_by_rejected() {
        let mut b = example1_block();
        b.select.push(SelectItem::Column {
            col: ColumnRef::qualified("E", "DeptID"),
            alias: "edept".into(),
        });
        let err = b.validate().unwrap_err();
        assert!(err.message().contains("GROUP BY"));
    }

    #[test]
    fn duplicate_qualifiers_rejected() {
        let b = QueryBlock::new(vec![emp_rel(), emp_rel()]);
        assert!(b.validate().is_err());
    }

    #[test]
    fn empty_relations_rejected() {
        let b = QueryBlock::new(vec![]);
        assert!(b.validate().is_err());
        assert!(b.to_plan().is_err());
    }

    #[test]
    fn aggregation_columns_and_qualifiers() {
        let b = example1_block();
        let aa = b.aggregation_columns();
        assert_eq!(aa.len(), 1);
        assert!(aa.contains(&ColumnRef::qualified("E", "EmpID")));
        let qs = b.qualifiers();
        assert!(qs.contains("E") && qs.contains("D"));
        assert!(b.is_aggregating());
    }

    #[test]
    fn plain_spj_block_lowers_without_aggregate() {
        let mut b = QueryBlock::new(vec![emp_rel()]);
        b.select = vec![SelectItem::Column {
            col: ColumnRef::qualified("E", "EmpID"),
            alias: "EmpID".into(),
        }];
        b.validate().unwrap();
        let plan = b.to_plan().unwrap();
        assert!(!plan.display_tree().contains("Aggregate"));
        assert!(!b.is_aggregating());
    }

    #[test]
    fn derived_relation_schema_requalifies() {
        let inner = {
            let mut b = QueryBlock::new(vec![emp_rel()]);
            b.group_by = vec![ColumnRef::qualified("E", "DeptID")];
            b.aggregates = vec![(AggregateCall::count_star(), "n".into())];
            b.select = vec![
                SelectItem::Column {
                    col: ColumnRef::qualified("E", "DeptID"),
                    alias: "DeptID".into(),
                },
                SelectItem::Aggregate { index: 0 },
            ];
            b
        };
        let rel = BlockRelation::Derived {
            block: Box::new(inner),
            qualifier: "V".into(),
        };
        assert!(rel.is_derived());
        let s = rel.schema().unwrap();
        assert!(s.contains(&ColumnRef::qualified("V", "DeptID")));
        assert!(s.contains(&ColumnRef::qualified("V", "n")));

        // And a block over the derived relation lowers with an alias node.
        let mut outer = QueryBlock::new(vec![rel]);
        outer.select = vec![SelectItem::Column {
            col: ColumnRef::qualified("V", "n"),
            alias: "n".into(),
        }];
        outer.validate().unwrap();
        let tree = outer.to_plan().unwrap().display_tree();
        assert!(tree.contains("SubqueryAlias V"));
    }

    #[test]
    fn having_lowers_to_filter_above_aggregate() {
        let mut b = example1_block();
        b.having = Some(Expr::bare("cnt").binary(gbj_expr::BinaryOp::Gt, Expr::lit(5i64)));
        let tree = b.to_plan().unwrap().display_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("Project"));
        assert!(lines[1].trim_start().starts_with("Filter"));
        assert!(lines[2].trim_start().starts_with("Aggregate"));
    }

    #[test]
    fn display_renders_sqlish_text() {
        let b = example1_block();
        let text = b.to_string();
        assert!(text.contains("SELECT"));
        assert!(text.contains("FROM Employee E, Department D"));
        assert!(text.contains("GROUP BY D.DeptID, D.Name"));
        assert!(text.contains("COUNT(E.EmpID) AS cnt"));
    }

    #[test]
    fn empty_select_list_rejected_at_lowering() {
        let mut b = example1_block();
        b.select.clear();
        assert!(b.to_plan().is_err());
    }
}
