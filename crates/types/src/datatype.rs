//! SQL data types supported by the engine.

use std::fmt;

/// The data type of a column or expression.
///
/// The paper's queries need integers, character strings, and the numeric
/// results of aggregates; we also carry booleans (for completeness of the
/// expression language) and double-precision floats (`AVG`, arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean truth value (two-valued at rest; `NULL` represents unknown).
    Boolean,
    /// 64-bit signed integer (`INTEGER`, `SMALLINT`, `BIGINT`).
    Int64,
    /// 64-bit IEEE-754 float (`DOUBLE PRECISION`, `FLOAT`, `REAL`).
    Float64,
    /// Variable-length character string (`CHARACTER(n)`, `VARCHAR`).
    Utf8,
}

impl DataType {
    /// Whether the type is numeric (valid operand for `+ - * /`,
    /// `SUM`, `AVG`).
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// The common type two numeric operands are coerced to, if any.
    ///
    /// Integer op Float yields Float, mirroring SQL numeric precedence.
    #[must_use]
    pub fn numeric_common(self, other: DataType) -> Option<DataType> {
        use DataType::{Float64, Int64};
        match (self, other) {
            (Int64, Int64) => Some(Int64),
            (Int64, Float64) | (Float64, Int64) | (Float64, Float64) => Some(Float64),
            _ => None,
        }
    }

    /// Whether values of the two types can be compared with `< = >`.
    #[must_use]
    pub fn comparable_with(self, other: DataType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Boolean => "BOOLEAN",
            DataType::Int64 => "INTEGER",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "VARCHAR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert!(!DataType::Boolean.is_numeric());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(
            DataType::Int64.numeric_common(DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::Int64.numeric_common(DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::Float64.numeric_common(DataType::Int64),
            Some(DataType::Float64)
        );
        assert_eq!(DataType::Utf8.numeric_common(DataType::Int64), None);
    }

    #[test]
    fn comparability() {
        assert!(DataType::Int64.comparable_with(DataType::Float64));
        assert!(DataType::Utf8.comparable_with(DataType::Utf8));
        assert!(!DataType::Utf8.comparable_with(DataType::Int64));
        assert!(!DataType::Boolean.comparable_with(DataType::Int64));
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int64.to_string(), "INTEGER");
        assert_eq!(DataType::Utf8.to_string(), "VARCHAR");
        assert_eq!(DataType::Boolean.to_string(), "BOOLEAN");
        assert_eq!(DataType::Float64.to_string(), "DOUBLE");
    }
}
