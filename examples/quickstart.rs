//! Quickstart: create tables, load rows, and watch the engine push a
//! group-by below a join.
//!
//! Run with: `cargo run --example quickstart`

use gbj::engine::QueryOutput;
use gbj::Database;

fn main() -> gbj::Result<()> {
    let mut db = Database::new();

    // The paper's Example 1 schema: employees referencing departments.
    db.run_script(
        "CREATE TABLE Department (
             DeptID INTEGER PRIMARY KEY,
             Name   VARCHAR(30) NOT NULL);
         CREATE TABLE Employee (
             EmpID     INTEGER PRIMARY KEY,
             LastName  VARCHAR(30) NOT NULL,
             FirstName VARCHAR(30),
             DeptID    INTEGER REFERENCES Department);",
    )?;

    db.run_script(
        "INSERT INTO Department VALUES
             (1, 'Research'), (2, 'Sales'), (3, 'Support');
         INSERT INTO Employee VALUES
             (1, 'Yan',     'Weipeng', 1),
             (2, 'Larson',  'Per-Ake', 1),
             (3, 'Codd',    'Edgar',   2),
             (4, 'Gray',    'Jim',     2),
             (5, 'Selinger','Pat',     2),
             (6, 'Stone',   'Mike',    3),
             (7, 'Lorie',   'Ray',     NULL);",
    )?;

    let sql = "SELECT D.DeptID, D.Name, COUNT(E.EmpID)
               FROM Employee E, Department D
               WHERE E.DeptID = D.DeptID
               GROUP BY D.DeptID, D.Name
               ORDER BY DeptID";

    // EXPLAIN shows the decision: TestFD proves the rewrite valid, the
    // cost model compares both plans.
    match db.execute(&format!("EXPLAIN {sql}"))? {
        QueryOutput::Explain(text) => println!("=== EXPLAIN ===\n{text}"),
        other => println!("{other:?}"),
    }

    let (rows, profile, report) = db.query_report(sql)?;
    println!("=== chosen plan: {:?} ===", report.choice);
    println!("{}", profile.display_tree());
    println!("=== result ===\n{rows}");

    // The NULL-department employee joins nothing, so 6 of 7 employees
    // are counted.
    assert_eq!(rows.len(), 3);
    Ok(())
}
