-- Valid-rewrite corpus: every query here has an eager-aggregation
-- rewrite PROVED by TestFD (FD1 and FD2 derivable), so the analyzer
-- must produce ZERO diagnostics. CI runs `gbj-lint` over this file and
-- fails on any output beyond the summary lines.

-- Example 1 (Yan & Larson §1): per-department employee counts.
CREATE TABLE Department (
    DeptID INTEGER PRIMARY KEY,
    Name VARCHAR(30) NOT NULL);
CREATE TABLE Employee (
    EmpID INTEGER PRIMARY KEY,
    LastName VARCHAR(30) NOT NULL,
    DeptID INTEGER NOT NULL REFERENCES Department);

SELECT D.DeptID, D.Name, COUNT(E.EmpID)
FROM Employee E, Department D
WHERE E.DeptID = D.DeptID
GROUP BY D.DeptID, D.Name;

-- Theorem 2 generalisations: subset projection and DISTINCT.
SELECT D.Name, COUNT(E.EmpID)
FROM Employee E, Department D
WHERE E.DeptID = D.DeptID
GROUP BY D.DeptID, D.Name;

SELECT DISTINCT D.Name, COUNT(E.EmpID)
FROM Employee E, Department D
WHERE E.DeptID = D.DeptID
GROUP BY D.DeptID, D.Name;

-- Example 3 (§6.3): printer usage per dragon user. TestFD derives
-- GA1+ = {A.UserId, A.Machine} through the constant U.Machine =
-- 'dragon' and the key (UserId, Machine) of UserAccount.
CREATE TABLE UserAccount (
    UserId INTEGER,
    Machine VARCHAR(30),
    UserName VARCHAR(30) NOT NULL,
    PRIMARY KEY (UserId, Machine));
CREATE TABLE Printer (
    PNo INTEGER PRIMARY KEY,
    Speed INTEGER NOT NULL CHECK (Speed > 0),
    Make VARCHAR(30) NOT NULL);
CREATE TABLE PrinterAuth (
    UserId INTEGER,
    Machine VARCHAR(30),
    PNo INTEGER NOT NULL,
    Usage INTEGER NOT NULL CHECK (Usage >= 0),
    PRIMARY KEY (UserId, Machine, PNo),
    FOREIGN KEY (UserId, Machine) REFERENCES UserAccount,
    FOREIGN KEY (PNo) REFERENCES Printer);

SELECT U.UserId, U.UserName, SUM(A.Usage), MAX(P.Speed), MIN(P.Speed)
FROM UserAccount U, PrinterAuth A, Printer P
WHERE U.UserId = A.UserId AND U.Machine = A.Machine
  AND A.PNo = P.PNo AND U.Machine = 'dragon'
GROUP BY U.UserId, U.UserName;

-- The star-schema shape of the experiments (§10): group by the
-- dimension key, aggregate the fact side.
CREATE TABLE Dim (DimId INTEGER PRIMARY KEY, Cat VARCHAR(20) NOT NULL);
CREATE TABLE Fact (
    FactId INTEGER PRIMARY KEY,
    DimId INTEGER NOT NULL,
    V INTEGER NOT NULL);

SELECT D.DimId, COUNT(F.FactId), SUM(F.V)
FROM Fact F, Dim D
WHERE F.DimId = D.DimId
GROUP BY D.DimId;
