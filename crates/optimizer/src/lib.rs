#![forbid(unsafe_code)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]
#![warn(missing_docs)]

//! # gbj-optimizer
//!
//! A small rule-based logical optimizer, DataFusion-style: rules take a
//! [`LogicalPlan`](gbj_plan::LogicalPlan) and return a rewritten plan
//! when they fire; [`Optimizer`] drives them to a fixpoint.
//!
//! Rules:
//!
//! * [`JoinOrdering`] — flattens join regions and rebuilds them
//!   left-deep, joining *connected* relations first so Cartesian
//!   products only appear when the query graph is disconnected;
//! * [`PredicatePushdown`] — routes filter conjuncts below cross joins
//!   (producing [`Join`](gbj_plan::LogicalPlan::Join) nodes the executor
//!   can run as hash joins) and pushes single-sided conjuncts to their
//!   side;
//! * [`ColumnPruning`] — inserts projections above scans so only needed
//!   columns flow (the paper's Lemma 1: dropping `R2` columns other
//!   than `GA2+` before the join does not change the result);
//! * [`MergeFilters`] — collapses adjacent filters.
//!
//! The eager-aggregation transformation itself lives in `gbj-core` and
//! runs at the query-block level *before* lowering; these rules clean
//! up whichever block was chosen.

pub mod cost;
pub mod distributed;
pub mod join_order;
pub mod optimizer;
pub mod rules;

pub use cost::{shape_cost, CardTree, ShapeCost};
pub use distributed::{plan_distribution, DistPlan};
pub use join_order::JoinOrdering;
pub use optimizer::{Optimizer, OptimizerRule};
pub use rules::{ColumnPruning, MergeFilters, PredicatePushdown};
