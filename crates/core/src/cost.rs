//! The Section 7 trade-off analysis as an explicit cost model.
//!
//! The paper's observations, encoded:
//!
//! * the transformation **cannot increase the join input cardinality**
//!   (the aggregated side has at most as many rows as its input);
//! * it **may increase or decrease the group-by input cardinality** —
//!   lazy grouping sees the join output, eager grouping sees `σ[C1]R1`;
//!   with a selective join (Figure 8) the join output can be far
//!   smaller than `R1`, making eager grouping a loss;
//! * in a **distributed** setting, eager aggregation ships one row per
//!   group instead of all of `R1`, which can dominate everything else.
//!
//! The model is deliberately simple — linear per-row costs for hash
//! joins and hash aggregation — because the *decision* only needs the
//! relative order of two plans over the same data, not absolute times.

/// Cardinality statistics for one grouped join query, supplied by the
//  caller (measured, estimated, or known from the generator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// `|σ[C1] R1|` — rows of the aggregation side after its local
    /// predicate.
    pub r1_rows: f64,
    /// `|σ[C2] R2|` — rows of the other side after its local predicate.
    pub r2_rows: f64,
    /// Number of distinct `GA1+` groups in `σ[C1] R1` (the cardinality
    /// of the eagerly-aggregated side).
    pub r1_groups: f64,
    /// `|σ[C0](σ[C1]R1 × σ[C2]R2)|` — the join output under the lazy
    /// plan.
    pub join_rows: f64,
    /// Number of `(GA1, GA2)` groups — the final result cardinality.
    pub final_groups: f64,
}

/// The itemised cost of one plan under the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Rows entering the join (both sides summed).
    pub join_input: f64,
    /// Rows leaving the join.
    pub join_output: f64,
    /// Rows entering the group-by.
    pub group_input: f64,
    /// Groups produced.
    pub groups: f64,
    /// Rows shipped across the network (distributed mode; 0 locally).
    pub shipped_rows: f64,
    /// Total model cost (arbitrary units).
    pub total: f64,
}

/// Per-row cost constants. The defaults make hashing a row cost 1 unit
/// and producing an output row 1 unit; network transfer defaults to 50×
/// a local row touch, in line with the paper's remark that
/// "communication costs often dominate the query processing cost".
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost to build/probe one hash-table row in a join.
    pub c_join_row: f64,
    /// Cost to emit one join output row.
    pub c_join_out: f64,
    /// Cost to hash one row into the aggregation table.
    pub c_group_row: f64,
    /// Cost to finalise one group.
    pub c_group_out: f64,
    /// Cost to ship one row between sites (only counted when
    /// `distributed`).
    pub c_net_row: f64,
    /// Whether R1 and R2 live on different sites (the Section 7
    /// distributed scenario: the aggregation side is shipped to R2's
    /// site before the join).
    pub distributed: bool,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            c_join_row: 1.0,
            c_join_out: 1.0,
            c_group_row: 1.0,
            c_group_out: 1.0,
            c_net_row: 50.0,
            distributed: false,
        }
    }
}

impl CostModel {
    /// A distributed variant of the model.
    #[must_use]
    pub fn distributed() -> CostModel {
        CostModel {
            distributed: true,
            ..CostModel::default()
        }
    }

    /// Cost of the lazy plan `E1`: join first, then group.
    #[must_use]
    pub fn lazy(&self, s: &Stats) -> PlanCost {
        let join_input = s.r1_rows + s.r2_rows;
        let join_output = s.join_rows;
        let group_input = s.join_rows;
        let groups = s.final_groups;
        let shipped = if self.distributed { s.r1_rows } else { 0.0 };
        PlanCost {
            join_input,
            join_output,
            group_input,
            groups,
            shipped_rows: shipped,
            total: self.c_join_row * join_input
                + self.c_join_out * join_output
                + self.c_group_row * group_input
                + self.c_group_out * groups
                + self.c_net_row * shipped,
        }
    }

    /// Cost of the eager plan `E2`: group `σ[C1]R1` first, then join.
    ///
    /// Under FD1 ∧ FD2 the eager join emits exactly the final result
    /// rows, so its output cardinality equals `final_groups`.
    #[must_use]
    pub fn eager(&self, s: &Stats) -> PlanCost {
        let group_input = s.r1_rows;
        let groups = s.r1_groups;
        let join_input = s.r1_groups + s.r2_rows;
        let join_output = s.final_groups;
        let shipped = if self.distributed { s.r1_groups } else { 0.0 };
        PlanCost {
            join_input,
            join_output,
            group_input,
            groups,
            shipped_rows: shipped,
            total: self.c_group_row * group_input
                + self.c_group_out * groups
                + self.c_join_row * join_input
                + self.c_join_out * join_output
                + self.c_net_row * shipped,
        }
    }

    /// Whether the (valid) transformation should be applied: eager is
    /// estimated cheaper than lazy.
    #[must_use]
    pub fn should_transform(&self, s: &Stats) -> bool {
        self.eager(s).total < self.lazy(s).total
    }

    /// The estimated speedup `lazy / eager` (> 1 means eager wins).
    #[must_use]
    pub fn speedup(&self, s: &Stats) -> f64 {
        self.lazy(s).total / self.eager(s).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 / Example 1: 10000 employees, 100 departments, FK join.
    fn figure1_stats() -> Stats {
        Stats {
            r1_rows: 10_000.0,
            r2_rows: 100.0,
            r1_groups: 100.0,
            join_rows: 10_000.0,
            final_groups: 100.0,
        }
    }

    /// Figure 8 / Example 4: the adversarial case — 10000 rows grouping
    /// into 9000 groups, but the join keeps only 50 rows.
    fn figure8_stats() -> Stats {
        Stats {
            r1_rows: 10_000.0,
            r2_rows: 100.0,
            r1_groups: 9_000.0,
            join_rows: 50.0,
            final_groups: 10.0,
        }
    }

    #[test]
    fn figure1_eager_wins() {
        let m = CostModel::default();
        let s = figure1_stats();
        assert!(m.should_transform(&s));
        assert!(m.speedup(&s) > 1.5, "speedup = {}", m.speedup(&s));
    }

    #[test]
    fn figure8_lazy_wins() {
        let m = CostModel::default();
        let s = figure8_stats();
        assert!(!m.should_transform(&s));
        assert!(m.speedup(&s) < 1.0);
    }

    /// Paper §7: "It cannot increase the input cardinality of the join."
    #[test]
    fn eager_never_increases_join_input() {
        let m = CostModel::default();
        for s in [figure1_stats(), figure8_stats()] {
            assert!(m.eager(&s).join_input <= m.lazy(&s).join_input);
        }
        // Even in a synthetic worst case where every row is its own
        // group, the inputs tie but never invert.
        let s = Stats {
            r1_rows: 1000.0,
            r2_rows: 10.0,
            r1_groups: 1000.0,
            join_rows: 1000.0,
            final_groups: 1000.0,
        };
        assert!(m.eager(&s).join_input <= m.lazy(&s).join_input);
    }

    /// §7: the group-by input may move either way.
    #[test]
    fn group_input_can_increase_or_decrease() {
        let m = CostModel::default();
        let f1 = figure1_stats();
        // Figure 1: both see 10000 rows (tie).
        assert_eq!(m.eager(&f1).group_input, m.lazy(&f1).group_input);
        let f8 = figure8_stats();
        // Figure 8: eager sees 10000, lazy only 50.
        assert!(m.eager(&f8).group_input > m.lazy(&f8).group_input);
        // Selective C1-free FK join with fan-in: lazy sees the join
        // blow-up, eager the base table.
        let fan_out = Stats {
            r1_rows: 10_000.0,
            r2_rows: 100.0,
            r1_groups: 100.0,
            join_rows: 20_000.0, // join with duplicate-producing R2 side
            final_groups: 100.0,
        };
        assert!(m.eager(&fan_out).group_input < m.lazy(&fan_out).group_input);
    }

    /// §7 distributed: eager ships one row per group instead of all of
    /// R1, and with network costs dominating, eager wins even in the
    /// Figure 8 counter-example.
    #[test]
    fn distributed_mode_ships_groups_not_rows() {
        let m = CostModel::distributed();
        let s = figure1_stats();
        assert_eq!(m.lazy(&s).shipped_rows, 10_000.0);
        assert_eq!(m.eager(&s).shipped_rows, 100.0);
        assert!(m.speedup(&s) > 10.0);

        // Figure 8, distributed: shipping 9000 instead of 10000 still
        // helps a little; the model must reflect the smaller gap.
        let s8 = figure8_stats();
        let local = CostModel::default().speedup(&s8);
        let dist = m.speedup(&s8);
        assert!(dist > local, "network savings improve eager's standing");
    }

    #[test]
    fn local_mode_ships_nothing() {
        let m = CostModel::default();
        let s = figure1_stats();
        assert_eq!(m.lazy(&s).shipped_rows, 0.0);
        assert_eq!(m.eager(&s).shipped_rows, 0.0);
    }

    #[test]
    fn costs_are_positive_and_itemised() {
        let m = CostModel::default();
        let s = figure1_stats();
        let lazy = m.lazy(&s);
        assert!(lazy.total > 0.0);
        assert_eq!(lazy.join_input, 10_100.0);
        assert_eq!(lazy.group_input, 10_000.0);
        let eager = m.eager(&s);
        assert_eq!(eager.join_input, 200.0);
        assert_eq!(eager.join_output, 100.0);
    }
}
