//! Criterion bench for Figure 1 / Example 1: lazy vs eager on the
//! Employee ⨝ Department grouped join at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbj_datagen::EmpDeptConfig;
use gbj_engine::PushdownPolicy;

fn bench(c: &mut Criterion) {
    let cfg = EmpDeptConfig::paper();
    let mut db = cfg.build().expect("build");
    let sql = cfg.query();

    let mut group = c.benchmark_group("fig1_emp_dept");
    group.sample_size(20);
    for (policy, name) in [
        (PushdownPolicy::Never, "lazy"),
        (PushdownPolicy::Always, "eager"),
    ] {
        db.options_mut().policy = policy;
        // Plan once outside the loop body? No — include planning, as a
        // real engine would; it is negligible next to execution here.
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| db.query(sql).expect("query"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
