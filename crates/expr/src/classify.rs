//! Predicate classification for the paper's framework.
//!
//! Section 3 writes the WHERE clause as `C1 ∧ C0 ∧ C2` where `C1`
//! mentions only columns of `R1`, `C2` only columns of `R2`, and every
//! conjunct of `C0` mentions both. [`classify_conjuncts`] performs that
//! split given the qualifier sets of the two sides.
//!
//! Section 6.3 defines the two atom shapes `TestFD` exploits:
//! *Type 1* — `column = constant` (host variables count as constants),
//! *Type 2* — `column = column`. [`AtomClass::of`] recognises them.

use std::collections::BTreeSet;

use gbj_types::{ColumnRef, Value};

use crate::expr::{BinaryOp, Expr};
use crate::normalize::conjuncts;

/// The result of splitting a WHERE clause into the paper's three parts.
#[derive(Debug, Clone, Default)]
pub struct PredicateParts {
    /// Conjuncts over `R1` columns only (paper's `C1`).
    pub c1: Vec<Expr>,
    /// Conjuncts mentioning columns of both sides (paper's `C0`,
    /// e.g. join predicates).
    pub c0: Vec<Expr>,
    /// Conjuncts over `R2` columns only (paper's `C2`).
    pub c2: Vec<Expr>,
    /// Conjuncts with no column references at all (constant folds);
    /// kept separate so nothing is silently dropped.
    pub constant: Vec<Expr>,
}

impl PredicateParts {
    /// Rebuild `C1` as a single conjunction (`None` when empty).
    #[must_use]
    pub fn c1_expr(&self) -> Option<Expr> {
        Expr::conjunction(self.c1.iter().cloned())
    }

    /// Rebuild `C0` as a single conjunction (`None` when empty).
    #[must_use]
    pub fn c0_expr(&self) -> Option<Expr> {
        Expr::conjunction(self.c0.iter().cloned())
    }

    /// Rebuild `C2` as a single conjunction (`None` when empty).
    #[must_use]
    pub fn c2_expr(&self) -> Option<Expr> {
        Expr::conjunction(self.c2.iter().cloned())
    }

    /// The columns of `C0` — the paper's `α(C0)`, from which
    /// `GA1+ = GA1 ∪ (α(C0) − R2)` and `GA2+` are formed.
    #[must_use]
    pub fn c0_columns(&self) -> BTreeSet<ColumnRef> {
        let mut out = BTreeSet::new();
        for e in &self.c0 {
            out.extend(e.columns());
        }
        out
    }
}

/// Which side of the `R1 × R2` partition a qualifier belongs to.
fn side(col: &ColumnRef, r1: &BTreeSet<String>, r2: &BTreeSet<String>) -> Option<Side> {
    let t = col.table.as_deref()?;
    let hit1 = r1.iter().any(|q| q.eq_ignore_ascii_case(t));
    let hit2 = r2.iter().any(|q| q.eq_ignore_ascii_case(t));
    match (hit1, hit2) {
        (true, false) => Some(Side::R1),
        (false, true) => Some(Side::R2),
        _ => None,
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Side {
    R1,
    R2,
}

/// Split `predicate` into the paper's `C1 ∧ C0 ∧ C2` given the table
/// qualifiers that make up each side.
///
/// Returns `None` when some conjunct references a column whose qualifier
/// is in neither side (or is unqualified) — the caller then cannot apply
/// the transformation safely.
#[must_use]
pub fn classify_conjuncts(
    predicate: &Expr,
    r1_tables: &BTreeSet<String>,
    r2_tables: &BTreeSet<String>,
) -> Option<PredicateParts> {
    let mut parts = PredicateParts::default();
    for conjunct in conjuncts(predicate) {
        let cols = conjunct.columns();
        let mut saw_r1 = false;
        let mut saw_r2 = false;
        for c in &cols {
            match side(c, r1_tables, r2_tables)? {
                Side::R1 => saw_r1 = true,
                Side::R2 => saw_r2 = true,
            }
        }
        match (saw_r1, saw_r2) {
            (true, true) => parts.c0.push(conjunct),
            (true, false) => parts.c1.push(conjunct),
            (false, true) => parts.c2.push(conjunct),
            (false, false) => parts.constant.push(conjunct),
        }
    }
    Some(parts)
}

/// Classification of an atomic condition per Section 6.3.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomClass {
    /// Type 1: `column = constant` (constant may be a host variable).
    ColumnEqConstant(ColumnRef, Value),
    /// Type 2: `column = column`.
    ColumnEqColumn(ColumnRef, ColumnRef),
    /// Anything else (non-equality comparison, IS NULL, arithmetic
    /// equality, …) — TestFD discards clauses containing these.
    Other,
}

impl AtomClass {
    /// Classify one atom. Both operand orders are recognised
    /// (`c = 5` and `5 = c`).
    #[must_use]
    pub fn of(atom: &Expr) -> AtomClass {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = atom
        else {
            return AtomClass::Other;
        };
        match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                // `c = NULL` is never true; treat as Other so TestFD
                // ignores it rather than inferring "c is constant".
                if v.is_null() {
                    AtomClass::Other
                } else {
                    AtomClass::ColumnEqConstant(c.clone(), v.clone())
                }
            }
            (Expr::Column(a), Expr::Column(b)) => AtomClass::ColumnEqColumn(a.clone(), b.clone()),
            _ => AtomClass::Other,
        }
    }

    /// Whether the atom is Type 1 or Type 2 (usable by TestFD).
    #[must_use]
    pub fn is_usable(&self) -> bool {
        !matches!(self, AtomClass::Other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| (*s).to_string()).collect()
    }

    /// Example 3's split: R1 = {A, P}, R2 = {U};
    /// C0 = the U↔A equalities, C1 = A.PNo = P.PNo, C2 = U.Machine = 'dragon'.
    #[test]
    fn example3_partition() {
        let pred = Expr::col("U", "UserId")
            .eq(Expr::col("A", "UserId"))
            .and(Expr::col("U", "Machine").eq(Expr::col("A", "Machine")))
            .and(Expr::col("A", "PNo").eq(Expr::col("P", "PNo")))
            .and(Expr::col("U", "Machine").eq(Expr::lit("dragon")));

        let parts = classify_conjuncts(&pred, &set(&["A", "P"]), &set(&["U"])).unwrap();
        assert_eq!(parts.c0.len(), 2, "two join predicates cross the sides");
        assert_eq!(parts.c1.len(), 1);
        assert_eq!(parts.c1[0].to_string(), "(A.PNo = P.PNo)");
        assert_eq!(parts.c2.len(), 1);
        assert_eq!(parts.c2[0].to_string(), "(U.Machine = 'dragon')");
        assert!(parts.constant.is_empty());

        // α(C0) is the four columns in the crossing predicates.
        let c0_cols = parts.c0_columns();
        assert_eq!(c0_cols.len(), 4);
        assert!(c0_cols.contains(&ColumnRef::qualified("A", "UserId")));
        assert!(c0_cols.contains(&ColumnRef::qualified("U", "Machine")));
    }

    #[test]
    fn unknown_qualifier_fails_classification() {
        let pred = Expr::col("X", "a").eq(Expr::lit(1i64));
        assert!(classify_conjuncts(&pred, &set(&["A"]), &set(&["B"])).is_none());
    }

    #[test]
    fn unqualified_column_fails_classification() {
        let pred = Expr::bare("a").eq(Expr::lit(1i64));
        assert!(classify_conjuncts(&pred, &set(&["A"]), &set(&["B"])).is_none());
    }

    #[test]
    fn qualifier_in_both_sides_fails() {
        let pred = Expr::col("A", "a").eq(Expr::lit(1i64));
        assert!(classify_conjuncts(&pred, &set(&["A"]), &set(&["A"])).is_none());
    }

    #[test]
    fn constant_conjunct_is_kept_separately() {
        let pred = Expr::lit(1i64)
            .eq(Expr::lit(1i64))
            .and(Expr::col("A", "x").eq(Expr::col("B", "y")));
        let parts = classify_conjuncts(&pred, &set(&["A"]), &set(&["B"])).unwrap();
        assert_eq!(parts.constant.len(), 1);
        assert_eq!(parts.c0.len(), 1);
    }

    #[test]
    fn rebuilt_expressions() {
        let pred = Expr::col("A", "x")
            .eq(Expr::lit(1i64))
            .and(Expr::col("A", "y").eq(Expr::lit(2i64)));
        let parts = classify_conjuncts(&pred, &set(&["A"]), &set(&["B"])).unwrap();
        assert_eq!(
            parts.c1_expr().unwrap().to_string(),
            "((A.x = 1) AND (A.y = 2))"
        );
        assert!(parts.c0_expr().is_none());
        assert!(parts.c2_expr().is_none());
    }

    #[test]
    fn atom_type1_both_orders() {
        let a = Expr::col("T", "c").eq(Expr::lit(5i64));
        assert_eq!(
            AtomClass::of(&a),
            AtomClass::ColumnEqConstant(ColumnRef::qualified("T", "c"), Value::Int(5))
        );
        let b = Expr::lit(5i64).eq(Expr::col("T", "c"));
        assert_eq!(
            AtomClass::of(&b),
            AtomClass::ColumnEqConstant(ColumnRef::qualified("T", "c"), Value::Int(5))
        );
    }

    #[test]
    fn atom_type2() {
        let a = Expr::col("A", "x").eq(Expr::col("B", "y"));
        assert_eq!(
            AtomClass::of(&a),
            AtomClass::ColumnEqColumn(
                ColumnRef::qualified("A", "x"),
                ColumnRef::qualified("B", "y")
            )
        );
        assert!(AtomClass::of(&a).is_usable());
    }

    #[test]
    fn atom_other_shapes() {
        // Non-equality comparison.
        assert_eq!(
            AtomClass::of(&Expr::col("T", "c").binary(BinaryOp::Lt, Expr::lit(5i64))),
            AtomClass::Other
        );
        // Arithmetic inside equality.
        let e = Expr::col("T", "c")
            .binary(BinaryOp::Add, Expr::lit(1i64))
            .eq(Expr::lit(5i64));
        assert_eq!(AtomClass::of(&e), AtomClass::Other);
        // Equality with NULL literal is useless (never true).
        assert_eq!(
            AtomClass::of(&Expr::col("T", "c").eq(Expr::lit(Value::Null))),
            AtomClass::Other
        );
        // IS NULL.
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("T", "c")),
            negated: false,
        };
        assert_eq!(AtomClass::of(&e), AtomClass::Other);
        assert!(!AtomClass::of(&e).is_usable());
    }
}
