//! The binder: AST → validated [`QueryBlock`] / catalog objects.
//!
//! Name resolution fully qualifies every column reference (the
//! optimizer's `C1/C0/C2` classification needs qualifiers), expands
//! view references into nested derived blocks, and enforces the SQL2
//! rules the paper relies on (selection columns ⊆ grouping columns,
//! aggregate arguments scalar, …).

use gbj_catalog::{Catalog, ColumnDef, Constraint, Domain, TableDef, ViewDef};
use gbj_expr::{AggregateCall, AggregateFunction, Expr};
use gbj_plan::{BlockRelation, QueryBlock, SelectItem};
use gbj_types::{ColumnRef, Error, Result, Schema, Value};

use crate::ast::{
    AstExpr, ColumnDefAst, SelectItemAst, SelectStmt, Statement, TableConstraintAst, TypeRef,
};
use crate::parser::parse_sql;

/// Maximum view-expansion depth (defends against cyclic views).
const MAX_VIEW_DEPTH: usize = 16;

/// A bound query: the canonical block plus presentation-only ORDER BY.
#[derive(Debug, Clone)]
pub struct BoundSelect {
    /// The SPJG block (executable via `to_plan`).
    pub block: QueryBlock,
    /// ORDER BY keys over the *output* schema, with ascending flags.
    pub order_by: Vec<(ColumnRef, bool)>,
}

/// Binds statements against a catalog.
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// A binder over the given catalog.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Binder<'a> {
        Binder { catalog }
    }

    // ------------------------------------------------------------- queries

    /// Bind a SELECT statement.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<BoundSelect> {
        self.bind_select_depth(stmt, 0)
    }

    fn bind_select_depth(&self, stmt: &SelectStmt, depth: usize) -> Result<BoundSelect> {
        if depth > MAX_VIEW_DEPTH {
            return Err(Error::Bind("view nesting too deep (cycle?)".into()));
        }

        // FROM: resolve tables and views.
        let mut relations = Vec::with_capacity(stmt.from.len());
        for table_ref in &stmt.from {
            let qualifier = table_ref
                .alias
                .clone()
                .unwrap_or_else(|| table_ref.name.clone());
            if let Some(def) = self.catalog.table(&table_ref.name) {
                relations.push(BlockRelation::Base {
                    table: def.name.clone(),
                    qualifier: qualifier.clone(),
                    schema: def.schema(&qualifier),
                });
            } else if let Some(view) = self.catalog.view(&table_ref.name) {
                let view = view.clone();
                let inner_stmt = match parse_sql(&view.query_sql)? {
                    Statement::Select(s) => s,
                    _ => {
                        return Err(Error::Bind(format!(
                            "view {} does not define a SELECT",
                            view.name
                        )))
                    }
                };
                let mut bound = self.bind_select_depth(&inner_stmt, depth + 1)?;
                if !bound.order_by.is_empty() {
                    return Err(Error::Unsupported(format!(
                        "view {} uses ORDER BY",
                        view.name
                    )));
                }
                if !view.columns.is_empty() {
                    rename_block_outputs(&mut bound.block, &view.columns)?;
                }
                relations.push(BlockRelation::Derived {
                    block: Box::new(bound.block),
                    qualifier: qualifier.clone(),
                });
            } else {
                return Err(Error::Bind(format!(
                    "unknown table or view {}",
                    table_ref.name
                )));
            }
        }

        let mut block = QueryBlock::new(relations);
        let input_schema = block.input_schema()?;

        // WHERE (scalar only).
        if let Some(w) = &stmt.where_clause {
            let bound = self.bind_scalar(w, &input_schema)?;
            block.predicate = gbj_expr::conjuncts(&bound);
        }

        // GROUP BY (duplicates are legal SQL; keep the first occurrence).
        for name in &stmt.group_by {
            let col = name_to_ref(name)?;
            let (_, field) = input_schema.resolve(&col)?;
            let resolved = field.column_ref();
            if !block.group_by.contains(&resolved) {
                block.group_by.push(resolved);
            }
        }

        // Select list.
        let has_aggregates = stmt.items.iter().any(|i| match i {
            SelectItemAst::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItemAst::Wildcard => false,
        });
        let grouped = has_aggregates || !stmt.group_by.is_empty();
        let mut used_aliases: Vec<String> = Vec::new();
        let next_alias = |base: String, used: &mut Vec<String>| -> String {
            let mut name = base;
            let mut n = 1;
            while used.iter().any(|u| u.eq_ignore_ascii_case(&name)) {
                name = format!("{name}_{n}");
                n += 1;
            }
            used.push(name.clone());
            name
        };
        for item in &stmt.items {
            match item {
                SelectItemAst::Wildcard => {
                    if grouped {
                        return Err(Error::Bind(
                            "SELECT * cannot be combined with GROUP BY or aggregates".into(),
                        ));
                    }
                    for field in input_schema.fields() {
                        let alias = next_alias(field.name.clone(), &mut used_aliases);
                        block.select.push(SelectItem::Column {
                            col: field.column_ref(),
                            alias,
                        });
                    }
                }
                SelectItemAst::Expr { expr, alias } => {
                    if expr.contains_aggregate() {
                        let call = self.bind_aggregate(expr, &input_schema)?;
                        let base = alias
                            .clone()
                            .unwrap_or_else(|| call.func.name().to_ascii_lowercase());
                        let name = next_alias(base, &mut used_aliases);
                        block.aggregates.push((call, name));
                        block.select.push(SelectItem::Aggregate {
                            index: block.aggregates.len() - 1,
                        });
                    } else {
                        let bound = self.bind_scalar(expr, &input_schema)?;
                        let Expr::Column(col) = bound else {
                            return Err(Error::Unsupported(format!(
                                "non-column select expression {bound} \
                                 (only columns and aggregates are supported)"
                            )));
                        };
                        let base = alias.clone().unwrap_or_else(|| col.column.clone());
                        let name = next_alias(base, &mut used_aliases);
                        block.select.push(SelectItem::Column { col, alias: name });
                    }
                }
            }
        }
        block.distinct = stmt.distinct;

        // HAVING: binds against the aggregate output (grouping columns +
        // aggregate aliases); aggregate calls must match a SELECT
        // aggregate.
        if let Some(h) = &stmt.having {
            if !grouped {
                return Err(Error::Bind("HAVING without GROUP BY/aggregates".into()));
            }
            let agg_schema = aggregate_output_schema(&block, &input_schema)?;
            let bound = self.bind_having(h, &block, &input_schema, &agg_schema)?;
            block.having = Some(bound);
        }

        block.validate()?;

        // ORDER BY over the output schema.
        let out_schema = block.output_schema()?;
        let mut order_by = Vec::new();
        for (name, asc) in &stmt.order_by {
            let col = name_to_ref(name)?;
            let (_, field) = out_schema.resolve(&col)?;
            order_by.push((field.column_ref(), *asc));
        }

        Ok(BoundSelect { block, order_by })
    }

    /// Bind a scalar expression (no aggregates), qualifying every
    /// column reference against `schema`.
    pub fn bind_scalar(&self, ast: &AstExpr, schema: &Schema) -> Result<Expr> {
        let expr = match ast {
            AstExpr::Name(parts) => {
                let col = name_to_ref(parts)?;
                let (_, field) = schema.resolve(&col)?;
                Expr::Column(field.column_ref())
            }
            AstExpr::Literal(v) => Expr::Literal(v.clone()),
            AstExpr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(self.bind_scalar(left, schema)?),
                op: *op,
                right: Box::new(self.bind_scalar(right, schema)?),
            },
            AstExpr::Not(e) => Expr::Not(Box::new(self.bind_scalar(e, schema)?)),
            AstExpr::Neg(e) => Expr::Neg(Box::new(self.bind_scalar(e, schema)?)),
            AstExpr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.bind_scalar(expr, schema)?),
                negated: *negated,
            },
            AstExpr::Func { name, .. } => {
                return Err(Error::Bind(format!(
                    "aggregate {name} is not allowed in this context"
                )))
            }
        };
        // Type-check eagerly so errors carry SQL-level context.
        expr.data_type(schema)?;
        Ok(expr)
    }

    fn bind_aggregate(&self, ast: &AstExpr, schema: &Schema) -> Result<AggregateCall> {
        let AstExpr::Func {
            name,
            distinct,
            star,
            args,
        } = ast
        else {
            return Err(Error::Unsupported(
                "expressions over aggregates are not supported \
                 (select the aggregate directly)"
                    .to_string(),
            ));
        };
        let func = match name.to_ascii_uppercase().as_str() {
            "COUNT" if *star => AggregateFunction::CountStar,
            "COUNT" => AggregateFunction::Count,
            "SUM" => AggregateFunction::Sum,
            "MIN" => AggregateFunction::Min,
            "MAX" => AggregateFunction::Max,
            "AVG" => AggregateFunction::Avg,
            other => return Err(Error::Unsupported(format!("unknown function {other}"))),
        };
        let call = if *star {
            if *distinct {
                return Err(Error::Bind("COUNT(DISTINCT *) is not valid".into()));
            }
            AggregateCall::count_star()
        } else {
            let [arg] = args.as_slice() else {
                return Err(Error::Bind(format!("{name} takes exactly one argument")));
            };
            if arg.contains_aggregate() {
                return Err(Error::Bind("nested aggregates are not allowed".into()));
            }
            let bound = self.bind_scalar(arg, schema)?;
            let mut call = AggregateCall::new(func, bound);
            if *distinct {
                call = call.with_distinct();
            }
            call
        };
        call.data_type(schema)?;
        Ok(call)
    }

    fn bind_having(
        &self,
        ast: &AstExpr,
        block: &QueryBlock,
        input_schema: &Schema,
        agg_schema: &Schema,
    ) -> Result<Expr> {
        match ast {
            AstExpr::Func { .. } => {
                // Must match one of the SELECT aggregates; replace with
                // a reference to its output column.
                let call = self.bind_aggregate(ast, input_schema)?;
                for (existing, alias) in &block.aggregates {
                    if *existing == call {
                        return Ok(Expr::Column(ColumnRef::bare(alias.clone())));
                    }
                }
                Err(Error::Unsupported(format!(
                    "HAVING aggregate {call} must also appear in the SELECT list"
                )))
            }
            AstExpr::Name(parts) => {
                let col = name_to_ref(parts)?;
                let (_, field) = agg_schema.resolve(&col)?;
                Ok(Expr::Column(field.column_ref()))
            }
            AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
            AstExpr::Binary { left, op, right } => Ok(Expr::Binary {
                left: Box::new(self.bind_having(left, block, input_schema, agg_schema)?),
                op: *op,
                right: Box::new(self.bind_having(right, block, input_schema, agg_schema)?),
            }),
            AstExpr::Not(e) => Ok(Expr::Not(Box::new(self.bind_having(
                e,
                block,
                input_schema,
                agg_schema,
            )?))),
            AstExpr::Neg(e) => Ok(Expr::Neg(Box::new(self.bind_having(
                e,
                block,
                input_schema,
                agg_schema,
            )?))),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.bind_having(expr, block, input_schema, agg_schema)?),
                negated: *negated,
            }),
        }
    }

    // ----------------------------------------------------------------- DDL

    /// Bind a CREATE TABLE statement to a validated [`TableDef`].
    pub fn bind_create_table(
        &self,
        name: &str,
        columns: &[ColumnDefAst],
        constraints: &[TableConstraintAst],
    ) -> Result<TableDef> {
        let mut defs = Vec::with_capacity(columns.len());
        let mut extra_constraints: Vec<Constraint> = Vec::new();
        for c in columns {
            let (data_type, domain_check, domain_name) = match &c.data_type {
                TypeRef::Builtin(t) => (*t, None, None),
                TypeRef::Domain(d) => {
                    let domain = self
                        .catalog
                        .domain(d)
                        .ok_or_else(|| Error::Catalog(format!("unknown domain {d}")))?;
                    (
                        domain.data_type,
                        domain.check.clone(),
                        Some(domain.name.clone()),
                    )
                }
            };
            let mut def = ColumnDef::new(c.name.clone(), data_type);
            def.domain = domain_name;
            if c.not_null {
                def = def.not_null();
            }
            if let Some(check) = domain_check {
                def = def.with_check(check);
            }
            for check in &c.checks {
                def = def.with_check(ast_to_raw_expr(check)?);
            }
            if c.primary_key {
                extra_constraints.push(Constraint::PrimaryKey(vec![c.name.clone()]));
            }
            if c.unique {
                extra_constraints.push(Constraint::Unique(vec![c.name.clone()]));
            }
            if let Some((ref_table, ref_columns)) = &c.references {
                extra_constraints.push(Constraint::ForeignKey {
                    columns: vec![c.name.clone()],
                    ref_table: ref_table.clone(),
                    ref_columns: ref_columns.clone(),
                });
            }
            defs.push(def);
        }
        let mut table = TableDef::new(name, defs);
        for c in extra_constraints {
            table = table.with_constraint(c);
        }
        for c in constraints {
            let bound = match c {
                TableConstraintAst::PrimaryKey(cols) => Constraint::PrimaryKey(cols.clone()),
                TableConstraintAst::Unique(cols) => Constraint::Unique(cols.clone()),
                TableConstraintAst::Check(e) => Constraint::Check {
                    name: None,
                    expr: ast_to_raw_expr(e)?,
                },
                TableConstraintAst::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } => Constraint::ForeignKey {
                    columns: columns.clone(),
                    ref_table: ref_table.clone(),
                    ref_columns: ref_columns.clone(),
                },
            };
            table = table.with_constraint(bound);
        }
        table.validate()
    }

    /// Bind a CREATE DOMAIN statement.
    pub fn bind_create_domain(
        &self,
        name: &str,
        data_type: gbj_types::DataType,
        check: Option<&AstExpr>,
    ) -> Result<Domain> {
        Ok(Domain {
            name: name.to_string(),
            data_type,
            check: check.map(ast_to_raw_expr).transpose()?,
        })
    }

    /// Bind a CREATE VIEW statement, validating the defining query.
    pub fn bind_create_view(
        &self,
        name: &str,
        columns: &[String],
        query_sql: &str,
    ) -> Result<ViewDef> {
        let stmt = match parse_sql(query_sql)? {
            Statement::Select(s) => s,
            _ => {
                return Err(Error::Bind(format!(
                    "view {name} must be defined by a SELECT"
                )))
            }
        };
        let bound = self.bind_select(&stmt)?;
        if !columns.is_empty() && columns.len() != bound.block.select.len() {
            return Err(Error::Bind(format!(
                "view {name} declares {} columns but selects {}",
                columns.len(),
                bound.block.select.len()
            )));
        }
        Ok(ViewDef {
            name: name.to_string(),
            columns: columns.to_vec(),
            query_sql: query_sql.to_string(),
        })
    }

    /// Bind an expression scoped to a single table (DELETE/UPDATE
    /// predicates and assignment values): names resolve against the
    /// table's own schema.
    pub fn bind_table_expr(&self, table: &str, ast: &AstExpr) -> Result<Expr> {
        let def = self
            .catalog
            .table(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))?;
        let schema = def.schema(&def.name);
        self.bind_scalar(ast, &schema)
    }

    /// Evaluate INSERT row expressions to values (literals and literal
    /// arithmetic only).
    pub fn bind_values(&self, rows: &[Vec<AstExpr>]) -> Result<Vec<Vec<Value>>> {
        let empty = Schema::empty();
        rows.iter()
            .map(|row| {
                row.iter()
                    .map(|e| {
                        let expr = self.bind_scalar(e, &empty)?;
                        expr.eval(&[], &empty)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Convert an AST expression to a *raw* expression (names kept as
/// written, unresolved) — used for constraint expressions whose scope is
/// a single table or domain.
fn ast_to_raw_expr(ast: &AstExpr) -> Result<Expr> {
    Ok(match ast {
        AstExpr::Name(parts) => Expr::Column(name_to_ref(parts)?),
        AstExpr::Literal(v) => Expr::Literal(v.clone()),
        AstExpr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(ast_to_raw_expr(left)?),
            op: *op,
            right: Box::new(ast_to_raw_expr(right)?),
        },
        AstExpr::Not(e) => Expr::Not(Box::new(ast_to_raw_expr(e)?)),
        AstExpr::Neg(e) => Expr::Neg(Box::new(ast_to_raw_expr(e)?)),
        AstExpr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(ast_to_raw_expr(expr)?),
            negated: *negated,
        },
        AstExpr::Func { name, .. } => {
            return Err(Error::Bind(format!(
                "aggregate {name} is not allowed in constraints"
            )))
        }
    })
}

fn name_to_ref(parts: &[String]) -> Result<ColumnRef> {
    match parts {
        [col] => Ok(ColumnRef::bare(col.clone())),
        [table, col] => Ok(ColumnRef::qualified(table.clone(), col.clone())),
        _ => Err(Error::Bind(format!(
            "invalid column reference {}",
            parts.join(".")
        ))),
    }
}

/// The schema of the aggregate output (grouping columns + aggregate
/// aliases) used to bind HAVING.
fn aggregate_output_schema(block: &QueryBlock, input_schema: &Schema) -> Result<Schema> {
    let mut fields = Vec::new();
    for g in &block.group_by {
        let (_, f) = input_schema.resolve(g)?;
        fields.push(f.clone());
    }
    for (call, alias) in &block.aggregates {
        fields.push(gbj_types::Field::new(
            alias.clone(),
            call.data_type(input_schema)?,
            true,
        ));
    }
    Ok(Schema::new(fields))
}

/// Rename a block's output columns in order (for `CREATE VIEW v (a, b)`).
fn rename_block_outputs(block: &mut QueryBlock, names: &[String]) -> Result<()> {
    if names.len() != block.select.len() {
        return Err(Error::Bind(format!(
            "view declares {} columns but its query selects {}",
            names.len(),
            block.select.len()
        )));
    }
    for (item, name) in block.select.iter_mut().zip(names) {
        match item {
            SelectItem::Column { alias, .. } => *alias = name.clone(),
            SelectItem::Aggregate { index } => {
                if let Some(agg) = block.aggregates.get_mut(*index) {
                    agg.1 = name.clone();
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbj_types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableDef::new(
                "Department",
                vec![
                    ColumnDef::new("DeptID", DataType::Int64),
                    ColumnDef::new("Name", DataType::Utf8),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["DeptID".into()])),
        )
        .unwrap();
        c.create_table(
            TableDef::new(
                "Employee",
                vec![
                    ColumnDef::new("EmpID", DataType::Int64),
                    ColumnDef::new("DeptID", DataType::Int64),
                    ColumnDef::new("Salary", DataType::Int64),
                ],
            )
            .with_constraint(Constraint::PrimaryKey(vec!["EmpID".into()])),
        )
        .unwrap();
        c.create_view(ViewDef {
            name: "DeptCounts".into(),
            columns: vec!["DeptID".into(), "Cnt".into()],
            query_sql: "SELECT E.DeptID, COUNT(E.EmpID) FROM Employee E GROUP BY E.DeptID".into(),
        })
        .unwrap();
        c
    }

    fn bind(sql: &str) -> Result<BoundSelect> {
        let cat = catalog();
        let stmt = parse_sql(sql)?;
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        Binder::new(&cat).bind_select(&s)
    }

    #[test]
    fn binds_example1_shape() {
        let b = bind(
            "SELECT D.DeptID, D.Name, COUNT(E.EmpID) \
             FROM Employee E, Department D \
             WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name",
        )
        .unwrap();
        assert_eq!(b.block.relations.len(), 2);
        assert_eq!(b.block.group_by.len(), 2);
        assert_eq!(b.block.aggregates.len(), 1);
        assert_eq!(b.block.aggregates[0].1, "count");
        let schema = b.block.output_schema().unwrap();
        assert_eq!(schema.field(2).name, "count");
    }

    #[test]
    fn qualifies_unqualified_columns() {
        let b = bind("SELECT Name FROM Department WHERE DeptID = 1").unwrap();
        // The WHERE conjunct is fully qualified by the binder.
        assert_eq!(b.block.predicate[0].to_string(), "(Department.DeptID = 1)");
        let SelectItem::Column { col, .. } = &b.block.select[0] else {
            panic!()
        };
        assert_eq!(col, &ColumnRef::qualified("Department", "Name"));
    }

    #[test]
    fn ambiguous_unqualified_column_is_an_error() {
        let err = bind("SELECT DeptID FROM Employee E, Department D WHERE E.DeptID = D.DeptID")
            .unwrap_err();
        assert!(err.message().contains("ambiguous"));
    }

    #[test]
    fn wildcard_expansion() {
        let b = bind("SELECT * FROM Department").unwrap();
        assert_eq!(b.block.select.len(), 2);
        let s = b.block.output_schema().unwrap();
        assert_eq!(s.field(0).name, "DeptID");
        assert_eq!(s.field(1).name, "Name");
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        assert!(bind("SELECT * FROM Department GROUP BY DeptID").is_err());
    }

    #[test]
    fn selection_must_be_grouped() {
        let err = bind("SELECT Name, COUNT(*) FROM Department GROUP BY DeptID").unwrap_err();
        assert!(err.message().contains("GROUP BY"));
    }

    #[test]
    fn view_expansion_creates_derived_relation() {
        let b = bind(
            "SELECT V.DeptID, V.Cnt, D.Name FROM DeptCounts V, Department D \
             WHERE V.DeptID = D.DeptID",
        )
        .unwrap();
        assert!(b.block.relations[0].is_derived());
        let s = b.block.output_schema().unwrap();
        assert_eq!(s.field(1).name, "Cnt", "view column renames apply");
    }

    #[test]
    fn having_binds_matching_aggregate() {
        let b = bind("SELECT DeptID, COUNT(*) FROM Employee GROUP BY DeptID HAVING COUNT(*) > 2")
            .unwrap();
        let h = b.block.having.unwrap();
        assert_eq!(h.to_string(), "(count > 2)");
    }

    #[test]
    fn having_with_unselected_aggregate_rejected() {
        let err =
            bind("SELECT DeptID, COUNT(*) FROM Employee GROUP BY DeptID HAVING SUM(Salary) > 2")
                .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
    }

    #[test]
    fn order_by_binds_output_columns() {
        let b = bind("SELECT DeptID, COUNT(*) AS n FROM Employee GROUP BY DeptID ORDER BY n DESC")
            .unwrap();
        assert_eq!(b.order_by.len(), 1);
        assert_eq!(b.order_by[0].0.column, "n");
        assert!(!b.order_by[0].1);
        // Ordering by a non-output column fails.
        assert!(bind("SELECT DeptID FROM Employee GROUP BY DeptID ORDER BY Salary").is_err());
    }

    #[test]
    fn aggregate_alias_uniquing() {
        let b = bind("SELECT DeptID, COUNT(*), COUNT(*) FROM Employee GROUP BY DeptID").unwrap();
        assert_eq!(b.block.aggregates[0].1, "count");
        assert_eq!(b.block.aggregates[1].1, "count_1");
    }

    #[test]
    fn scalar_aggregate_without_group_by() {
        let b = bind("SELECT COUNT(*), SUM(Salary) FROM Employee").unwrap();
        assert!(b.block.group_by.is_empty());
        assert_eq!(b.block.aggregates.len(), 2);
    }

    #[test]
    fn unsupported_select_expressions() {
        assert!(bind("SELECT Salary + 1 FROM Employee").is_err());
        assert!(bind("SELECT SUM(Salary) + 1 FROM Employee").is_err());
        assert!(bind("SELECT FOO(Salary) FROM Employee").is_err());
    }

    #[test]
    fn unknown_names_error() {
        assert!(bind("SELECT * FROM Mystery").is_err());
        assert!(bind("SELECT Missing FROM Department").is_err());
        assert!(bind("SELECT Name FROM Department WHERE X.DeptID = 1").is_err());
    }

    #[test]
    fn type_errors_surface_at_bind_time() {
        assert!(bind("SELECT Name FROM Department WHERE Name = 1").is_err());
        assert!(bind("SELECT SUM(Name) FROM Department").is_err());
    }

    #[test]
    fn bind_create_table_resolves_domains() {
        let mut cat = catalog();
        cat.create_domain(Domain {
            name: "SmallId".into(),
            data_type: DataType::Int64,
            check: Some(Expr::bare("VALUE").binary(gbj_expr::BinaryOp::Gt, Expr::lit(0i64))),
        })
        .unwrap();
        let binder = Binder::new(&cat);
        let Statement::CreateTable {
            name,
            columns,
            constraints,
        } = parse_sql("CREATE TABLE T (id SmallId PRIMARY KEY, ref_id INT REFERENCES Department)")
            .unwrap()
        else {
            panic!()
        };
        let def = binder
            .bind_create_table(&name, &columns, &constraints)
            .unwrap();
        assert_eq!(def.columns[0].data_type, DataType::Int64);
        assert_eq!(def.columns[0].domain.as_deref(), Some("SmallId"));
        assert_eq!(def.columns[0].checks.len(), 1, "domain check copied");
        assert_eq!(def.primary_key().unwrap(), &["id".to_string()]);
        assert_eq!(def.foreign_keys().count(), 1);
        // Unknown domain errors.
        let Statement::CreateTable {
            name,
            columns,
            constraints,
        } = parse_sql("CREATE TABLE U (x NoSuchDomain)").unwrap()
        else {
            panic!()
        };
        assert!(binder
            .bind_create_table(&name, &columns, &constraints)
            .is_err());
    }

    #[test]
    fn bind_values_evaluates_literals() {
        let cat = catalog();
        let binder = Binder::new(&cat);
        let Statement::Insert { rows, .. } =
            parse_sql("INSERT INTO t VALUES (1, -2, 'x', NULL, 2 + 3)").unwrap()
        else {
            panic!()
        };
        let vals = binder.bind_values(&rows).unwrap();
        assert_eq!(
            vals[0],
            vec![
                Value::Int(1),
                Value::Int(-2),
                Value::str("x"),
                Value::Null,
                Value::Int(5)
            ]
        );
    }

    #[test]
    fn bind_create_view_validates_the_query() {
        let cat = catalog();
        let binder = Binder::new(&cat);
        let v = binder
            .bind_create_view("V", &["a".into()], "SELECT DeptID FROM Department")
            .unwrap();
        assert_eq!(v.columns, vec!["a"]);
        // Arity mismatch.
        assert!(binder
            .bind_create_view(
                "V",
                &["a".into(), "b".into()],
                "SELECT DeptID FROM Department",
            )
            .is_err());
        // Invalid query.
        assert!(binder
            .bind_create_view("V", &[], "SELECT Nope FROM Department")
            .is_err());
    }
}
