//! Hand-built counter-instances for the *necessity* direction of the
//! Main Theorem (Lemmas 2 and 3): when FD1 or FD2 fails in the join
//! result, `E1` and `E2` genuinely differ — so TestFD's refusal is not
//! conservatism, and the engine must keep the lazy plan. Also checks
//! the distinctness lemmas (4 and 5): neither `E1` nor a valid `E2`
//! produces duplicate rows.
//!
//! `E2` is constructed explicitly through an aggregated view (grouping
//! `R1` on `GA1+` first), exactly the expression the theorem compares.

use std::collections::HashSet;

use gbj::engine::PlanChoice;
use gbj::types::GroupKey;
use gbj::{Database, Value};

/// Lemma 2 (necessity of FD1): `(GA1, GA2) → GA1+` fails.
///
/// Query groups by `(F.G, D.H)` while the join runs on `F.A = D.B`, so
/// `GA1+ = {F.A, F.G}`. Two fact rows share `G` but differ on `A`, and
/// both join partners share `H`: `E1` merges them into one group, the
/// eager `E2` keeps them apart — different answers.
#[test]
fn fd1_violation_makes_e1_and_e2_differ() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (B INTEGER PRIMARY KEY, H INTEGER); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, G INTEGER, V INTEGER); \
         INSERT INTO D VALUES (1, 7), (2, 7); \
         INSERT INTO F VALUES (10, 1, 5, 10), (11, 2, 5, 20);",
    )
    .unwrap();

    // E1: one group (G=5, H=7) summing both rows.
    let sql = "SELECT F.G, D.H, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY F.G, D.H";
    let e1 = db.query(sql).unwrap();
    assert_eq!(e1.len(), 1);
    assert_eq!(
        e1.rows[0],
        vec![Value::Int(5), Value::Int(7), Value::Int(30)]
    );

    // The engine must have refused the rewrite (FD1 underivable: the
    // closure of {F.G, D.H} never reaches F.A).
    let report = db.plan_query(sql).unwrap();
    assert_eq!(report.choice, PlanChoice::Lazy);

    // E2, built by hand: group F on GA1+ = (A, G) first, then join.
    db.execute(
        "CREATE VIEW R1P (A, G, S) AS \
         SELECT F.A, F.G, SUM(F.V) FROM F GROUP BY F.A, F.G",
    )
    .unwrap();
    let e2 = db
        .query("SELECT R1P.G, D.H, R1P.S FROM R1P, D WHERE R1P.A = D.B")
        .unwrap();
    assert_eq!(e2.len(), 2, "E2 keeps the two A-groups apart");
    assert!(!e1.multiset_eq(&e2), "Lemma 2: E1 ≠ E2 when FD1 fails");
}

/// Lemma 3 (necessity of FD2): `(GA1+, GA2) → RowID(R2)` fails.
///
/// `R2` has two rows with the same join-key value (`B` is not a key).
/// Grouping by `F.A` alone: `E1` folds both join partners into one
/// group (double-counting), the eager `E2` emits one output row per
/// `R2` partner — different answers.
#[test]
fn fd2_violation_makes_e1_and_e2_differ() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (Id INTEGER PRIMARY KEY, B INTEGER, H INTEGER); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, V INTEGER); \
         INSERT INTO D VALUES (100, 1, 7), (101, 1, 8); \
         INSERT INTO F VALUES (10, 1, 10), (11, 1, 20);",
    )
    .unwrap();

    let sql = "SELECT F.A, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY F.A";
    let e1 = db.query(sql).unwrap();
    // Each fact row joins both D rows: 4 join rows, one group, the sum
    // double-counts — that is E1's (correct SQL) answer.
    assert_eq!(e1.len(), 1);
    assert_eq!(e1.rows[0], vec![Value::Int(1), Value::Int(60)]);

    let report = db.plan_query(sql).unwrap();
    assert_eq!(
        report.choice,
        PlanChoice::Lazy,
        "no key of D is derivable from (GA1+, GA2)"
    );

    // E2 by hand: group F on GA1+ = (A) first, then join.
    db.execute("CREATE VIEW R1P (A, S) AS SELECT F.A, SUM(F.V) FROM F GROUP BY F.A")
        .unwrap();
    let e2 = db
        .query("SELECT R1P.A, R1P.S FROM R1P, D WHERE R1P.A = D.B")
        .unwrap();
    assert_eq!(e2.len(), 2, "one output row per R2 join partner");
    assert_eq!(e2.rows[0], vec![Value::Int(1), Value::Int(30)]);
    assert!(!e1.multiset_eq(&e2), "Lemma 3: E1 ≠ E2 when FD2 fails");
}

/// With a UNIQUE constraint making `B` a candidate key, the same query
/// becomes valid — the minimal change flipping Lemma 3's counterexample
/// into a theorem instance.
#[test]
fn restoring_the_key_restores_validity() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (Id INTEGER PRIMARY KEY, B INTEGER UNIQUE, H INTEGER); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, V INTEGER); \
         INSERT INTO D VALUES (100, 1, 7), (101, 2, 8); \
         INSERT INTO F VALUES (10, 1, 10), (11, 1, 20);",
    )
    .unwrap();
    let sql = "SELECT F.A, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY F.A";
    db.options_mut().policy = gbj::engine::PushdownPolicy::Always;
    let report = db.plan_query(sql).unwrap();
    assert_eq!(report.choice, PlanChoice::Eager, "UNIQUE(B) restores FD2");
    let eager = db.query(sql).unwrap();
    db.options_mut().policy = gbj::engine::PushdownPolicy::Never;
    let lazy = db.query(sql).unwrap();
    assert!(eager.multiset_eq(&lazy));
}

fn has_duplicates(rows: &[Vec<Value>]) -> bool {
    let mut seen: HashSet<GroupKey> = HashSet::new();
    rows.iter().any(|r| !seen.insert(GroupKey(r.clone())))
}

/// Lemmas 4 and 5: the result of `E1` contains no duplicate rows, and
/// neither does a valid `E2` — even though the projection is an ALL
/// projection.
#[test]
fn distinctness_lemmas_hold() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (B INTEGER PRIMARY KEY, H VARCHAR(5)); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, V INTEGER); \
         INSERT INTO D VALUES (1, 'x'), (2, 'x'), (3, 'y'); \
         INSERT INTO F VALUES (10, 1, 4), (11, 1, 4), (12, 2, 4), (13, 3, 4);",
    )
    .unwrap();
    // Identical aggregate values across groups — the tempting source of
    // duplicates — but grouping keys keep rows distinct.
    let sql = "SELECT D.B, D.H, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY D.B, D.H";
    for policy in [
        gbj::engine::PushdownPolicy::Never,
        gbj::engine::PushdownPolicy::Always,
    ] {
        db.options_mut().policy = policy;
        let rows = db.query(sql).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(
            !has_duplicates(&rows.rows),
            "no duplicates under {policy:?} (Lemmas 4/5)"
        );
    }
}

/// Lemma 1: projecting `R2` down to `GA2+` before the join (column
/// pruning does this automatically) does not change the result — checked
/// by comparing against an explicitly pre-projected view.
#[test]
fn lemma1_projection_is_irrelevant() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (B INTEGER PRIMARY KEY, H VARCHAR(5), Junk VARCHAR(20)); \
         CREATE TABLE F (Id INTEGER PRIMARY KEY, A INTEGER, V INTEGER); \
         INSERT INTO D VALUES (1, 'x', 'aaaaaa'), (2, 'y', 'bbbbbb'); \
         INSERT INTO F VALUES (10, 1, 4), (11, 2, 9), (12, 1, 1);",
    )
    .unwrap();
    let full = db
        .query("SELECT D.B, SUM(F.V) FROM F, D WHERE F.A = D.B GROUP BY D.B")
        .unwrap();
    // The same query over a view that pre-projects R2 to GA2+ = {B}.
    db.execute("CREATE VIEW D2 (B) AS SELECT D.B FROM D")
        .unwrap();
    let projected = db
        .query("SELECT D2.B, SUM(F.V) FROM F, D2 WHERE F.A = D2.B GROUP BY D2.B")
        .unwrap();
    assert!(full.multiset_eq(&projected));
}
