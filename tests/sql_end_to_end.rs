//! End-to-end SQL tests spanning every crate: the Figure 5 DDL with all
//! five constraint classes, SQL2 NULL semantics observed through query
//! results, HAVING/ORDER BY/DISTINCT behaviour, and a demonstration of
//! the Main Theorem's *necessity* direction (naive pushdown without the
//! FDs gives a different answer).

use gbj::engine::QueryOutput;
use gbj::{Database, Value};

/// The paper's Figure 5, verbatim modulo the referenced table existing.
#[test]
fn figure5_ddl_round_trip() {
    let mut db = Database::new();
    db.run_script("CREATE TABLE Dept (DeptID INTEGER PRIMARY KEY, Name VARCHAR(30));")
        .unwrap();
    db.execute("CREATE DOMAIN DepIdType SMALLINT CHECK VALUE > 0 AND VALUE < 100")
        .unwrap();
    db.execute(
        "CREATE TABLE Employee ( \
             EmpID INTEGER CHECK (EmpID > 0), \
             EmpSID INTEGER UNIQUE, \
             LastName CHARACTER(30) NOT NULL, \
             FirstName CHARACTER(30), \
             DeptID DepIdType CHECK (DeptID > 5), \
             PRIMARY KEY (EmpID), \
             FOREIGN KEY (DeptID) REFERENCES Dept)",
    )
    .unwrap();

    db.execute("INSERT INTO Dept VALUES (7, 'Eng'), (50, 'Ops')")
        .unwrap();
    // Valid row.
    db.execute("INSERT INTO Employee VALUES (1, 100, 'Yan', 'Weipeng', 7)")
        .unwrap();
    // EmpID > 0 violated.
    let err = db
        .execute("INSERT INTO Employee VALUES (-1, 101, 'X', 'Y', 7)")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // Domain: DeptID < 100 violated (no Dept 150 either, but the domain
    // check fires first).
    let err = db
        .execute("INSERT INTO Employee VALUES (2, 102, 'X', 'Y', 150)")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // Column check DeptID > 5.
    let err = db
        .execute("INSERT INTO Employee VALUES (2, 102, 'X', 'Y', 3)")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // UNIQUE EmpSID: duplicate rejected, NULLs always fine.
    let err = db
        .execute("INSERT INTO Employee VALUES (2, 100, 'X', 'Y', 7)")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    db.execute("INSERT INTO Employee VALUES (2, NULL, 'A', 'B', 7)")
        .unwrap();
    db.execute("INSERT INTO Employee VALUES (3, NULL, 'C', 'D', NULL)")
        .unwrap();
    // NOT NULL LastName.
    let err = db
        .execute("INSERT INTO Employee VALUES (4, 104, NULL, 'Y', 7)")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // FK: unknown department.
    let err = db
        .execute("INSERT INTO Employee VALUES (4, 104, 'X', 'Y', 99)")
        .unwrap_err();
    assert!(err.message().contains("foreign key"));

    let rows = db.query("SELECT COUNT(*) FROM Employee").unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(3));
}

/// SQL2 NULL semantics observed end to end: WHERE rejects `unknown`,
/// GROUP BY treats NULL as a value, aggregates skip NULLs.
#[test]
fn null_semantics_through_sql() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE T (id INTEGER PRIMARY KEY, g INTEGER, v INTEGER); \
         INSERT INTO T VALUES (1, 1, 10), (2, 1, NULL), (3, NULL, 5), \
                              (4, NULL, NULL), (5, 2, 7);",
    )
    .unwrap();

    // WHERE g = g is unknown for NULL g: those rows are rejected.
    let rows = db.query("SELECT id FROM T WHERE g = g").unwrap();
    assert_eq!(rows.len(), 3);

    // GROUP BY groups the two NULL-g rows together (NULL =ⁿ NULL).
    let rows = db
        .query("SELECT g, COUNT(*), COUNT(v), SUM(v) FROM T GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(rows.len(), 3);
    // NULLs sort last: group order 1, 2, NULL.
    assert_eq!(
        rows.rows[0],
        vec![Value::Int(1), Value::Int(2), Value::Int(1), Value::Int(10)]
    );
    assert_eq!(
        rows.rows[2],
        vec![Value::Null, Value::Int(2), Value::Int(1), Value::Int(5)]
    );

    // IS NULL is two-valued.
    let rows = db
        .query("SELECT id FROM T WHERE g IS NULL ORDER BY id")
        .unwrap();
    assert_eq!(rows.len(), 2);

    // DISTINCT eliminates NULL duplicates.
    let rows = db.query("SELECT DISTINCT g FROM T").unwrap();
    assert_eq!(rows.len(), 3);
}

/// HAVING, ORDER BY and scalar aggregates.
#[test]
fn having_order_and_scalar_aggregates() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE S (id INTEGER PRIMARY KEY, grp VARCHAR(5), x INTEGER); \
         INSERT INTO S VALUES (1,'a',1),(2,'a',2),(3,'a',3),(4,'b',10),(5,'c',NULL);",
    )
    .unwrap();

    let rows = db
        .query(
            "SELECT grp, COUNT(*) AS n, AVG(x) FROM S GROUP BY grp \
             HAVING COUNT(*) > 1 ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][0], Value::str("a"));
    assert_eq!(rows.rows[0][2], Value::Float(2.0));

    let rows = db
        .query("SELECT COUNT(*), MIN(x), MAX(x), SUM(x) FROM S")
        .unwrap();
    assert_eq!(
        rows.rows[0],
        vec![Value::Int(5), Value::Int(1), Value::Int(10), Value::Int(16)]
    );
}

/// The necessity side of the Main Theorem as a live demonstration:
/// grouping by a *non-key* of R2 (duplicate Cat values) makes naive
/// pushdown produce a different answer, which is exactly why TestFD
/// must refuse it.
#[test]
fn necessity_demo_naive_pushdown_would_be_wrong() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE Dim (DimId INTEGER PRIMARY KEY, Cat VARCHAR(5)); \
         CREATE TABLE Fact (FId INTEGER PRIMARY KEY, DimId INTEGER, V INTEGER); \
         INSERT INTO Dim VALUES (1, 'x'), (2, 'x'), (3, 'y'); \
         INSERT INTO Fact VALUES (10, 1, 5), (11, 1, 7), (12, 2, 1), (13, 3, 2);",
    )
    .unwrap();

    // E1: grouped by the duplicate-bearing Cat.
    let e1 = db
        .query(
            "SELECT D.Cat, SUM(F.V) FROM Fact F, Dim D \
             WHERE F.DimId = D.DimId GROUP BY D.Cat ORDER BY Cat",
        )
        .unwrap();
    assert_eq!(e1.len(), 2);
    assert_eq!(e1.rows[0], vec![Value::str("x"), Value::Int(13)]);

    // The engine must have refused the rewrite for this query.
    let report = db
        .plan_query(
            "SELECT D.Cat, SUM(F.V) FROM Fact F, Dim D \
             WHERE F.DimId = D.DimId GROUP BY D.Cat",
        )
        .unwrap();
    assert_eq!(report.choice, gbj::engine::PlanChoice::Lazy);

    // Hand-build the naive E2 through an aggregated view: it yields one
    // row per DimId — a *different* result (3 rows, 'x' appearing twice).
    db.execute(
        "CREATE VIEW G (DimId, S) AS \
         SELECT F.DimId, SUM(F.V) FROM Fact F GROUP BY F.DimId",
    )
    .unwrap();
    let naive = db
        .query("SELECT D.Cat, G.S FROM G, Dim D WHERE G.DimId = D.DimId ORDER BY Cat")
        .unwrap();
    assert_eq!(naive.len(), 3, "naive pushdown splits the 'x' group");
    assert!(!e1.multiset_eq(&naive));
}

/// Views compose: a view over a view, and DROP VIEW.
#[test]
fn view_composition_and_drop() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE T (a INTEGER PRIMARY KEY, b INTEGER); \
         INSERT INTO T VALUES (1, 10), (2, 20), (3, 30); \
         CREATE VIEW V1 AS SELECT a, b FROM T WHERE b > 10; \
         CREATE VIEW V2 (x) AS SELECT a FROM V1;",
    )
    .unwrap();
    let rows = db.query("SELECT x FROM V2 ORDER BY x").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.rows[0][0], Value::Int(2));
    db.execute("DROP VIEW V2").unwrap();
    assert!(db.query("SELECT x FROM V2").is_err());
    // V1 still works.
    assert_eq!(db.query("SELECT a FROM V1").unwrap().len(), 2);
}

/// EXPLAIN output is a usable report.
#[test]
fn explain_is_informative() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE D (k INTEGER PRIMARY KEY, n VARCHAR(5)); \
         CREATE TABLE F (id INTEGER PRIMARY KEY, k INTEGER, v INTEGER); \
         INSERT INTO D VALUES (1, 'a'); \
         INSERT INTO F VALUES (1, 1, 5);",
    )
    .unwrap();
    let out = db
        .execute("EXPLAIN SELECT D.k, SUM(F.v) FROM F, D WHERE F.k = D.k GROUP BY D.k")
        .unwrap();
    let QueryOutput::Explain(text) = out else {
        panic!()
    };
    for needle in ["choice:", "partition", "TestFD", "plan:", "Aggregate"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

/// Mixed-type grouping keys and DISTINCT aggregates through SQL.
#[test]
fn distinct_aggregates_and_floats() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE M (id INTEGER PRIMARY KEY, g INTEGER, f FLOAT); \
         INSERT INTO M VALUES (1, 1, 1.5), (2, 1, 1.5), (3, 1, 2.5), (4, 2, 0.5);",
    )
    .unwrap();
    let rows = db
        .query("SELECT g, COUNT(DISTINCT f), SUM(f), AVG(f) FROM M GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(
        rows.rows[0],
        vec![
            Value::Int(1),
            Value::Int(2),
            Value::Float(5.5),
            Value::Float(5.5 / 3.0)
        ]
    );
    assert_eq!(rows.rows[1][1], Value::Int(1));
}

/// EXPLAIN ANALYZE executes and annotates with measured cardinalities.
#[test]
fn explain_analyze_shows_measured_rows() {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE T (a INTEGER PRIMARY KEY, b INTEGER); \
         INSERT INTO T VALUES (1, 1), (2, 1), (3, 2);",
    )
    .unwrap();
    let out = db
        .execute("EXPLAIN ANALYZE SELECT b, COUNT(*) FROM T GROUP BY b")
        .unwrap();
    let QueryOutput::Explain(text) = out else {
        panic!()
    };
    assert!(text.contains("planning time: "), "{text}");
    assert!(text.contains("execution time: "), "{text}");
    assert!(text.contains("actual rows: 2"), "{text}");
    assert!(
        text.contains("Scan T [Scan] est=3 actual=3"),
        "scan cardinality shown: {text}"
    );
}
